"""Tests for the extension substrates: natural-order RR, CXL tier."""

import numpy as np
import pytest

from repro.core import AllocationScheme, OMeGaConfig, SpMMEngine, make_allocator
from repro.core.eata import NaturalOrderRoundRobinAllocator
from repro.memsim.devices import cxl_spec, pm_spec
from repro.memsim.numa import cxl_testbed, paper_testbed
from repro.memsim import MemoryKind


class TestNaturalOrderAllocator:
    def test_counts_cover_matrix(self, skewed_csdb):
        partitions = NaturalOrderRoundRobinAllocator().allocate(skewed_csdb, 6)
        assert len(partitions) == 6
        assert sum(p.nnz_count for p in partitions) == skewed_csdb.nnz
        assert sum(p.n_rows for p in partitions) == skewed_csdb.n_rows

    def test_partitions_marked_non_contiguous(self, skewed_csdb):
        partitions = NaturalOrderRoundRobinAllocator().allocate(skewed_csdb, 4)
        assert all(not p.contiguous for p in partitions)

    def test_balanced_on_shuffled_graphs(self, skewed_csdb):
        """Shuffled node ids mean natural chunks carry similar nnz."""
        partitions = NaturalOrderRoundRobinAllocator().allocate(skewed_csdb, 6)
        loads = np.array([p.nnz_count for p in partitions], dtype=float)
        assert loads.std() / loads.mean() < 0.5

    def test_chunks_are_scattered(self, skewed_csdb):
        """Every natural chunk inherits the graph's full degree mix."""
        partitions = NaturalOrderRoundRobinAllocator().allocate(skewed_csdb, 6)
        assert all(p.z_entropy > 0.5 for p in partitions)

    def test_factory(self):
        assert isinstance(
            make_allocator(AllocationScheme.NATURAL_ROUND_ROBIN),
            NaturalOrderRoundRobinAllocator,
        )

    def test_engine_computes_correct_result(self, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))
        engine = SpMMEngine(
            OMeGaConfig(
                n_threads=4,
                dim=8,
                allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
            )
        )
        result = engine.multiply(skewed_csdb, dense)
        assert np.allclose(result.output, skewed_csdb.spmm(dense))

    def test_slower_than_eata_but_faster_than_sorted_rr(self, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))

        def run(scheme):
            engine = SpMMEngine(
                OMeGaConfig(n_threads=12, dim=8, allocation=scheme)
            )
            return engine.multiply(skewed_csdb, dense, compute=False).sim_seconds

        eata = run(AllocationScheme.ENTROPY_AWARE)
        natural = run(AllocationScheme.NATURAL_ROUND_ROBIN)
        sorted_rr = run(AllocationScheme.ROUND_ROBIN)
        assert eata < natural < sorted_rr


class TestCXL:
    def test_cxl_spec_properties(self):
        cxl = cxl_spec()
        # CXL's scattered reads degrade less than Optane's.
        assert cxl.scatter_beta_scale > pm_spec().scatter_beta_scale
        # Latency-wise CXL sits between DRAM and Optane: the link adds
        # ~170 ns over DRAM but avoids Optane's slow media.
        from repro.memsim import Locality, Operation

        assert cxl.latency(
            Operation.READ, Locality.LOCAL
        ) < pm_spec().latency(Operation.READ, Locality.LOCAL)

    def test_cxl_testbed_swaps_capacity_tier(self):
        topo = cxl_testbed()
        assert "CXL" in topo.device(MemoryKind.PM).name
        assert topo.device(MemoryKind.DRAM).name == paper_testbed().device(
            MemoryKind.DRAM
        ).name

    def test_engine_runs_on_cxl(self, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))
        engine = SpMMEngine(
            OMeGaConfig(n_threads=8, dim=8, topology=cxl_testbed())
        )
        result = engine.multiply(skewed_csdb, dense)
        assert np.allclose(result.output, skewed_csdb.spmm(dense))
        assert result.sim_seconds > 0


class TestKernelSlowdown:
    def test_slowdown_scales_dense_cost(self, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))

        def run(slowdown):
            engine = SpMMEngine(
                OMeGaConfig(n_threads=4, dim=8, kernel_slowdown=slowdown)
            )
            return engine.multiply(skewed_csdb, dense, compute=False)

        base = run(1.0)
        slow = run(3.0)
        assert slow.trace.seconds("get_dense_nnz") == pytest.approx(
            3.0 * base.trace.seconds("get_dense_nnz")
        )
        assert slow.sim_seconds > base.sim_seconds

    def test_invalid_slowdown(self):
        with pytest.raises(ValueError, match="kernel_slowdown"):
            OMeGaConfig(kernel_slowdown=0.5)

    def test_invalid_graph_format(self):
        with pytest.raises(ValueError, match="graph_format"):
            OMeGaConfig(graph_format="coo")
