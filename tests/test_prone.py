"""Unit tests for the ProNE model substrate (tSVD, Chebyshev, transforms)."""

import numpy as np
import pytest

from repro.formats import CSDBMatrix
from repro.prone import (
    add_identity,
    chebyshev_gaussian_filter,
    chebyshev_operator,
    prone_embed,
    prone_smf,
    randomized_tsvd,
    row_l1_normalize,
    smf_matrix,
)
from repro.prone.chebyshev import spmm_calls_for_order
from repro.prone.model import ProNEParams, densify_embedding, prone_propagate
from repro.prone.tsvd import embedding_from_factors


class TestLaplacianTransforms:
    def test_row_l1_normalize_rows_sum_to_one(self, skewed_csdb):
        normalized = row_l1_normalize(skewed_csdb)
        sums = normalized.to_dense().sum(axis=1)
        nonzero = skewed_csdb.to_dense().sum(axis=1) > 0
        assert np.allclose(sums[nonzero], 1.0)
        assert np.allclose(sums[~nonzero], 0.0)

    def test_row_l1_normalize_preserves_structure(self, skewed_csdb):
        normalized = row_l1_normalize(skewed_csdb)
        assert np.array_equal(normalized.perm, skewed_csdb.perm)
        assert np.array_equal(normalized.col_list, skewed_csdb.col_list)

    def test_add_identity(self, paper_csdb):
        m = add_identity(paper_csdb, scale=2.0)
        assert np.allclose(
            m.to_dense(), paper_csdb.to_dense() + 2.0 * np.eye(7)
        )

    def test_add_identity_requires_square(self):
        rect = CSDBMatrix.from_coo([0], [1], [1.0], (2, 3))
        with pytest.raises(ValueError, match="square"):
            add_identity(rect)

    def test_chebyshev_operator_definition(self, paper_csdb):
        """M = (1 - mu) I - l1norm(I + A)."""
        mu = 0.3
        m = chebyshev_operator(paper_csdb, mu=mu)
        a_prime = paper_csdb.to_dense() + np.eye(7)
        da = a_prime / a_prime.sum(axis=1, keepdims=True)
        expected = (1.0 - mu) * np.eye(7) - da
        assert np.allclose(m.to_dense(), expected)

    def test_chebyshev_operator_spectrum_bounded(self, skewed_csdb):
        m = chebyshev_operator(skewed_csdb, mu=0.2).to_dense()
        eigenvalues = np.linalg.eigvals(m)
        assert np.abs(eigenvalues).max() < 2.0 + 1e-9


class TestRandomizedTSVD:
    def test_recovers_low_rank_matrix(self, rng):
        u_true = np.linalg.qr(rng.standard_normal((60, 5)))[0]
        v_true = np.linalg.qr(rng.standard_normal((40, 5)))[0]
        s_true = np.array([10.0, 8.0, 5.0, 2.0, 1.0])
        a = (u_true * s_true) @ v_true.T
        u, s, vt = randomized_tsvd(
            lambda x: a @ x, lambda y: a.T @ y, a.shape, rank=5, seed=0
        )
        assert np.allclose(s, s_true, rtol=1e-6)
        assert np.allclose((u * s) @ vt, a, atol=1e-6)

    def test_matches_numpy_svd_singular_values(self, rng):
        a = rng.standard_normal((50, 30))
        _, s, _ = randomized_tsvd(
            lambda x: a @ x,
            lambda y: a.T @ y,
            a.shape,
            rank=5,
            n_power_iterations=6,
            seed=1,
        )
        exact = np.linalg.svd(a, compute_uv=False)[:5]
        assert np.allclose(s, exact, rtol=0.05)

    def test_shapes(self, rng):
        a = rng.standard_normal((30, 20))
        u, s, vt = randomized_tsvd(
            lambda x: a @ x, lambda y: a.T @ y, a.shape, rank=4, seed=0
        )
        assert u.shape == (30, 4)
        assert s.shape == (4,)
        assert vt.shape == (4, 20)

    def test_rank_validation(self, rng):
        a = rng.standard_normal((10, 10))
        with pytest.raises(ValueError, match="rank"):
            randomized_tsvd(
                lambda x: a @ x, lambda y: a.T @ y, a.shape, rank=0
            )
        with pytest.raises(ValueError, match="exceeds"):
            randomized_tsvd(
                lambda x: a @ x, lambda y: a.T @ y, a.shape, rank=11
            )

    def test_embedding_from_factors_l2_normalized(self, rng):
        u = rng.standard_normal((20, 4))
        s = np.array([4.0, 3.0, 2.0, 1.0])
        emb = embedding_from_factors(u, s)
        assert np.allclose(np.linalg.norm(emb, axis=1), 1.0)


class TestChebyshevFilter:
    def test_spmm_call_count(self, paper_csdb, rng):
        calls = {"n": 0}

        def counted(matrix):
            def matmul(x):
                calls["n"] += 1
                return matrix.spmm(x)

            return matmul

        operator = chebyshev_operator(paper_csdb)
        aggregate = add_identity(paper_csdb)
        x = rng.standard_normal((7, 3))
        order = 6
        chebyshev_gaussian_filter(
            counted(operator), counted(aggregate), x, order=order
        )
        assert calls["n"] == spmm_calls_for_order(order)

    def test_order_one_is_aggregation(self, paper_csdb, rng):
        aggregate = add_identity(paper_csdb)
        x = rng.standard_normal((7, 3))
        out = chebyshev_gaussian_filter(
            chebyshev_operator(paper_csdb).spmm, aggregate.spmm, x, order=1
        )
        assert np.allclose(out, aggregate.spmm(x))

    def test_matches_dense_reference(self, paper_csdb, rng):
        """The recurrence must equal the same expansion computed densely."""
        from scipy.special import iv

        mu, theta, order = 0.2, 0.5, 8
        m = chebyshev_operator(paper_csdb, mu=mu).to_dense()
        a_prime = paper_csdb.to_dense() + np.eye(7)
        x = rng.standard_normal((7, 4))
        lx0, lx1 = x, m @ x
        lx1 = 0.5 * m @ lx1 - x
        conv = iv(0, theta) * lx0 - 2 * iv(1, theta) * lx1
        for i in range(2, order):
            lx2 = (m @ (m @ lx1) - 2 * lx1) - lx0
            conv = conv + ((-1) ** (i % 2 != 0 or -1)) * 0  # no-op, clarity
            if i % 2 == 0:
                conv += 2 * iv(i, theta) * lx2
            else:
                conv -= 2 * iv(i, theta) * lx2
            lx0, lx1 = lx1, lx2
        expected = a_prime @ (x - conv)
        got = chebyshev_gaussian_filter(
            chebyshev_operator(paper_csdb, mu=mu).spmm,
            add_identity(paper_csdb).spmm,
            x,
            order=order,
            theta=theta,
        )
        assert np.allclose(got, expected)

    def test_invalid_order(self, rng):
        with pytest.raises(ValueError, match="order"):
            chebyshev_gaussian_filter(
                lambda x: x, lambda x: x, rng.standard_normal((4, 2)), order=0
            )

    def test_spmm_calls_for_order_values(self):
        assert spmm_calls_for_order(1) == 1
        assert spmm_calls_for_order(2) == 3
        assert spmm_calls_for_order(10) == 2 + 16 + 1


class TestSMF:
    def test_smf_matrix_structure_preserved(self, skewed_csdb):
        f = smf_matrix(skewed_csdb)
        assert np.array_equal(f.col_list, skewed_csdb.col_list)
        assert np.array_equal(f.perm, skewed_csdb.perm)

    def test_smf_values_formula(self, paper_csdb):
        f = smf_matrix(paper_csdb, negative_exponent=0.75)
        tran = row_l1_normalize(paper_csdb)
        colsum = tran.to_dense().sum(axis=0)
        neg = colsum**0.75
        neg = neg / neg.sum()
        dense_tran = tran.to_dense()
        dense_f = f.to_dense()
        for i in range(7):
            for j in range(7):
                if dense_tran[i, j] > 0:
                    expected = np.log(dense_tran[i, j]) - np.log(neg[j])
                    assert dense_f[i, j] == pytest.approx(expected)


class TestEndToEnd:
    def test_prone_embed_shape_and_norm(self, skewed_csdb):
        params = ProNEParams(dim=8, order=4)
        emb = prone_embed(skewed_csdb, params)
        assert emb.shape == (skewed_csdb.n_rows, 8)
        # Connected nodes are unit-norm; isolated nodes embed to zero.
        norms = np.linalg.norm(emb, axis=1)
        connected = skewed_csdb.row_degrees()[skewed_csdb.inv_perm] > 0
        assert np.allclose(norms[connected], 1.0)
        assert np.all(np.isfinite(emb))

    def test_prone_deterministic_in_seed(self, skewed_csdb):
        params = ProNEParams(dim=8, order=3, seed=5)
        a = prone_embed(skewed_csdb, params)
        b = prone_embed(skewed_csdb, params)
        assert np.array_equal(a, b)

    def test_smf_then_propagate_changes_embedding(self, skewed_csdb):
        params = ProNEParams(dim=8, order=4)
        initial = prone_smf(skewed_csdb, params)
        final = prone_propagate(skewed_csdb, initial, params)
        assert not np.allclose(initial, final)

    def test_densify_embedding(self, rng):
        m = rng.standard_normal((30, 12))
        emb = densify_embedding(m, 6)
        assert emb.shape == (30, 6)
        assert np.allclose(np.linalg.norm(emb, axis=1), 1.0)

    def test_propagation_improves_neighborhood_coherence(self, skewed_csdb):
        """Propagated embeddings place neighbors closer than random pairs."""
        params = ProNEParams(dim=16, order=8)
        emb = prone_embed(skewed_csdb, params)
        rng = np.random.default_rng(0)
        sims_edge, sims_rand = [], []
        dense = skewed_csdb.to_dense()
        rows, cols = np.nonzero(dense)
        idx = rng.choice(len(rows), size=200, replace=False)
        for i in idx:
            sims_edge.append(emb[rows[i]] @ emb[cols[i]])
        for _ in range(200):
            u, v = rng.integers(skewed_csdb.n_rows, size=2)
            sims_rand.append(emb[u] @ emb[v])
        assert np.mean(sims_edge) > np.mean(sims_rand)
