"""Unit tests for the from-scratch CSR matrix."""

import numpy as np
import pytest

from repro.formats import CSRMatrix


def dense_of(rows, cols, vals, shape):
    out = np.zeros(shape)
    for r, c, v in zip(rows, cols, vals):
        out[r, c] += v
    return out


class TestConstruction:
    def test_from_coo_basic(self):
        m = CSRMatrix.from_coo([0, 1, 2], [1, 2, 0], [1.0, 2.0, 3.0], (3, 3))
        assert m.nnz == 3
        assert np.allclose(m.to_dense(), dense_of([0, 1, 2], [1, 2, 0], [1, 2, 3], (3, 3)))

    def test_from_coo_sums_duplicates(self):
        m = CSRMatrix.from_coo([0, 0], [1, 1], [2.0, 3.0], (2, 2))
        assert m.nnz == 1
        assert m.to_dense()[0, 1] == 5.0

    def test_from_coo_keeps_duplicates_when_disabled(self):
        m = CSRMatrix.from_coo(
            [0, 0], [1, 1], [2.0, 3.0], (2, 2), sum_duplicates=False
        )
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 5.0

    def test_empty_matrix(self):
        m = CSRMatrix.from_coo([], [], [], (4, 5))
        assert m.nnz == 0
        assert m.shape == (4, 5)
        assert np.allclose(m.to_dense(), 0.0)

    def test_rejects_row_out_of_range(self):
        with pytest.raises(ValueError, match="row index"):
            CSRMatrix.from_coo([5], [0], [1.0], (3, 3))

    def test_rejects_col_out_of_range(self):
        with pytest.raises(ValueError, match="column index"):
            CSRMatrix.from_coo([0], [9], [1.0], (3, 3))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            CSRMatrix.from_coo([0, 1], [0], [1.0], (3, 3))

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (1, 1))


class TestAccessors:
    def test_row_access(self, paper_csr):
        cols, vals = paper_csr.row(1)
        assert sorted(cols.tolist()) == [0, 3, 4, 6]
        assert np.all(vals == 1.0)

    def test_row_out_of_range(self, paper_csr):
        with pytest.raises(IndexError):
            paper_csr.row(7)

    def test_degrees(self, paper_csr):
        degrees = paper_csr.row_degrees()
        assert degrees.sum() == paper_csr.nnz
        assert degrees[0] == 4 and degrees[1] == 4

    def test_col_degrees_symmetric_graph(self, paper_csr):
        assert np.array_equal(paper_csr.col_degrees(), paper_csr.row_degrees())

    def test_index_bytes_is_order_v(self, paper_csr):
        assert paper_csr.index_bytes() >= 8 * (paper_csr.n_rows + 1)


class TestAlgebra:
    def test_spmm_matches_dense(self, skewed_csr, rng):
        b = rng.standard_normal((skewed_csr.n_cols, 5))
        assert np.allclose(skewed_csr.spmm(b), skewed_csr.to_dense() @ b)

    def test_spmm_vector_input(self, paper_csr, rng):
        v = rng.standard_normal(7)
        out = paper_csr.spmm(v)
        assert out.shape == (7, 1)
        assert np.allclose(out.ravel(), paper_csr.to_dense() @ v)

    def test_spmv(self, paper_csr, rng):
        v = rng.standard_normal(7)
        assert np.allclose(paper_csr.spmv(v), paper_csr.to_dense() @ v)

    def test_spmm_dimension_mismatch(self, paper_csr, rng):
        with pytest.raises(ValueError, match="dimension mismatch"):
            paper_csr.spmm(rng.standard_normal((5, 3)))

    def test_transpose(self, skewed_csr):
        assert np.allclose(
            skewed_csr.transpose().to_dense(), skewed_csr.to_dense().T
        )

    def test_transpose_rectangular(self):
        m = CSRMatrix.from_coo([0, 1], [2, 0], [1.0, 2.0], (2, 4))
        t = m.transpose()
        assert t.shape == (4, 2)
        assert np.allclose(t.to_dense(), m.to_dense().T)

    def test_add_sub(self, paper_csr):
        total = paper_csr + paper_csr
        assert np.allclose(total.to_dense(), 2 * paper_csr.to_dense())
        zero = paper_csr - paper_csr
        assert zero.nnz == 0

    def test_add_shape_mismatch(self, paper_csr):
        other = CSRMatrix.from_coo([0], [0], [1.0], (3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            paper_csr + other

    def test_scale(self, paper_csr):
        assert np.allclose(
            paper_csr.scale(2.5).to_dense(), 2.5 * paper_csr.to_dense()
        )

    def test_prune(self):
        m = CSRMatrix.from_coo([0, 1], [0, 1], [0.0, 1.0], (2, 2))
        pruned = m.prune()
        assert pruned.nnz == 1
        assert pruned.to_dense()[1, 1] == 1.0

    def test_prune_noop_returns_self(self, paper_csr):
        assert paper_csr.prune() is paper_csr
