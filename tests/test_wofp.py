"""Unit tests for the WoFP prefetcher (§III-C)."""

import numpy as np
import pytest

from repro.core import WorkloadBalancedAllocator, WorkloadPrefetcher
from repro.core.wofp import DisabledPrefetchPlan


@pytest.fixture
def partitions(skewed_csdb):
    return WorkloadBalancedAllocator().allocate(skewed_csdb, 4)


class TestTypeSelection:
    def test_eta_threshold(self, skewed_csdb, partitions):
        """W/Rows >= |V| * eta selects the frequency prefetcher."""
        partition = partitions[0]
        mean_nnz_per_row = partition.nnz_count / partition.n_rows
        eta_low = mean_nnz_per_row / skewed_csdb.n_cols / 2
        eta_high = mean_nnz_per_row / skewed_csdb.n_cols * 2
        assert WorkloadPrefetcher(eta=eta_low).selects_frequency(
            skewed_csdb, partition
        )
        assert not WorkloadPrefetcher(eta=eta_high).selects_frequency(
            skewed_csdb, partition
        )

    def test_dense_head_partition_prefers_frequency(
        self, skewed_csdb, partitions
    ):
        """CSDB sorts dense rows first: partition 0 has the highest mean
        nnz/row, so with an in-between eta it picks frequency while the
        sparse tail picks degree."""
        per_row = [p.nnz_count / max(p.n_rows, 1) for p in partitions]
        assert per_row[0] == max(per_row)

    def test_plan_kinds(self, skewed_csdb, partitions):
        prefetcher = WorkloadPrefetcher(eta=0.05, sigma=0.1)
        kinds = {
            prefetcher.plan(skewed_csdb, p).kind for p in partitions
        }
        assert kinds <= {"frequency", "degree"}


class TestPlans:
    def test_capacity_sigma(self, skewed_csdb, partitions):
        sigma = 0.1
        prefetcher = WorkloadPrefetcher(sigma=sigma)
        for p in partitions:
            plan = prefetcher.plan(skewed_csdb, p)
            cols = skewed_csdb.col_list[p.nnz_start : p.nnz_end]
            distinct = len(np.unique(cols))
            assert plan.capacity <= min(int(p.nnz_count * sigma) + 1, distinct)

    def test_hit_fraction_measured_exactly(self, skewed_csdb, partitions):
        prefetcher = WorkloadPrefetcher(sigma=0.2)
        for p in partitions:
            plan = prefetcher.plan(skewed_csdb, p)
            cols = skewed_csdb.col_list[p.nnz_start : p.nnz_end]
            hot = set(plan.hot_columns.tolist())
            hits = sum(1 for c in cols if int(c) in hot)
            assert plan.hit_fraction == pytest.approx(hits / len(cols))

    def test_frequency_beats_degree_on_hits(self, skewed_csdb, partitions):
        """The dynamic prefetcher is at least as precise as the static."""
        p = partitions[0]
        freq = WorkloadPrefetcher(eta=1e-9, sigma=0.1).plan(skewed_csdb, p)
        deg = WorkloadPrefetcher(eta=1e9, sigma=0.1).plan(skewed_csdb, p)
        assert freq.kind == "frequency" and deg.kind == "degree"
        assert freq.hit_fraction >= deg.hit_fraction

    def test_degree_hits_close_to_frequency_on_powerlaw(
        self, skewed_csdb, partitions
    ):
        """In-degree is a good static proxy on power-law graphs — the
        paper's justification for the cheap degree-based prefetcher."""
        p = partitions[-1]
        freq = WorkloadPrefetcher(eta=1e-9, sigma=0.2).plan(skewed_csdb, p)
        deg = WorkloadPrefetcher(eta=1e9, sigma=0.2).plan(skewed_csdb, p)
        assert deg.hit_fraction > 0.5 * freq.hit_fraction

    def test_hit_fraction_monotone_in_sigma(self, skewed_csdb, partitions):
        p = partitions[1]
        hits = [
            WorkloadPrefetcher(sigma=s).plan(skewed_csdb, p).hit_fraction
            for s in (0.05, 0.2, 0.5)
        ]
        assert hits[0] <= hits[1] <= hits[2]

    def test_sigma_one_hits_everything(self, skewed_csdb, partitions):
        plan = WorkloadPrefetcher(sigma=1.0).plan(skewed_csdb, partitions[2])
        assert plan.hit_fraction == pytest.approx(1.0)

    def test_maintenance_cost_frequency_higher(self, skewed_csdb, partitions):
        p = partitions[0]
        freq = WorkloadPrefetcher(eta=1e-9, sigma=0.1).plan(skewed_csdb, p)
        deg = WorkloadPrefetcher(eta=1e9, sigma=0.1).plan(skewed_csdb, p)
        assert freq.maintenance_ops > deg.maintenance_ops

    def test_empty_partition(self, skewed_csdb):
        from repro.core.eata import AllocatorContext

        ctx = AllocatorContext(skewed_csdb)
        empty = ctx.make_partition(0, skewed_csdb.n_rows, skewed_csdb.n_rows)
        plan = WorkloadPrefetcher().plan(skewed_csdb, empty)
        assert plan.capacity == 0
        assert plan.hit_fraction == 0.0

    def test_pinned_bytes(self, skewed_csdb, partitions):
        plan = WorkloadPrefetcher(sigma=0.1).plan(skewed_csdb, partitions[0])
        assert plan.pinned_bytes(dense_cols=16) == plan.capacity * 16 * 8

    def test_precomputed_col_degrees_equivalent(self, skewed_csdb, partitions):
        prefetcher = WorkloadPrefetcher(eta=1e9, sigma=0.1)
        degrees = skewed_csdb.col_degrees()
        p = partitions[2]
        a = prefetcher.plan(skewed_csdb, p)
        b = prefetcher.plan(skewed_csdb, p, col_degrees=degrees)
        assert np.array_equal(a.hot_columns, b.hot_columns)


class TestDisabledPlan:
    def test_disabled_is_inert(self):
        plan = DisabledPrefetchPlan()
        assert plan.hit_fraction == 0.0
        assert plan.pinned_bytes(64) == 0
        assert plan.capacity == 0


class TestValidation:
    def test_invalid_eta(self):
        with pytest.raises(ValueError, match="eta"):
            WorkloadPrefetcher(eta=0.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            WorkloadPrefetcher(sigma=1.5)
