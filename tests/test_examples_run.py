"""Every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()  # every example narrates its result


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "link_prediction",
        "numa_placement_study",
        "scalability_sweep",
        "prone_vs_deepwalk",
        "custom_graph_pipeline",
        "crash_safe_checkpointing",
    } <= names
