"""Unit tests for the Laplacian-eigenmaps embedding variant."""

import numpy as np
import pytest

from repro.eval import node_classification_accuracy
from repro.formats import edges_to_csdb
from repro.graphs import planted_partition_edges
from repro.prone.spectral import spectral_embed, sym_normalize


class TestSymNormalize:
    def test_matches_dense_formula(self, paper_csdb):
        dense = paper_csdb.to_dense()
        d = dense.sum(axis=1)
        inv = np.where(d > 0, 1.0 / np.sqrt(d), 0.0)
        expected = np.diag(inv) @ dense @ np.diag(inv)
        assert np.allclose(sym_normalize(paper_csdb).to_dense(), expected)

    def test_structure_preserved(self, skewed_csdb):
        normalized = sym_normalize(skewed_csdb)
        assert np.array_equal(normalized.col_list, skewed_csdb.col_list)
        assert np.array_equal(normalized.perm, skewed_csdb.perm)

    def test_spectrum_bounded_by_one(self, skewed_csdb):
        s = sym_normalize(skewed_csdb).to_dense()
        eigenvalues = np.linalg.eigvalsh((s + s.T) / 2)
        assert np.abs(eigenvalues).max() <= 1.0 + 1e-9

    def test_zero_degree_rows_stay_zero(self):
        m = edges_to_csdb(np.array([[0, 1]]), 4)
        s = sym_normalize(m).to_dense()
        assert np.allclose(s[2], 0.0)
        assert np.allclose(s[3], 0.0)


class TestSpectralEmbed:
    def test_shape_and_norms(self, skewed_csdb):
        emb = spectral_embed(skewed_csdb, dim=8)
        assert emb.shape == (skewed_csdb.n_rows, 8)
        norms = np.linalg.norm(emb, axis=1)
        connected = skewed_csdb.row_degrees()[skewed_csdb.inv_perm] > 0
        assert np.allclose(norms[connected], 1.0)

    def test_deterministic(self, skewed_csdb):
        a = spectral_embed(skewed_csdb, dim=8, seed=2)
        b = spectral_embed(skewed_csdb, dim=8, seed=2)
        assert np.array_equal(a, b)

    def test_top_singular_values_match_dense(self, paper_csdb):
        from repro.prone.tsvd import randomized_tsvd

        s = sym_normalize(paper_csdb)
        _, values, _ = randomized_tsvd(
            s.spmm,
            s.transpose().spmm,
            s.shape,
            rank=3,
            n_power_iterations=8,
            seed=0,
        )
        exact = np.linalg.svd(s.to_dense(), compute_uv=False)[:3]
        assert np.allclose(values, exact, rtol=0.02)

    def test_recovers_communities(self):
        edges, labels = planted_partition_edges(
            400, 6000, n_communities=4, p_in=0.9, seed=8
        )
        emb = spectral_embed(edges_to_csdb(edges, 400), dim=8)
        accuracy = node_classification_accuracy(emb, labels, seed=0)
        assert accuracy > 0.6  # chance is 0.25

    def test_runs_through_engine_factory(self, skewed_csdb):
        """All products route through the instrumented engine."""
        from repro.core import OMeGaConfig
        from repro.core.embedding import OMeGaEmbedder, _InstrumentedMatMul

        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=4, dim=8))
        emb = spectral_embed(
            skewed_csdb,
            dim=8,
            matmul_factory=lambda m: _InstrumentedMatMul(embedder, m),
        )
        assert emb.shape == (skewed_csdb.n_rows, 8)
        assert len(embedder._spmm_results) > 5  # range finder + power its
        assert embedder._spmm_seconds > 0

    def test_invalid_dim(self, paper_csdb):
        with pytest.raises(ValueError, match="dim"):
            spectral_embed(paper_csdb, dim=0)
