"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2.5)
        assert registry.value("hits") == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="increments"):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("plans", kind="degree").inc(3)
        registry.counter("plans", kind="frequency").inc(1)
        assert registry.value("plans", kind="degree") == 3
        assert registry.value("plans", kind="frequency") == 1
        assert registry.family_total("plans") == 4

    def test_untouched_metric_reads_zero(self):
        assert MetricsRegistry().value("never") == 0.0


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy")
        gauge.set(10.0)
        gauge.set(4.0)
        assert registry.value("occupancy") == 4.0

    def test_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 3.0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")


class TestHistogram:
    def test_bucketing(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            hist.observe(v)
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.2)
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(26.55)

    def test_quantile_upper_bounds(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            hist.observe(v)
        # Interior quantiles report the containing bucket's upper bound.
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(0.9) == 3.0  # bound 4.0 clamped to observed max

    def test_quantile_extremes_are_exact(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            hist.observe(v)
        assert hist.quantile(0.0) == 0.5
        assert hist.quantile(1.0) == 3.0

    def test_overflow_quantile_is_max(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(50.0)
        hist.observe(60.0)
        assert hist.quantile(0.5) == 60.0
        assert hist.quantile(1.0) == 60.0

    def test_single_observation_every_quantile(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(3.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 3.0

    def test_empty_quantile_is_nan(self):
        import math

        hist = MetricsRegistry().histogram("h")
        for q in (0.0, 0.5, 1.0):
            assert math.isnan(hist.quantile(q))

    def test_quantile_clamped_into_observed_range(self):
        # All mass in one coarse bucket: the bound (10.0) exceeds every
        # observation, so the quantile must clamp to the observed max.
        hist = MetricsRegistry().histogram("h", buckets=(10.0,))
        for v in (2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.quantile(0.5) == 4.0

    def test_fraction_over(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0):
            hist.observe(v)
        assert hist.fraction_over(0.0) == 1.0  # threshold inside bucket 0
        assert hist.fraction_over(1.0) == pytest.approx(0.75)
        assert hist.fraction_over(2.0) == pytest.approx(0.25)
        assert hist.fraction_over(3.0) == 0.0  # >= observed max
        assert hist.fraction_over(100.0) == 0.0

    def test_fraction_over_empty(self):
        assert MetricsRegistry().histogram("h").fraction_over(1.0) == 0.0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError, match="q must be"):
            MetricsRegistry().histogram("h").quantile(1.5)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError, match="bucket"):
            MetricsRegistry().histogram("h", buckets=())

    def test_record_schema(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        record = hist.to_record()
        assert record["type"] == "metric"
        assert record["kind"] == "histogram"
        assert record["count"] == 1
        assert record["bounds"] == [1.0]
        assert record["bucket_counts"] == [1, 0]

    def test_value_on_histogram_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        with pytest.raises(TypeError, match="histogram"):
            registry.value("h")


class TestHistogramExemplars:
    def test_exemplar_pinned_to_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5, exemplar="req-a")
        hist.observe(5.0, exemplar="req-b")
        hist.observe(100.0, exemplar="req-c")  # +inf overflow bucket
        assert hist.exemplars[0] == [(0.5, "req-a")]
        assert hist.exemplars[1] == [(5.0, "req-b")]
        assert hist.exemplars[2] == [(100.0, "req-c")]

    def test_exemplars_bounded_newest_first(self):
        from repro.obs.metrics import EXEMPLARS_PER_BUCKET

        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        for i in range(10):
            hist.observe(0.5, exemplar=f"req-{i}")
        bucket = hist.exemplars[0]
        assert len(bucket) == EXEMPLARS_PER_BUCKET
        assert bucket[0] == (0.5, "req-9")

    def test_observe_without_exemplar_unchanged(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        assert hist.exemplars == {}
        assert "exemplars" not in hist.to_record()

    def test_record_carries_exemplars(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(0.5, exemplar="req-a")
        record = hist.to_record()
        assert record["exemplars"] == {"0": [[0.5, "req-a"]]}

    def test_prom_rendering_uses_openmetrics_syntax(self):
        from repro.obs.live import render_prom

        hist = MetricsRegistry().histogram(
            "serve.latency", buckets=(1.0,), klass="interactive"
        )
        hist.observe(0.5, exemplar="req-a")
        hist.observe(2.0, exemplar="req-b")
        text = render_prom([hist.to_record()])
        assert (
            'serve_latency_bucket{klass="interactive",le="1"} 1'
            ' # {trace_id="req-a"} 0.5'
        ) in text
        assert (
            'serve_latency_bucket{klass="interactive",le="+Inf"} 2'
            ' # {trace_id="req-b"} 2'
        ) in text


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", k="1") is not registry.counter("a")

    def test_iteration_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        registry.gauge("a", socket=1)
        names = [(m.name, tuple(sorted(m.labels.items()))) for m in registry]
        assert names == sorted(names)

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(2)
        registry.gauge("used", tier="dram").set(7)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["hits"] == 2
        assert snap["used{tier=dram}"] == 7
        assert snap["lat"]["count"] == 1

    def test_to_records_roundtrippable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("hits", kind="degree").inc(1)
        registry.histogram("h", buckets=(1.0,)).observe(2.0)
        payload = json.dumps(registry.to_records())
        records = json.loads(payload)
        assert {r["kind"] for r in records} == {"counter", "histogram"}

    def test_len_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert len(registry) == 2
        registry.reset()
        assert len(registry) == 0
