"""Integration tests: paper-level behavioural shapes across modules.

These assert the qualitative results of the evaluation section on the
scaled analogues: who wins, in what order, and that the headline
mechanisms (EaTA tail reduction, WoFP gains, NaDP gains, scalability)
show up end-to-end.
"""

import numpy as np
import pytest

from repro.core import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    PlacementScheme,
    SpMMEngine,
)
from repro.core.embedding import embedder_for_dataset
from repro.graphs import load_dataset, rmat_edges
from repro.formats import edges_to_csdb


@pytest.fixture(scope="module")
def lj():
    return load_dataset("LJ")


@pytest.fixture(scope="module")
def lj_dense(lj):
    return np.random.default_rng(0).standard_normal((lj.n_nodes, 32))


def spmm(lj, dense, **overrides):
    base = dict(n_threads=30, dim=32, capacity_scale=lj.scale)
    base.update(overrides)
    engine = SpMMEngine(OMeGaConfig(**base))
    return engine.multiply(lj.adjacency_csdb(), dense, compute=False)


class TestTable2Shape:
    """Table II: EaTA < WaTA < RR on SpMM time."""

    def test_allocation_ordering(self, lj, lj_dense):
        times = {
            scheme: spmm(lj, lj_dense, allocation=scheme).sim_seconds
            for scheme in AllocationScheme
        }
        assert (
            times[AllocationScheme.ENTROPY_AWARE]
            < times[AllocationScheme.WORKLOAD_BALANCED]
            < times[AllocationScheme.ROUND_ROBIN]
        )

    def test_rr_gap_is_large(self, lj, lj_dense):
        rr = spmm(lj, lj_dense, allocation=AllocationScheme.ROUND_ROBIN)
        eata = spmm(lj, lj_dense)
        assert rr.sim_seconds > 2 * eata.sim_seconds


class TestFig13Shape:
    """Fig. 13: EaTA's thread-time distribution is tighter than WaTA's."""

    def test_std_and_tails(self, lj, lj_dense):
        eata = spmm(lj, lj_dense).thread_stats
        wata = spmm(
            lj, lj_dense, allocation=AllocationScheme.WORKLOAD_BALANCED
        ).thread_stats
        assert eata.std < wata.std
        assert eata.p99 < wata.p99
        assert eata.p95 < wata.p95


class TestFig14Shape:
    """Fig. 14: WoFP yields a double-digit improvement."""

    def test_wofp_gain(self, lj, lj_dense):
        with_wofp = spmm(lj, lj_dense)
        without = spmm(lj, lj_dense, prefetcher_enabled=False)
        gain = 1.0 - with_wofp.sim_seconds / without.sim_seconds
        assert 0.15 < gain < 0.75


class TestFig15Shape:
    """Fig. 15: NaDP beats the Interleaved OS policy."""

    def test_nadp_spmm_gain(self, lj, lj_dense):
        nadp = spmm(lj, lj_dense)
        interleave = spmm(lj, lj_dense, placement=PlacementScheme.INTERLEAVE)
        assert 1.5 < interleave.sim_seconds / nadp.sim_seconds < 5.0

    def test_local_policy_is_worst(self, lj, lj_dense):
        interleave = spmm(lj, lj_dense, placement=PlacementScheme.INTERLEAVE)
        local = spmm(lj, lj_dense, placement=PlacementScheme.LOCAL)
        assert local.sim_seconds > interleave.sim_seconds


class TestFig16Shape:
    """Fig. 16: throughput grows with threads."""

    def test_throughput_scales_with_threads(self, lj, lj_dense):
        # Throughput grows until the PM saturation knee (~20 threads on
        # the modeled devices, matching Optane behaviour).
        throughputs = [
            spmm(lj, lj_dense, n_threads=t).throughput_nnz_per_s
            for t in (5, 10, 20)
        ]
        assert all(t2 > t1 for t1, t2 in zip(throughputs, throughputs[1:]))

    def test_throughput_plateaus_not_collapses(self, lj, lj_dense):
        at20 = spmm(lj, lj_dense, n_threads=20).throughput_nnz_per_s
        at30 = spmm(lj, lj_dense, n_threads=30).throughput_nnz_per_s
        assert at30 > 0.9 * at20


class TestFig17Shape:
    """Fig. 17: near-linear scaling in threads and graph size."""

    def test_thread_scaling_efficiency(self, lj, lj_dense):
        t1 = spmm(lj, lj_dense, n_threads=1).sim_seconds
        t8 = spmm(lj, lj_dense, n_threads=8).sim_seconds
        t30 = spmm(lj, lj_dense, n_threads=30).sim_seconds
        assert t1 / t8 > 3.0  # near-linear in the pre-saturation regime
        assert t1 / t30 > 4.5  # keeps improving up to the full machine

    def test_size_scaling_roughly_linear(self):
        times = []
        for scale in (10, 12, 14):
            edges = rmat_edges(scale, edge_factor=8, seed=0)
            csdb = edges_to_csdb(edges, 1 << scale)
            dense = np.random.default_rng(0).standard_normal(
                ((1 << scale), 16)
            )
            engine = SpMMEngine(OMeGaConfig(n_threads=8, dim=16))
            times.append(
                (csdb.nnz, engine.multiply(csdb, dense, compute=False).sim_seconds)
            )
        # Time per nnz stays within a factor ~4 across a 16x size sweep.
        per_nnz = [t / n for n, t in times]
        assert max(per_nnz) / min(per_nnz) < 4.0


class TestFig12Shape:
    """Fig. 12 end-to-end ordering on a real pipeline."""

    def test_full_pipeline_ordering(self, lj):
        def run(**overrides):
            embedder = embedder_for_dataset(
                lj, OMeGaConfig(n_threads=16, dim=16), **overrides
            )
            return embedder.embed_dataset(lj).sim_seconds

        omega = run()
        dram = run(memory_mode=MemoryMode.DRAM_ONLY, streaming_enabled=False)
        prone_hm = run(
            allocation=AllocationScheme.ROUND_ROBIN,
            placement=PlacementScheme.INTERLEAVE,
            prefetcher_enabled=False,
            streaming_enabled=False,
        )
        assert dram < omega < prone_hm
        # OMeGa sits within a small factor of the DRAM ideal (§IV-B
        # quotes 54.9% average) while the naive HM port is ~an order off.
        assert omega / dram < 3.0
        assert prone_hm / omega > 3.0
