"""Telemetry diffing between two exported runs."""

import pytest

from repro.obs.export import TelemetrySession
from repro.obs.observatory.diff import (
    STATUS_ADDED,
    STATUS_IMPROVED,
    STATUS_REGRESSED,
    STATUS_REMOVED,
    STATUS_UNCHANGED,
    DeltaRow,
    diff_runs,
    extract_metric_values,
    extract_stage_seconds,
    render_diff,
)


def _span(name, sim, span_id=0):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "parent_id": None,
        "sim_seconds": sim,
        "sim_start": 0.0,
        "wall_seconds": 0.0,
    }


def _counter(name, value, **labels):
    return {
        "type": "metric",
        "kind": "counter",
        "name": name,
        "labels": labels,
        "value": value,
    }


class TestExtractors:
    def test_stage_seconds_aggregates_by_name(self):
        records = [_span("a", 1.0, 0), _span("a", 2.0, 1), _span("b", 4.0, 2)]
        assert extract_stage_seconds(records) == {"a": 3.0, "b": 4.0}

    def test_stage_seconds_skips_malformed(self):
        records = [{"type": "span"}, {"type": "metric", "name": "x"}]
        assert extract_stage_seconds(records) == {}

    def test_metric_values_labelled(self):
        records = [
            _counter("hits", 3.0, kind="degree"),
            _counter("hits", 1.0),
            {"type": "metric", "kind": "histogram", "name": "h"},
        ]
        values = extract_metric_values(records)
        assert values == {"hits{kind=degree}": 3.0, "hits": 1.0}


class TestDiffRuns:
    def test_statuses(self):
        a = [_span("same", 1.0, 0), _span("worse", 1.0, 1),
             _span("better", 1.0, 2), _span("gone", 1.0, 3)]
        b = [_span("same", 1.0, 0), _span("worse", 2.0, 1),
             _span("better", 0.5, 2), _span("new", 1.0, 3)]
        report = diff_runs(a, b, threshold=0.05)
        by_name = {r.name: r.status for r in report.rows if r.group == "stage"}
        assert by_name == {
            "same": STATUS_UNCHANGED,
            "worse": STATUS_REGRESSED,
            "better": STATUS_IMPROVED,
            "gone": STATUS_REMOVED,
            "new": STATUS_ADDED,
        }
        assert [r.name for r in report.regressions] == ["worse"]

    def test_threshold_boundary(self):
        a, b = [_span("s", 1.0)], [_span("s", 1.05)]
        # Exactly at threshold: not a regression (strict inequality).
        assert diff_runs(a, b, threshold=0.05).regressions == []
        assert diff_runs(a, b, threshold=0.04).regressions != []

    def test_metrics_never_gated(self):
        a, b = [_counter("c", 1.0)], [_counter("c", 100.0)]
        report = diff_runs(a, b)
        (row,) = [r for r in report.rows if r.group == "metric"]
        assert row.status == STATUS_UNCHANGED
        assert report.regressions == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            diff_runs([], [], threshold=-0.1)

    def test_delta_and_ratio(self):
        row = DeltaRow(group="stage", name="s", a=2.0, b=3.0, status="x")
        assert row.delta == pytest.approx(1.0)
        assert row.ratio == pytest.approx(0.5)
        missing = DeltaRow(group="stage", name="s", a=None, b=3.0, status="x")
        assert missing.delta is None and missing.ratio is None
        zero = DeltaRow(group="stage", name="s", a=0.0, b=3.0, status="x")
        assert zero.ratio is None

    def test_manifest_comparability(self):
        def records(meta):
            session = TelemetrySession(meta=meta)
            with session.tracer.span("op"):
                session.tracer.advance_sim(1.0)
            return session.records()

        a = records({"command": "t", "threads": 4})
        same = records({"command": "t", "threads": 4})
        other = records({"command": "t", "threads": 8})
        assert diff_runs(a, same).comparable
        assert not diff_runs(a, other).comparable
        # Missing manifests are not *in*comparable, just unknown.
        assert diff_runs([], []).comparable

    def test_cost_traces_diffed(self):
        from repro.memsim.trace import CostTrace

        def records(seconds):
            session = TelemetrySession(meta={"command": "t"})
            trace = CostTrace()
            trace.charge("read_index", seconds, 0)
            session.add_cost_trace("x", trace)
            return session.records()

        report = diff_runs(records(1.0), records(3.0))
        (row,) = [r for r in report.rows if r.group == "cost"]
        assert row.name == "read_index"
        assert row.status == STATUS_REGRESSED


class TestRenderDiff:
    def test_render_names_regressions(self):
        a, b = [_span("solve", 1.0)], [_span("solve", 2.0)]
        text = render_diff(diff_runs(a, b))
        assert "REGRESSED (1): stage:solve" in text

    def test_render_clean(self):
        text = render_diff(diff_runs([_span("s", 1.0)], [_span("s", 1.0)]))
        assert "no regressions above threshold" in text

    def test_render_warns_on_config_mismatch(self):
        def records(threads):
            session = TelemetrySession(meta={"command": "t", "threads": threads})
            return session.records()

        text = render_diff(diff_runs(records(4), records(8)))
        assert "not directly" in text

    def test_render_empty_inputs(self):
        assert "no regressions" in render_diff(diff_runs([], []))
