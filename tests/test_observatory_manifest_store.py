"""Run manifests and the content-addressed baseline store."""

import json

import pytest

from repro.obs.export import TelemetrySession
from repro.obs.observatory.manifest import (
    RunManifest,
    build_manifest,
    canonical_json,
    config_hash,
    content_hash,
    git_sha,
    manifest_from_records,
)
from repro.obs.observatory.store import BaselineStore


class TestContentHash:
    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_content_hash_stable_and_sized(self):
        key = content_hash({"x": [1, 2, 3]})
        assert key == content_hash({"x": [1, 2, 3]})
        assert len(key) == 16
        assert len(content_hash({"x": 1}, length=8)) == 8

    def test_different_payloads_differ(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_config_hash_ignores_volatile_keys(self):
        base = {"graph": "LJ", "threads": 4}
        assert config_hash(base) == config_hash(
            {**base, "type": "meta", "telemetry_version": 99}
        )
        assert config_hash(base) != config_hash({**base, "threads": 8})

    def test_git_sha_returns_nonempty(self):
        sha = git_sha()
        assert isinstance(sha, str) and sha


class TestRunManifest:
    def _manifest(self, **overrides):
        fields = dict(
            git_sha="abc123",
            config_hash="cfg",
            command="embed",
            dataset="LJ",
            seed=7,
            sim_seconds_total=1.5,
            wall_seconds_total=0.25,
            n_spans=3,
            n_metrics=2,
            n_events=1,
        )
        fields.update(overrides)
        return RunManifest(**fields)

    def test_run_id_deterministic(self):
        assert self._manifest().run_id == self._manifest().run_id

    def test_run_id_excludes_wall_seconds(self):
        a = self._manifest(wall_seconds_total=0.25)
        b = self._manifest(wall_seconds_total=99.0)
        assert a.run_id == b.run_id

    def test_run_id_tracks_sim_seconds(self):
        assert (
            self._manifest(sim_seconds_total=1.5).run_id
            != self._manifest(sim_seconds_total=2.5).run_id
        )

    def test_record_roundtrip(self):
        manifest = self._manifest()
        record = manifest.to_record()
        assert record["type"] == "manifest"
        assert record["run_id"] == manifest.run_id
        rebuilt = RunManifest.from_record(record)
        assert rebuilt == manifest
        assert rebuilt.run_id == manifest.run_id

    def test_extra_fields_survive_roundtrip(self):
        manifest = self._manifest(extra={"note": "x"})
        rebuilt = RunManifest.from_record(manifest.to_record())
        assert rebuilt.extra == {"note": "x"}

    def test_build_manifest_wall_total_roots_only(self):
        spans = [
            {"type": "span", "parent_id": None, "wall_seconds": 1.0},
            {"type": "span", "parent_id": 0, "wall_seconds": 0.4},
            {"type": "span", "parent_id": None, "wall_seconds": 2.0},
        ]
        manifest = build_manifest(
            {"graph": "PK", "seed": 3}, spans, [], [], sim_seconds_total=5.0
        )
        assert manifest.wall_seconds_total == pytest.approx(3.0)
        assert manifest.dataset == "PK"
        assert manifest.seed == 3
        assert manifest.n_spans == 3

    def test_manifest_from_records(self):
        assert manifest_from_records([]) is None
        assert manifest_from_records([{"type": "span"}]) is None
        record = self._manifest().to_record()
        found = manifest_from_records([{"type": "meta"}, record])
        assert found is not None and found.run_id == record["run_id"]


class TestSessionManifest:
    def test_records_include_manifest_after_meta(self):
        session = TelemetrySession(meta={"command": "t", "graph": "PK"})
        with session.tracer.span("op"):
            session.tracer.advance_sim(1.0)
        records = session.records()
        assert [r["type"] for r in records[:2]] == ["meta", "manifest"]
        manifest = manifest_from_records(records)
        assert manifest.sim_seconds_total == pytest.approx(1.0)
        assert manifest.dataset == "PK"
        assert manifest.n_spans == 1

    def test_identical_sessions_same_run_id(self):
        def make():
            session = TelemetrySession(meta={"command": "t", "seed": 0})
            with session.tracer.span("op"):
                session.tracer.advance_sim(2.0)
            return session.manifest().run_id

        assert make() == make()


class TestBaselineStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = BaselineStore(tmp_path)
        key = store.put({"stages": {"a": 1.0}})
        assert store.get(key) == {"stages": {"a": 1.0}}
        assert store.keys() == [key]

    def test_put_is_idempotent(self, tmp_path):
        store = BaselineStore(tmp_path)
        assert store.put({"x": 1}) == store.put({"x": 1})
        assert len(store.keys()) == 1

    def test_named_ref_repoints(self, tmp_path):
        store = BaselineStore(tmp_path)
        k1 = store.put({"v": 1}, name="gate")
        assert store.resolve("gate") == k1
        k2 = store.put({"v": 2}, name="gate")
        assert store.resolve("gate") == k2
        # Old object remains addressable.
        assert store.get(k1) == {"v": 1}
        assert store.names() == ["gate"]

    def test_load_by_name_or_key(self, tmp_path):
        store = BaselineStore(tmp_path)
        key = store.put({"v": 3}, name="gate")
        assert store.load("gate") == {"v": 3}
        assert store.load(key) == {"v": 3}

    def test_missing_lookups(self, tmp_path):
        store = BaselineStore(tmp_path)
        assert store.resolve("nope") is None
        assert store.names() == [] and store.keys() == []
        with pytest.raises(KeyError):
            store.get("deadbeef")

    def test_ref_to_unknown_object_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            BaselineStore(tmp_path).set_ref("gate", "deadbeef")

    def test_invalid_ref_name_rejected(self, tmp_path):
        store = BaselineStore(tmp_path)
        key = store.put({"v": 1})
        for bad in ("../escape", ".hidden", "a/b", ""):
            with pytest.raises(ValueError):
                store.set_ref(bad, key)

    def test_corrupt_object_detected(self, tmp_path):
        store = BaselineStore(tmp_path)
        key = store.put({"v": 1})
        path = store.objects_dir / f"{key}.json"
        path.write_text(json.dumps({"v": 2}), encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt"):
            store.get(key)
