"""Unit and behavioural tests for the instrumented SpMM engine."""

import numpy as np
import pytest

from repro.core import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    PlacementScheme,
    SpMMEngine,
)
from repro.memsim import CapacityError, MemoryKind
from repro.memsim.trace import SPMM_CATEGORIES


@pytest.fixture
def dense(skewed_csdb, rng):
    return rng.standard_normal((skewed_csdb.n_cols, 8))


def engine(**overrides):
    defaults = dict(n_threads=6, dim=8)
    defaults.update(overrides)
    return SpMMEngine(OMeGaConfig(**defaults))


class TestCorrectness:
    def test_output_matches_reference(self, skewed_csdb, dense):
        result = engine().multiply(skewed_csdb, dense)
        assert np.allclose(result.output, skewed_csdb.spmm(dense))

    def test_output_identical_across_all_knobs(self, skewed_csdb, dense):
        """OMeGa's optimizations are scheduling/placement only: results
        must be bit-identical across every configuration."""
        reference = None
        for mode in MemoryMode:
            for alloc in AllocationScheme:
                for placement in PlacementScheme:
                    result = engine(
                        memory_mode=mode,
                        allocation=alloc,
                        placement=placement,
                        prefetcher_enabled=mode is MemoryMode.HETEROGENEOUS,
                    ).multiply(skewed_csdb, dense)
                    if reference is None:
                        reference = result.output
                    else:
                        assert np.array_equal(result.output, reference)

    def test_vector_operand(self, skewed_csdb, rng):
        v = rng.standard_normal(skewed_csdb.n_cols)
        result = engine().multiply(skewed_csdb, v)
        assert result.output.shape == (skewed_csdb.n_rows, 1)
        assert np.allclose(result.output.ravel(), skewed_csdb.spmv(v))

    def test_compute_false_skips_numerics(self, skewed_csdb, dense):
        result = engine().multiply(skewed_csdb, dense, compute=False)
        assert result.output is None
        assert result.sim_seconds > 0

    def test_dimension_mismatch(self, skewed_csdb, rng):
        with pytest.raises(ValueError, match="dimension mismatch"):
            engine().multiply(skewed_csdb, rng.standard_normal((3, 2)))


class TestSimulation:
    def test_all_algorithm1_categories_charged(self, skewed_csdb, dense):
        result = engine().multiply(skewed_csdb, dense, compute=False)
        for category in SPMM_CATEGORIES:
            assert result.trace.seconds(category) > 0.0

    def test_get_dense_nnz_dominates(self, skewed_csdb, dense):
        """Fig. 7(a): the scattered dense gathers dominate the cost."""
        result = engine().multiply(skewed_csdb, dense, compute=False)
        dense_cost = result.trace.seconds("get_dense_nnz")
        for category in SPMM_CATEGORIES:
            if category != "get_dense_nnz":
                assert result.trace.seconds(category) < dense_cost

    def test_thread_times_shape(self, skewed_csdb, dense):
        result = engine(n_threads=5).multiply(skewed_csdb, dense, compute=False)
        assert len(result.thread_times) == 5
        assert result.sim_seconds >= result.thread_times.max()

    def test_throughput_metric(self, skewed_csdb, dense):
        result = engine().multiply(skewed_csdb, dense, compute=False)
        assert result.throughput_nnz_per_s == pytest.approx(
            skewed_csdb.nnz / result.sim_seconds
        )

    def test_allocation_overhead_below_one_percent(self, skewed_csdb, dense):
        """§IV-C: thread allocation overhead is negligible."""
        result = engine().multiply(skewed_csdb, dense, compute=False)
        assert result.trace.seconds("allocation") < 0.01 * result.sim_seconds

    def test_prefetch_overhead_small(self, skewed_csdb, dense):
        """§IV-D: EaTA+WoFP overhead averages below ~3% of runtime."""
        result = engine().multiply(skewed_csdb, dense, compute=False)
        overhead = result.trace.seconds("prefetch") + result.trace.seconds(
            "allocation"
        )
        assert overhead < 0.15 * result.trace.total_seconds


class TestMemoryModes:
    def test_dram_fastest_pm_slowest(self, skewed_csdb, dense):
        times = {}
        for mode in MemoryMode:
            times[mode] = engine(
                memory_mode=mode,
                prefetcher_enabled=mode is MemoryMode.HETEROGENEOUS,
            ).multiply(skewed_csdb, dense, compute=False).sim_seconds
        assert times[MemoryMode.DRAM_ONLY] < times[MemoryMode.HETEROGENEOUS]
        assert (
            times[MemoryMode.HETEROGENEOUS] < times[MemoryMode.PM_ONLY]
        )

    def test_pm_gap_is_orders_of_magnitude(self, skewed_csdb, dense):
        hm = engine().multiply(skewed_csdb, dense, compute=False).sim_seconds
        pm = engine(
            memory_mode=MemoryMode.PM_ONLY, prefetcher_enabled=False
        ).multiply(skewed_csdb, dense, compute=False).sim_seconds
        assert pm > 10 * hm

    def test_hm_narrows_gap_toward_dram(self, skewed_csdb, dense):
        """OMeGa lands within a small factor of the DRAM ideal."""
        hm = engine().multiply(skewed_csdb, dense, compute=False).sim_seconds
        dram = engine(memory_mode=MemoryMode.DRAM_ONLY).multiply(
            skewed_csdb, dense, compute=False
        ).sim_seconds
        assert hm < 4 * dram

    def test_dram_capacity_error(self, skewed_csdb, dense):
        # Scale DRAM down so the working set cannot fit.
        with pytest.raises(CapacityError):
            engine(
                memory_mode=MemoryMode.DRAM_ONLY, capacity_scale=10**9
            ).multiply(skewed_csdb, dense)

    def test_hm_is_capacity_robust(self, skewed_csdb, dense):
        # The same scale works on heterogeneous memory (PM capacity).
        result = engine(capacity_scale=10**6).multiply(
            skewed_csdb, dense, compute=False
        )
        assert result.sim_seconds > 0


class TestOptimizationKnobs:
    def test_wofp_helps_on_hm(self, skewed_csdb, dense):
        with_wofp = engine().multiply(skewed_csdb, dense, compute=False)
        without = engine(prefetcher_enabled=False).multiply(
            skewed_csdb, dense, compute=False
        )
        assert without.sim_seconds > with_wofp.sim_seconds
        assert with_wofp.mean_hit_fraction > 0.2

    def test_wofp_disabled_outside_hm(self, skewed_csdb, dense):
        result = engine(memory_mode=MemoryMode.DRAM_ONLY).multiply(
            skewed_csdb, dense, compute=False
        )
        assert result.mean_hit_fraction == 0.0

    def test_nadp_beats_interleave(self, skewed_csdb, dense):
        nadp = engine().multiply(skewed_csdb, dense, compute=False)
        interleave = engine(placement=PlacementScheme.INTERLEAVE).multiply(
            skewed_csdb, dense, compute=False
        )
        assert interleave.sim_seconds > nadp.sim_seconds

    def test_eata_beats_rr(self, skewed_csdb, dense):
        eata = engine(n_threads=12).multiply(skewed_csdb, dense, compute=False)
        rr = engine(
            n_threads=12, allocation=AllocationScheme.ROUND_ROBIN
        ).multiply(skewed_csdb, dense, compute=False)
        assert rr.sim_seconds > eata.sim_seconds

    def test_eata_tail_latency_beats_wata(self, skewed_csdb, dense):
        eata = engine(n_threads=12).multiply(skewed_csdb, dense, compute=False)
        wata = engine(
            n_threads=12, allocation=AllocationScheme.WORKLOAD_BALANCED
        ).multiply(skewed_csdb, dense, compute=False)
        assert eata.thread_stats.std <= wata.thread_stats.std

    def test_asl_streaming_reduces_exposed_time(self, skewed_csdb, dense):
        streamed = engine(capacity_scale=10**6).multiply(
            skewed_csdb, dense, compute=False
        )
        unstreamed = engine(
            capacity_scale=10**6, streaming_enabled=False
        ).multiply(skewed_csdb, dense, compute=False)
        assert (
            unstreamed.trace.seconds("stream_load")
            >= streamed.trace.seconds("stream_load")
        )

    def test_stream_plan_present_only_on_hm(self, skewed_csdb, dense):
        assert engine().multiply(
            skewed_csdb, dense, compute=False
        ).stream_plan is not None
        assert engine(memory_mode=MemoryMode.DRAM_ONLY).multiply(
            skewed_csdb, dense, compute=False
        ).stream_plan is None


class TestScaledCapacity:
    def test_scaled_capacity(self):
        e = engine(capacity_scale=4)
        full = engine(capacity_scale=1)
        assert e.scaled_capacity(MemoryKind.DRAM) == pytest.approx(
            full.scaled_capacity(MemoryKind.DRAM) / 4
        )
