"""Unit tests for the spectral-filter variants and node2vec walks."""

import numpy as np
import pytest

from repro.baselines.node2vec import Node2VecWalker, node2vec_embed
from repro.prone import prone_embed
from repro.prone.filters import heat_kernel_filter, make_filter, ppr_filter
from repro.prone.laplacian import add_identity, chebyshev_operator
from repro.prone.model import ProNEParams


class TestHeatKernel:
    def test_matches_dense_taylor(self, paper_csdb, rng):
        order, s = 6, 0.8
        m = chebyshev_operator(paper_csdb).to_dense()
        a_prime = paper_csdb.to_dense() + np.eye(7)
        x = rng.standard_normal((7, 3))
        expected = x.copy()
        term = x.copy()
        for k in range(1, order + 1):
            term = (m @ term) * (-s / k)
            expected += term
        expected = a_prime @ expected
        got = heat_kernel_filter(
            chebyshev_operator(paper_csdb).spmm,
            add_identity(paper_csdb).spmm,
            x,
            order=order,
            s=s,
        )
        assert np.allclose(got, expected)

    def test_smooths_toward_neighbors(self, skewed_csdb, rng):
        """Heat-kernel output correlates more with neighbor averages."""
        x = rng.standard_normal((skewed_csdb.n_rows, 4))
        out = heat_kernel_filter(
            chebyshev_operator(skewed_csdb).spmm,
            lambda y: y,  # skip aggregation for a pure smoothing check
            x,
            order=6,
            s=1.0,
        )
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError, match="order"):
            heat_kernel_filter(lambda x: x, lambda x: x, rng.random((3, 2)), order=0)
        with pytest.raises(ValueError, match="s must"):
            heat_kernel_filter(
                lambda x: x, lambda x: x, rng.random((3, 2)), s=0.0
            )


class TestPPR:
    def test_converges_and_finite(self, skewed_csdb, rng):
        x = rng.standard_normal((skewed_csdb.n_rows, 4))
        out = ppr_filter(
            chebyshev_operator(skewed_csdb).spmm,
            add_identity(skewed_csdb).spmm,
            x,
            order=10,
        )
        assert out.shape == x.shape
        assert np.all(np.isfinite(out))

    def test_alpha_one_limit_is_identityish(self, paper_csdb, rng):
        x = rng.standard_normal((7, 3))
        out = ppr_filter(
            chebyshev_operator(paper_csdb).spmm,
            lambda y: y,
            x,
            order=5,
            alpha=0.999,
        )
        assert np.allclose(out, x, atol=0.05 * np.abs(x).max() + 0.05)

    def test_invalid_alpha(self, rng):
        with pytest.raises(ValueError, match="alpha"):
            ppr_filter(lambda x: x, lambda x: x, rng.random((3, 2)), alpha=0.0)


class TestFilterRegistry:
    def test_lookup(self):
        assert make_filter("heat") is heat_kernel_filter
        assert make_filter("ppr") is ppr_filter

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown filter"):
            make_filter("nope")

    def test_pipeline_runs_with_each_filter(self, skewed_csdb):
        embeddings = {}
        for name in ("gaussian", "heat", "ppr"):
            params = ProNEParams(dim=8, order=4, spectral_filter=name)
            emb = prone_embed(skewed_csdb, params)
            assert emb.shape == (skewed_csdb.n_rows, 8)
            assert np.all(np.isfinite(emb))
            embeddings[name] = emb
        # The variants genuinely differ.
        assert not np.allclose(embeddings["gaussian"], embeddings["heat"])

    def test_unknown_filter_in_params(self, skewed_csdb):
        params = ProNEParams(dim=8, spectral_filter="nope")
        with pytest.raises(ValueError, match="spectral_filter"):
            prone_embed(skewed_csdb, params)


class TestNode2Vec:
    def test_walk_follows_edges(self, paper_csr):
        walker = Node2VecWalker(paper_csr, p=0.5, q=2.0, seed=0)
        path = walker.walk(0, 25)
        for u, v in zip(path, path[1:]):
            assert int(v) in paper_csr.row(int(u))[0].tolist()

    def test_high_p_discourages_backtracking(self, skewed_csr):
        def backtrack_rate(p):
            walker = Node2VecWalker(skewed_csr, p=p, q=1.0, seed=0)
            returns = total = 0
            for start in range(0, 60):
                path = walker.walk(start, 12)
                for a, b, c in zip(path, path[1:], path[2:]):
                    total += 1
                    returns += int(a == c)
            return returns / max(total, 1)

        assert backtrack_rate(10.0) < backtrack_rate(0.1)

    def test_deterministic(self, paper_csr):
        a = Node2VecWalker(paper_csr, seed=3).walk(1, 10)
        b = Node2VecWalker(paper_csr, seed=3).walk(1, 10)
        assert np.array_equal(a, b)

    def test_invalid_pq(self, paper_csr):
        with pytest.raises(ValueError, match="p and q"):
            Node2VecWalker(paper_csr, p=0.0)

    def test_corpus(self, paper_csr):
        corpus = Node2VecWalker(paper_csr, seed=0).build_corpus(2, 8)
        assert len(corpus) > 0
        assert all(len(walk) >= 2 for walk in corpus)

    def test_embed_end_to_end(self, skewed_csr):
        emb = node2vec_embed(
            skewed_csr, dim=8, walks_per_node=2, walk_length=8, epochs=1
        )
        assert emb.shape == (skewed_csr.n_rows, 8)
        assert np.all(np.isfinite(emb))


class TestCalibration:
    def test_report_in_band_on_pk(self):
        from repro.bench.calibration import calibration_report, format_report

        points = calibration_report("PK")
        text = format_report(points)
        assert "Calibration" in text
        # The substantive check: every headline ratio is inside its band.
        for point in points:
            assert point.in_band, f"{point.name}: {point.measured}"
