"""Profile aggregation and the collapsed-stack flamegraph export.

The headline property: for any span stream a :class:`SpanTracer`
produces — including annotation spans recorded with ``advance=False`` —
the per-node simulated *self* times of the profile tree sum exactly to
the run's total simulated seconds.
"""

import pytest

from repro.graphs.rmat import rmat_edges
from repro.obs.export import TelemetrySession
from repro.obs.observatory.profile import (
    ROOT_NAME,
    build_profile,
    collapsed_stacks,
    hot_spans,
    parse_collapsed,
    self_sim_sum,
    total_sim_seconds,
    write_collapsed,
)
from repro.obs.tracer import SpanTracer


def _spans(tracer):
    return tracer.to_records()


class TestBuildProfile:
    def test_nested_totals_and_self(self):
        tracer = SpanTracer()
        with tracer.span("embed"):
            with tracer.span("read"):
                tracer.advance_sim(1.0)
            with tracer.span("solve"):
                tracer.advance_sim(2.0)
            tracer.advance_sim(0.5)
        profile = build_profile(_spans(tracer))
        embed = profile.children["embed"]
        assert embed.sim_total == pytest.approx(3.5)
        assert embed.sim_self == pytest.approx(0.5)
        assert embed.children["read"].sim_self == pytest.approx(1.0)
        assert embed.children["solve"].sim_self == pytest.approx(2.0)
        assert profile.sim_total == pytest.approx(3.5)

    def test_repeated_names_aggregate(self):
        tracer = SpanTracer()
        with tracer.span("loop"):
            for _ in range(3):
                with tracer.span("step"):
                    tracer.advance_sim(1.0)
        profile = build_profile(_spans(tracer))
        step = profile.children["loop"].children["step"]
        assert step.calls == 3
        assert step.sim_total == pytest.approx(3.0)

    def test_annotation_spans_clipped_to_zero(self):
        """record(advance=False) children must not inflate the profile."""
        tracer = SpanTracer()
        with tracer.span("embed"):
            tracer.advance_sim(1.0)
            with tracer.span("summary"):
                # Zero-length parent: annotation children claim time the
                # cursor never advanced through.
                tracer.record("fake_step", sim_seconds=100.0)
        profile = build_profile(_spans(tracer))
        summary = profile.children["embed"].children["summary"]
        fake = summary.children["fake_step"]
        assert fake.sim_total == 0.0
        assert profile.sim_total == pytest.approx(1.0)

    def test_adversarial_records_tolerated(self):
        records = [
            {"type": "span"},  # no name
            {"type": "span", "name": ""},  # empty name
            {"type": "span", "name": "ok"},  # no timings at all
            {"type": "span", "name": "neg", "sim_seconds": -5.0},
            {"type": "span", "name": "orphan", "parent_id": 999,
             "sim_seconds": 1.0, "sim_start": 0.0, "span_id": 7},
        ]
        profile = build_profile(records)
        # Unknown parents fall back to the root; negatives clamp to 0.
        assert set(profile.children) == {"ok", "neg", "orphan"}
        assert profile.children["neg"].sim_total == 0.0
        assert self_sim_sum(profile) == pytest.approx(profile.sim_total)

    def test_empty(self):
        profile = build_profile([])
        assert profile.children == {}
        assert profile.sim_total == 0.0


class TestSelfSumInvariant:
    def test_synthetic_with_annotations(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            tracer.advance_sim(1.0)
            with tracer.span("b"):
                tracer.advance_sim(2.0)
                tracer.record("note", sim_seconds=50.0)
            tracer.record("other_note", sim_seconds=9.0)
        with tracer.span("c"):
            tracer.advance_sim(4.0)
        profile = build_profile(_spans(tracer))
        assert total_sim_seconds(profile) == pytest.approx(tracer.sim_cursor)
        assert self_sim_sum(profile) == pytest.approx(tracer.sim_cursor)

    def test_real_embedding_run(self):
        """The full pipeline's spans (annotation-heavy) obey the invariant."""
        from repro.core.config import OMeGaConfig
        from repro.core.embedding import OMeGaEmbedder

        session = TelemetrySession(meta={"command": "test"})
        config = OMeGaConfig(n_threads=2, dim=4, seed=0)
        embedder = OMeGaEmbedder(
            config, tracer=session.tracer, metrics=session.metrics
        )
        edges = rmat_edges(8, edge_factor=4.0, seed=0)
        embedder.embed_edges(edges, 1 << 8)
        spans = [r for r in session.records() if r.get("type") == "span"]
        profile = build_profile(spans)
        total = session.tracer.sim_cursor
        assert total > 0.0
        assert total_sim_seconds(profile) == pytest.approx(total)
        assert self_sim_sum(profile) == pytest.approx(total)


class TestCollapsedStacks:
    def _tracer(self):
        tracer = SpanTracer()
        with tracer.span("embed"):
            with tracer.span("read"):
                tracer.advance_sim(1.5e-3)
            tracer.advance_sim(0.5e-3)
        return tracer

    def test_format(self):
        profile = build_profile(_spans(self._tracer()))
        text = collapsed_stacks(profile)
        lines = dict(
            line.rsplit(" ", 1) for line in text.strip().splitlines()
        )
        assert lines[f"{ROOT_NAME};embed"] == "500000"
        assert lines[f"{ROOT_NAME};embed;read"] == "1500000"

    def test_roundtrip_and_sum_property(self, tmp_path):
        tracer = self._tracer()
        profile = build_profile(_spans(tracer))
        path = write_collapsed(profile, tmp_path / "out.folded")
        parsed = parse_collapsed(path.read_text(encoding="utf-8"))
        # Integer-nanosecond rounding: half a tick per emitted line.
        tolerance = 0.5e-9 * max(len(parsed), 1)
        assert sum(parsed.values()) == pytest.approx(
            tracer.sim_cursor, abs=tolerance
        )

    def test_real_run_collapsed_sums_to_total(self, tmp_path):
        """Acceptance: per-stage self times in the exported collapsed
        file sum to the run's total simulated seconds."""
        from repro.core.config import OMeGaConfig
        from repro.core.embedding import OMeGaEmbedder

        session = TelemetrySession(meta={"command": "test"})
        embedder = OMeGaEmbedder(
            OMeGaConfig(n_threads=2, dim=4, seed=1),
            tracer=session.tracer,
            metrics=session.metrics,
        )
        edges = rmat_edges(8, edge_factor=4.0, seed=1)
        embedder.embed_edges(edges, 1 << 8)
        spans = [r for r in session.records() if r.get("type") == "span"]
        path = write_collapsed(build_profile(spans), tmp_path / "run.folded")
        parsed = parse_collapsed(path.read_text(encoding="utf-8"))
        tolerance = 0.5e-9 * max(len(parsed), 1)
        assert sum(parsed.values()) == pytest.approx(
            session.tracer.sim_cursor, abs=tolerance
        )

    def test_wall_clock_and_bad_clock(self):
        profile = build_profile(_spans(self._tracer()))
        assert collapsed_stacks(profile, clock="wall")  # nonempty
        with pytest.raises(ValueError, match="clock"):
            collapsed_stacks(profile, clock="cpu")

    def test_empty_profile_renders_empty(self):
        assert collapsed_stacks(build_profile([])) == ""


class TestHotSpans:
    def test_ranking_excludes_root(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("hot"):
                tracer.advance_sim(5.0)
            with tracer.span("cold"):
                tracer.advance_sim(1.0)
            tracer.advance_sim(2.0)
        ranked = hot_spans(build_profile(_spans(tracer)), top_n=2)
        assert [n.name for n in ranked] == ["hot", "outer"]
        assert all(n.path[0] == ROOT_NAME for n in ranked)

    def test_top_n_clamps(self):
        assert hot_spans(build_profile([]), top_n=5) == []
