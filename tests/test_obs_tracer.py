"""Unit tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, SpanTracer


class TestSpanBasics:
    def test_nested_spans_parent_links(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == 1
        assert outer.parent_id is None
        assert outer.depth == 0
        assert [s.name for s in tracer.finished] == ["outer", "inner"]

    def test_sim_seconds_from_cursor(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            tracer.advance_sim(1.0)
            with tracer.span("inner"):
                tracer.advance_sim(2.0)
            tracer.advance_sim(0.5)
        outer = tracer.find("outer")[0]
        inner = tracer.find("inner")[0]
        assert inner.sim_seconds == pytest.approx(2.0)
        assert outer.sim_seconds == pytest.approx(3.5)
        assert tracer.sim_cursor == pytest.approx(3.5)

    def test_wall_seconds_nonnegative(self):
        tracer = SpanTracer()
        with tracer.span("op"):
            pass
        assert tracer.find("op")[0].wall_seconds >= 0.0

    def test_attributes_and_set(self):
        tracer = SpanTracer()
        with tracer.span("op", graph="LJ") as span:
            span.set("nnz", 42)
        record = tracer.find("op")[0].to_record()
        assert record["attributes"] == {"graph": "LJ", "nnz": 42}

    def test_error_status_propagates(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        span = tracer.find("boom")[0]
        assert span.status == "error"
        # The span is still closed with valid durations.
        assert span.sim_seconds == 0.0
        assert tracer.current_span is None

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            SpanTracer().advance_sim(-1.0)


class TestDecoratorAndRecord:
    def test_decorator(self):
        tracer = SpanTracer()

        @tracer.trace("fn")
        def fn(x):
            tracer.advance_sim(1.0)
            return x + 1

        assert fn(1) == 2
        assert tracer.find("fn")[0].sim_seconds == pytest.approx(1.0)

    def test_record_does_not_advance_cursor(self):
        tracer = SpanTracer()
        tracer.record("summary", sim_seconds=5.0, nbytes=10)
        assert tracer.sim_cursor == 0.0
        span = tracer.find("summary")[0]
        assert span.sim_seconds == pytest.approx(5.0)
        assert span.attributes["nbytes"] == 10
        assert span.status == "ok"

    def test_record_with_advance(self):
        tracer = SpanTracer()
        tracer.record("step", sim_seconds=2.0, advance=True)
        assert tracer.sim_cursor == pytest.approx(2.0)

    def test_record_under_open_span(self):
        tracer = SpanTracer()
        with tracer.span("parent") as parent:
            child = tracer.record("child", sim_seconds=1.0)
        assert child.parent_id == parent.span_id
        assert child.depth == 1

    def test_record_negative_rejected(self):
        with pytest.raises(ValueError, match="durations"):
            SpanTracer().record("x", sim_seconds=-1.0)


class TestLifecycle:
    def test_finished_in_creation_order(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [s.name for s in tracer.finished] == ["a", "b", "c"]
        ids = [s.span_id for s in tracer.finished]
        assert ids == sorted(ids)

    def test_to_records_schema(self):
        tracer = SpanTracer()
        with tracer.span("op"):
            tracer.advance_sim(1.0)
        (record,) = tracer.to_records()
        for key in (
            "type", "name", "span_id", "parent_id", "depth",
            "sim_seconds", "wall_seconds", "status", "attributes",
        ):
            assert key in record
        assert record["type"] == "span"

    def test_reset(self):
        tracer = SpanTracer()
        with tracer.span("op"):
            tracer.advance_sim(1.0)
        tracer.reset()
        assert tracer.finished == []
        assert tracer.sim_cursor == 0.0

    def test_reset_with_open_span_refused(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError, match="open"):
            with tracer.span("op"):
                tracer.reset()


class TestNullTracer:
    def test_noop_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("op") as span:
            span.set("k", "v")
            tracer.advance_sim(10.0)
        tracer.record("summary", sim_seconds=1.0)
        assert tracer.finished == []
        assert tracer.sim_cursor == 0.0
        assert tracer.to_records() == []

    def test_shared_instance_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)

    def test_public_surface_matches_span_tracer(self):
        """NullTracer must be a drop-in: identical public names, and the
        overridden callables keep SpanTracer's signatures."""
        import inspect

        def surface(cls):
            return {
                name
                for name in dir(cls)
                if not name.startswith("_")
            }

        assert surface(NullTracer) == surface(SpanTracer)
        for name in surface(SpanTracer):
            real = inspect.getattr_static(SpanTracer, name)
            null = inspect.getattr_static(NullTracer, name)
            assert isinstance(null, property) == isinstance(real, property), name
            if callable(real) and not isinstance(real, property):
                assert (
                    inspect.signature(getattr(SpanTracer, name))
                    == inspect.signature(getattr(NullTracer, name))
                ), name

    def test_inherited_members_are_inert(self):
        """The inherited accessors report an empty tracer forever."""
        tracer = NullTracer()
        with tracer.span("a"):
            tracer.record("b", sim_seconds=2.0, advance=True)
            tracer.advance_sim(1.0)
            # current_span is inherited; the null span never lands on
            # the stack, so there is no 'current' span even mid-block.
            assert tracer.current_span is None
        assert tracer.find("a") == []
        assert tracer.sim_cursor == 0.0
        tracer.reset()  # must not raise, even after 'open' spans
        assert tracer.to_records() == []

    def test_null_trace_decorator_returns_fn_unchanged(self):
        tracer = NullTracer()

        def fn(x):
            return x * 2

        assert tracer.trace("fn")(fn) is fn
        assert fn(3) == 6

    def test_null_span_set_is_noop(self):
        tracer = NullTracer()
        with tracer.span("op") as span:
            span.set("key", "value")
        assert span.attributes == {}
