"""Warm-path executor behavior: segment cache, invalidation, threads.

Covers the warm-path contract shared by the real backends:

- bit-identity across the full backend × worker matrix on seeded
  R-MATs (the tiled serial kernel is the reference);
- persistent segment-cache reuse across repeated ``multiply()`` calls
  (same shared segments, hit counters advancing, no re-staging);
- explicit invalidation after in-place matrix mutation
  (``mark_mutated`` → content hash changes → executor re-shares);
- crash during a *cached* call still tears down leak-free;
- fork safety: a forked child abandons inherited pools and the parent
  keeps working;
- the threads backend's in-process failure semantics.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    ExecBackend,
    OMeGaConfig,
    ParallelConfig,
    SpMMEngine,
)
from repro.formats import CSDBMatrix, edges_to_csdb
from repro.formats.csdb import DEFAULT_TILE_BUDGET_BYTES, MAX_TILE_COLS
from repro.graphs import rmat_edges
from repro.parallel import (
    SharedMemoryExecutor,
    SimulatedExecutor,
    ThreadsExecutor,
    WorkerCrashError,
    get_shared_executor,
    get_threads_executor,
    shutdown_shared_executors,
    shutdown_threads_executors,
)


@pytest.fixture(scope="module", autouse=True)
def _close_pools():
    yield
    shutdown_shared_executors()
    shutdown_threads_executors()


def _rmat_csdb(scale: int, seed: int, edge_factor: float = 6.0) -> CSDBMatrix:
    edges = rmat_edges(scale, edge_factor=edge_factor, seed=seed)
    return edges_to_csdb(edges, 1 << scale)


def _serial(matrix, dense, ranges):
    out = np.empty((matrix.n_rows, dense.shape[1]))
    SimulatedExecutor().run_partitions(matrix, dense, ranges, out)
    return out


def _ranges(matrix, n_parts: int):
    bounds = np.linspace(0, matrix.n_rows, n_parts + 1).astype(int)
    return list(zip(bounds[:-1], bounds[1:]))


class TestTiledKernel:
    """The column-tiled inner kernel is bit-identical to CSR reference."""

    @pytest.mark.parametrize("d", [1, 3, MAX_TILE_COLS, MAX_TILE_COLS + 1, 64])
    def test_matches_csr_reference(self, d):
        matrix = _rmat_csdb(8, seed=21)
        dense = np.random.default_rng(d).standard_normal((matrix.n_cols, d))
        expected = matrix.to_csr().spmm(dense)
        got = matrix.spmm(dense)
        assert np.allclose(got, expected)

    @pytest.mark.parametrize("budget", [4096, 1 << 16, DEFAULT_TILE_BUDGET_BYTES, 1 << 30])
    def test_budget_never_changes_bits(self, budget):
        matrix = _rmat_csdb(8, seed=22)
        dense = np.random.default_rng(0).standard_normal((matrix.n_cols, 48))
        reference = matrix.spmm_rows(dense, 0, matrix.n_rows)
        tiled = matrix.spmm_rows(
            dense, 0, matrix.n_rows, budget_bytes=budget
        )
        assert np.array_equal(tiled, reference)

    def test_partitioned_tiling_bit_identical(self):
        matrix = _rmat_csdb(8, seed=23)
        dense = np.random.default_rng(1).standard_normal((matrix.n_cols, 40))
        full = matrix.spmm_rows(dense, 0, matrix.n_rows)
        cut = matrix.n_rows // 3
        parts = np.vstack(
            [
                matrix.spmm_rows(dense, 0, cut),
                matrix.spmm_rows(dense, cut, matrix.n_rows),
            ]
        )
        assert np.array_equal(full, parts)


class TestBackendMatrix:
    """serial × shared_memory × threads agree bitwise, workers 1/2/4."""

    @pytest.mark.parametrize("backend", ["shared_memory", "threads"])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_bit_identity(self, backend, n_workers):
        for seed, scale, d in ((31, 7, 5), (32, 8, 16)):
            matrix = _rmat_csdb(scale, seed=seed)
            dense = np.random.default_rng(seed).standard_normal(
                (matrix.n_cols, d)
            )
            ranges = _ranges(matrix, 5)
            expected = _serial(matrix, dense, ranges)
            pool = (
                get_shared_executor(n_workers)
                if backend == "shared_memory"
                else get_threads_executor(n_workers)
            )
            out = np.empty_like(expected)
            # Twice: the second call rides the warm path.
            for _ in range(2):
                pool.run_partitions(matrix, dense, ranges, out)
                assert np.array_equal(out, expected)

    @pytest.mark.parametrize(
        "backend", [ExecBackend.SHARED_MEMORY, ExecBackend.THREADS]
    )
    def test_engine_multiply_matches_serial(self, backend):
        matrix = _rmat_csdb(8, seed=33)
        dense = np.random.default_rng(2).standard_normal((matrix.n_cols, 8))
        base = dict(n_threads=4, dim=8)
        serial = SpMMEngine(OMeGaConfig(**base)).multiply(matrix, dense)
        engine = SpMMEngine(
            OMeGaConfig(
                **base,
                parallel=ParallelConfig(backend=backend, n_workers=2),
            )
        )
        first = engine.multiply(matrix, dense)
        second = engine.multiply(matrix, dense)  # warm
        assert np.array_equal(first.output, serial.output)
        assert np.array_equal(second.output, serial.output)
        assert first.sim_seconds == serial.sim_seconds


class TestSegmentCacheReuse:
    def test_repeated_calls_reuse_segments_and_count_hits(self):
        matrix = _rmat_csdb(7, seed=41)
        dense = np.random.default_rng(3).standard_normal((matrix.n_cols, 4))
        pool = SharedMemoryExecutor(n_workers=2)
        try:
            ranges = _ranges(matrix, 4)
            out = np.empty((matrix.n_rows, 4))
            pool.run_partitions(matrix, dense, ranges, out)
            assert pool.stats.shared_cache_misses == 1
            names_after_first = sorted(
                spec.name
                for entry in pool._matrices.values()
                for spec in entry[1].handle.specs
            )
            scratch_after_first = sorted(
                seg.segment.name for seg in pool._scratch.values()
            )
            for i in range(3):
                pool.run_partitions(matrix, dense, ranges, out)
                assert pool.stats.shared_cache_hits == 1 + i
            # Same segments, no re-staging, nothing retired.
            assert names_after_first == sorted(
                spec.name
                for entry in pool._matrices.values()
                for spec in entry[1].handle.specs
            )
            assert scratch_after_first == sorted(
                seg.segment.name for seg in pool._scratch.values()
            )
            assert pool.stats.shared_cache_misses == 1
            assert pool._retired == []
        finally:
            pool.close()

    def test_batched_submission_one_plan_per_worker(self):
        matrix = _rmat_csdb(7, seed=42)
        dense = np.ones((matrix.n_cols, 2))
        pool = SharedMemoryExecutor(n_workers=3)
        try:
            out = np.empty((matrix.n_rows, 2))
            pool.run_partitions(matrix, dense, _ranges(matrix, 8), out)
            # 8 partitions, 3 workers -> exactly 3 plans, not 8 enqueues.
            assert pool.stats.plans == 3
            assert pool.stats.partitions == 8
            assert pool.stats.last_submit_wall_s > 0.0
            assert pool.stats.last_call_wall_s >= pool.stats.last_submit_wall_s
        finally:
            pool.close()

    def test_dense_changes_are_picked_up_on_the_warm_path(self):
        # The matrix segments are cached; the dense operand is re-copied
        # every call — a Chebyshev iteration changes it each time.
        matrix = _rmat_csdb(7, seed=43)
        pool = SharedMemoryExecutor(n_workers=2)
        try:
            ranges = _ranges(matrix, 4)
            out = np.empty((matrix.n_rows, 3))
            for seed in (0, 1, 2):
                dense = np.random.default_rng(seed).standard_normal(
                    (matrix.n_cols, 3)
                )
                pool.run_partitions(matrix, dense, ranges, out)
                assert np.array_equal(out, _serial(matrix, dense, ranges))
        finally:
            pool.close()


class TestInvalidation:
    def test_mark_mutated_changes_content_hash(self):
        matrix = _rmat_csdb(6, seed=51)
        h = matrix.content_hash()
        assert h == matrix.content_hash()  # cached
        matrix.nnz_list *= 2.0
        matrix.mark_mutated()
        assert matrix.content_hash() != h

    def test_mutation_reshapes_the_shared_copy(self):
        matrix = _rmat_csdb(7, seed=52)
        dense = np.random.default_rng(4).standard_normal((matrix.n_cols, 4))
        pool = SharedMemoryExecutor(n_workers=2)
        try:
            ranges = _ranges(matrix, 4)
            out = np.empty((matrix.n_rows, 4))
            pool.run_partitions(matrix, dense, ranges, out)
            stale_names = [
                spec.name
                for entry in pool._matrices.values()
                for spec in entry[1].handle.specs
            ]
            # In-place reweighting, announced: the next call must not
            # serve results from the stale shared copy.
            matrix.nnz_list *= 0.5
            matrix.mark_mutated()
            pool.run_partitions(matrix, dense, ranges, out)
            assert pool.stats.invalidations == 1
            assert np.array_equal(out, _serial(matrix, dense, ranges))
            fresh_names = [
                spec.name
                for entry in pool._matrices.values()
                for spec in entry[1].handle.specs
            ]
            assert set(stale_names).isdisjoint(fresh_names)
            # A further unmutated call rides the new cached copy.
            pool.run_partitions(matrix, dense, ranges, out)
            assert pool.stats.invalidations == 1
            assert pool.stats.shared_cache_hits >= 1
        finally:
            pool.close()
        from multiprocessing import shared_memory

        for name in stale_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestCrashDuringCachedCall:
    def test_crash_on_warm_call_releases_every_segment(self):
        matrix = _rmat_csdb(7, seed=61)
        dense = np.random.default_rng(5).standard_normal((matrix.n_cols, 3))
        pool = SharedMemoryExecutor(n_workers=2, call_timeout_s=30.0)
        ranges = _ranges(matrix, 4)
        out = np.empty((matrix.n_rows, 3))
        pool.run_partitions(matrix, dense, ranges, out)  # cold: stage + cache
        assert pool.stats.shared_cache_misses == 1
        segment_names = [
            spec.name
            for entry in pool._matrices.values()
            for spec in entry[1].handle.specs
        ] + [seg.segment.name for seg in pool._scratch.values()]
        assert segment_names

        with pytest.raises(WorkerCrashError):
            pool.run_partitions(
                matrix, dense, ranges, out, _inject_crash=True
            )
        assert pool.closed
        from multiprocessing import shared_memory

        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestForkSafety:
    def test_forked_child_abandons_parent_pools(self):
        matrix = _rmat_csdb(6, seed=71)
        dense = np.ones((matrix.n_cols, 2))
        pool = get_shared_executor(2)
        ranges = _ranges(matrix, 2)
        out = np.empty((matrix.n_rows, 2))
        pool.run_partitions(matrix, dense, ranges, out)
        expected = out.copy()

        pid = os.fork()
        if pid == 0:
            # Child: the fork hook must have abandoned the inherited
            # pool — closed, bookkeeping empty — and close() must be a
            # no-op that cannot unlink the parent's segments.
            ok = (
                pool.closed
                and pool._matrices == {}
                and pool._scratch == {}
                and not pool._workers
            )
            try:
                pool.close()
                import repro.parallel.shared as shared_module

                ok = ok and shared_module._POOLS == {}
            except BaseException:
                ok = False
            os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # Parent: pool and segments untouched by the child's exit.
        assert not pool.closed
        pool.run_partitions(matrix, dense, ranges, out)
        assert np.array_equal(out, expected)

    def test_shutdown_shared_executors_closes_registry(self):
        pool = get_shared_executor(1)
        assert get_shared_executor(1) is pool
        shutdown_shared_executors()
        assert pool.closed
        fresh = get_shared_executor(1)
        assert fresh is not pool and not fresh.closed


class TestThreadsBackendSemantics:
    def test_exception_propagates_and_pool_survives(self):
        matrix = _rmat_csdb(6, seed=81)
        pool = ThreadsExecutor(n_workers=2)
        try:
            out = np.empty((matrix.n_rows, 2))
            bad_dense = np.ones((matrix.n_cols + 1, 2))  # dimension mismatch
            with pytest.raises(ValueError, match="dimension mismatch"):
                pool.run_partitions(
                    matrix, bad_dense, _ranges(matrix, 2), out
                )
            assert not pool.closed
            dense = np.ones((matrix.n_cols, 2))
            ranges = _ranges(matrix, 2)
            pool.run_partitions(matrix, dense, ranges, out)
            assert np.array_equal(out, _serial(matrix, dense, ranges))
        finally:
            pool.close()

    def test_partition_spans_have_nonnegative_queue_wait(self):
        from repro.obs.tracer import SpanTracer

        matrix = _rmat_csdb(7, seed=82)
        dense = np.random.default_rng(6).standard_normal((matrix.n_cols, 4))
        tracer = SpanTracer()
        engine = SpMMEngine(
            OMeGaConfig(
                n_threads=4,
                dim=4,
                parallel=ParallelConfig(
                    backend=ExecBackend.THREADS, n_workers=2
                ),
            ),
            tracer=tracer,
        )
        engine.multiply(matrix, dense)
        spans = [
            s for s in tracer.finished if s.name == "spmm_partition"
        ]
        assert len(spans) >= 2
        for span in spans:
            assert span.attributes["queue_wait_s"] >= 0.0
            assert span.attributes["kernel_wall_s"] >= 0.0

    def test_empty_ranges_zero_output(self):
        matrix = _rmat_csdb(6, seed=83)
        pool = ThreadsExecutor(n_workers=1)
        try:
            out = np.full((matrix.n_rows, 2), np.nan)
            pool.run_partitions(matrix, np.ones((matrix.n_cols, 2)), [], out)
            assert np.array_equal(out, np.zeros_like(out))
        finally:
            pool.close()
