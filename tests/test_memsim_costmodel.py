"""Unit tests for the cost model, including the Eq. 5 entropy path."""

import pytest

from repro.memsim import (
    AccessPattern,
    CostModel,
    Locality,
    Operation,
    dram_spec,
    pm_spec,
    ssd_spec,
)


@pytest.fixture
def model():
    return CostModel()


class TestAccessTime:
    def test_zero_bytes_is_free(self, model):
        assert (
            model.access_time(
                dram_spec(),
                Operation.READ,
                AccessPattern.SEQUENTIAL,
                Locality.LOCAL,
                0,
            )
            == 0.0
        )

    def test_negative_bytes_rejected(self, model):
        with pytest.raises(ValueError, match="nbytes"):
            model.access_time(
                dram_spec(),
                Operation.READ,
                AccessPattern.SEQUENTIAL,
                Locality.LOCAL,
                -1,
            )

    def test_sequential_scales_linearly(self, model):
        args = (
            dram_spec(),
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
        )
        t1 = model.access_time(*args, 2**24)
        t2 = model.access_time(*args, 2**25)
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_random_slower_than_sequential(self, model):
        for device in (dram_spec(), pm_spec()):
            seq = model.access_time(
                device,
                Operation.READ,
                AccessPattern.SEQUENTIAL,
                Locality.LOCAL,
                2**24,
            )
            rand = model.access_time(
                device,
                Operation.READ,
                AccessPattern.RANDOM,
                Locality.LOCAL,
                2**24,
            )
            assert rand > seq

    def test_remote_write_slower_than_local(self, model):
        local = model.access_time(
            pm_spec(),
            Operation.WRITE,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            2**24,
        )
        remote = model.access_time(
            pm_spec(),
            Operation.WRITE,
            AccessPattern.SEQUENTIAL,
            Locality.REMOTE,
            2**24,
        )
        assert remote > 2.0 * local

    def test_sequential_not_latency_bound(self, model):
        # A large sequential SSD scan must be bandwidth-bound: per-burst
        # latency would make it ~30x slower.
        nbytes = 2**28
        t = model.access_time(
            ssd_spec(),
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            nbytes,
        )
        key = (Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        bandwidth_bound = nbytes / ssd_spec().per_thread_bandwidth(*key)
        assert t == pytest.approx(bandwidth_bound, rel=0.05)

    def test_small_random_access_latency_bound(self, model):
        # A tiny random PM read costs at least one device latency.
        t = model.access_time(
            pm_spec(),
            Operation.READ,
            AccessPattern.RANDOM,
            Locality.LOCAL,
            8,
        )
        assert t >= pm_spec().latency(Operation.READ, Locality.LOCAL)

    def test_contention_slows_each_thread(self, model):
        args = (
            pm_spec(),
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            2**24,
        )
        alone = model.access_time(*args, threads_sharing=1)
        crowded = model.access_time(*args, threads_sharing=16)
        assert crowded > alone


class TestEntropyPath:
    def test_z_zero_matches_sequential_bandwidth(self, model):
        pm = pm_spec()
        bw = model.entropy_interpolated_bandwidth(pm, Locality.LOCAL, 0.0)
        seq = pm.per_thread_bandwidth(
            Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL, 1
        )
        assert bw == pytest.approx(seq)

    def test_z_one_matches_scattered_floor(self, model):
        pm = pm_spec()
        bw = model.entropy_interpolated_bandwidth(pm, Locality.LOCAL, 1.0)
        seq = pm.per_thread_bandwidth(
            Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL, 1
        )
        assert bw == pytest.approx(seq * model.beta(pm, Locality.LOCAL))

    def test_bandwidth_monotone_in_entropy(self, model):
        pm = pm_spec()
        values = [
            model.entropy_interpolated_bandwidth(pm, Locality.LOCAL, z)
            for z in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(b1 > b2 for b1, b2 in zip(values, values[1:]))

    def test_invalid_z_rejected(self, model):
        with pytest.raises(ValueError, match="z_entropy"):
            model.entropy_interpolated_bandwidth(pm_spec(), Locality.LOCAL, 1.5)

    def test_entropy_access_time_zero_bytes(self, model):
        assert (
            model.entropy_access_time(pm_spec(), Locality.LOCAL, 0.0, 0.5)
            == 0.0
        )

    def test_pm_scatter_penalty_stronger_than_dram(self, model):
        # The PM scattered floor (relative to its own sequential) must be
        # far below DRAM's: the core reason WoFP pins hot rows in DRAM.
        assert model.beta(pm_spec(), Locality.LOCAL) < 0.5 * model.beta(
            dram_spec(), Locality.LOCAL
        )


class TestCompute:
    def test_compute_time_linear(self, model):
        assert model.compute_time(2e9) == pytest.approx(
            2 * model.compute_time(1e9)
        )

    def test_negative_macs_rejected(self, model):
        with pytest.raises(ValueError, match="macs"):
            model.compute_time(-1.0)
