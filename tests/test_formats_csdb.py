"""Unit tests for the CSDB format (§III-A), including the paper's example."""

import numpy as np
import pytest

from repro.formats import CSDBMatrix, CSRMatrix


class TestPaperExample:
    """The worked example of Fig. 5: |V|=7, |E|=11."""

    def test_block_structure(self, paper_csdb):
        # Degree sequence: two deg-4 nodes, four deg-3, one deg-2 (the
        # fixture graph); deg_list is strictly descending.
        assert np.all(np.diff(paper_csdb.deg_list) < 0)
        assert paper_csdb.deg_ind[0] == 0
        assert paper_csdb.deg_ind[-1] == 7
        block_sizes = np.diff(paper_csdb.deg_ind)
        assert int((block_sizes * paper_csdb.deg_list).sum()) == 22  # 2|E|

    def test_neighbors_of_v1(self, paper_csdb):
        cols, vals = paper_csdb.neighbors(1)
        assert sorted(cols.tolist()) == [0, 3, 4, 6]
        assert np.all(vals == 1.0)

    def test_neighbors_every_node_matches_csr(self, paper_csdb, paper_csr):
        for node in range(7):
            csdb_cols, _ = paper_csdb.neighbors(node)
            csr_cols, _ = paper_csr.row(node)
            assert sorted(csdb_cols.tolist()) == sorted(csr_cols.tolist())

    def test_row_ptr_eq1(self, paper_csdb):
        # Eq. 1: the pointer of each CSDB row equals the prefix sum of
        # preceding degrees.
        degrees = paper_csdb.row_degrees()
        expected = 0
        for row in range(paper_csdb.n_rows):
            assert paper_csdb.row_ptr(row) == expected
            expected += degrees[row]
        assert paper_csdb.row_ptr(paper_csdb.n_rows) == paper_csdb.nnz

    def test_index_is_compressed(self, paper_csdb, paper_csr):
        # O(|distinct degrees|) beats O(|V|) even on 7 nodes here.
        assert paper_csdb.index_bytes() < paper_csr.index_bytes()


class TestStructure:
    def test_from_csr_roundtrip(self, skewed_csr):
        csdb = CSDBMatrix.from_csr(skewed_csr)
        assert np.allclose(csdb.to_dense(), skewed_csr.to_dense())

    def test_to_csr_roundtrip(self, skewed_csdb):
        back = skewed_csdb.to_csr()
        assert np.allclose(back.to_dense(), skewed_csdb.to_dense())

    def test_perm_is_permutation(self, skewed_csdb):
        assert sorted(skewed_csdb.perm.tolist()) == list(
            range(skewed_csdb.n_rows)
        )

    def test_inv_perm(self, skewed_csdb):
        assert np.array_equal(
            skewed_csdb.perm[skewed_csdb.inv_perm],
            np.arange(skewed_csdb.n_rows),
        )

    def test_rows_sorted_by_descending_degree(self, skewed_csdb):
        degrees = skewed_csdb.row_degrees()
        assert np.all(np.diff(degrees) <= 0)

    def test_nnz_prefix(self, skewed_csdb):
        prefix = skewed_csdb.nnz_prefix()
        assert prefix[0] == 0
        assert prefix[-1] == skewed_csdb.nnz
        assert np.all(np.diff(prefix) == skewed_csdb.row_degrees())

    def test_block_of_row_bounds(self, paper_csdb):
        with pytest.raises(IndexError):
            paper_csdb.block_of_row(7)
        with pytest.raises(IndexError):
            paper_csdb.block_of_row(-1)

    def test_empty_matrix(self):
        empty = CSDBMatrix.from_coo([], [], [], (5, 5))
        assert empty.nnz == 0
        assert empty.n_blocks == 1  # the all-zero degree block
        assert np.allclose(empty.to_dense(), 0.0)

    def test_zero_degree_rows_present(self):
        # Node 3 has no edges: it must land in a trailing degree-0 block.
        m = CSDBMatrix.from_coo([0, 1], [1, 0], [1.0, 1.0], (4, 4))
        assert 0 in m.deg_list
        assert m.degree_of_row(m.n_rows - 1) == 0

    def test_validation_rejects_bad_deg_list(self):
        with pytest.raises(ValueError, match="descending"):
            CSDBMatrix(
                deg_list=[1, 2],
                deg_ind=[0, 1, 2],
                col_list=[0, 0, 1],
                nnz_list=[1.0, 1.0, 1.0],
                perm=[0, 1],
                shape=(2, 2),
            )

    def test_validation_rejects_inconsistent_nnz(self):
        with pytest.raises(ValueError, match="block structure"):
            CSDBMatrix(
                deg_list=[2],
                deg_ind=[0, 1],
                col_list=[0],
                nnz_list=[1.0],
                perm=[0],
                shape=(1, 2),
            )


class TestAlgebra:
    def test_spmm_matches_dense(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 6))
        assert np.allclose(skewed_csdb.spmm(b), skewed_csdb.to_dense() @ b)

    def test_spmm_chunked_matches_unchunked(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 4))
        assert np.allclose(
            skewed_csdb.spmm(b, chunk_rows=37), skewed_csdb.spmm(b)
        )

    def test_spmm_rows_partition_consistency(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 3))
        full = skewed_csdb.spmm(b)
        mid = skewed_csdb.n_rows // 3
        top = skewed_csdb.spmm_rows(b, 0, mid)
        bottom = skewed_csdb.spmm_rows(b, mid, skewed_csdb.n_rows)
        assert np.allclose(full[skewed_csdb.perm[:mid]], top)
        assert np.allclose(full[skewed_csdb.perm[mid:]], bottom)

    def test_spmm_rows_empty_range(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 3))
        out = skewed_csdb.spmm_rows(b, 5, 5)
        assert out.shape == (0, 3)

    def test_spmm_rows_invalid_range(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 3))
        with pytest.raises(ValueError, match="invalid row range"):
            skewed_csdb.spmm_rows(b, 5, 3)

    def test_spmm_vector(self, paper_csdb, rng):
        v = rng.standard_normal(7)
        assert np.allclose(paper_csdb.spmm(v), paper_csdb.to_dense() @ v)

    def test_spmv(self, paper_csdb, rng):
        v = rng.standard_normal(7)
        assert np.allclose(paper_csdb.spmv(v), paper_csdb.to_dense() @ v)

    def test_spmm_dimension_mismatch(self, paper_csdb, rng):
        with pytest.raises(ValueError, match="dimension mismatch"):
            paper_csdb.spmm(rng.standard_normal((9, 2)))

    def test_transpose(self, skewed_csdb):
        assert np.allclose(
            skewed_csdb.transpose().to_dense(), skewed_csdb.to_dense().T
        )

    def test_transpose_rectangular(self):
        m = CSDBMatrix.from_coo([0, 0, 1], [2, 3, 0], [1.0, 2.0, 3.0], (2, 4))
        assert np.allclose(m.transpose().to_dense(), m.to_dense().T)

    def test_add(self, paper_csdb):
        assert np.allclose(
            (paper_csdb + paper_csdb).to_dense(), 2 * paper_csdb.to_dense()
        )

    def test_sub_to_zero(self, paper_csdb):
        assert np.allclose((paper_csdb - paper_csdb).to_dense(), 0.0)

    def test_add_shape_mismatch(self, paper_csdb):
        other = CSDBMatrix.from_coo([0], [0], [1.0], (3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            paper_csdb + other

    def test_scale_preserves_structure(self, paper_csdb):
        scaled = paper_csdb.scale(3.0)
        assert np.array_equal(scaled.deg_list, paper_csdb.deg_list)
        assert np.array_equal(scaled.perm, paper_csdb.perm)
        assert np.allclose(scaled.to_dense(), 3 * paper_csdb.to_dense())

    def test_col_degrees(self, paper_csdb, paper_csr):
        assert np.array_equal(paper_csdb.col_degrees(), paper_csr.col_degrees())

    def test_weighted_matrix(self, rng):
        rows = rng.integers(0, 50, size=200)
        cols = rng.integers(0, 50, size=200)
        vals = rng.standard_normal(200)
        csdb = CSDBMatrix.from_coo(rows, cols, vals, (50, 50))
        csr = CSRMatrix.from_coo(rows, cols, vals, (50, 50))
        b = rng.standard_normal((50, 4))
        assert np.allclose(csdb.spmm(b), csr.spmm(b))


class TestBlockedKernel:
    """Byte-budgeted chunking must not change a single bit."""

    def test_budget_blocked_is_bitwise_equal(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 7))
        full = skewed_csdb.spmm(b)
        assert np.array_equal(skewed_csdb.spmm(b, budget_bytes=4096), full)
        assert np.array_equal(skewed_csdb.spmm(b, chunk_rows=11), full)

    def test_spmm_rows_budget_bitwise_equal(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 5))
        mid = skewed_csdb.n_rows // 2
        assert np.array_equal(
            skewed_csdb.spmm_rows(b, 0, mid, budget_bytes=4096),
            skewed_csdb.spmm_rows(b, 0, mid),
        )

    def test_chunk_boundaries_are_row_aligned(self, skewed_csdb):
        bounds = skewed_csdb._chunk_boundaries(
            0, skewed_csdb.n_rows, d=8, budget_bytes=4096
        )
        assert bounds[0] == 0 and bounds[-1] == skewed_csdb.n_rows
        assert np.all(np.diff(bounds) >= 1)

    def test_verify_passes_against_scipy_csr(self, skewed_csdb, rng):
        b = rng.standard_normal((skewed_csdb.n_cols, 4))
        out = skewed_csdb.spmm(b, verify=True)
        assert np.allclose(out, skewed_csdb.to_dense() @ b)

    def test_verify_raises_on_kernel_mismatch(
        self, skewed_csdb, rng, monkeypatch
    ):
        from repro.formats import KernelVerificationError

        b = rng.standard_normal((skewed_csdb.n_cols, 3))
        # Skew the CSR reference: verification must notice the blocked
        # kernel and the reference disagreeing.
        reference = skewed_csdb.to_csr()
        monkeypatch.setattr(
            skewed_csdb,
            "to_csr",
            lambda: CSRMatrix(
                reference.indptr,
                reference.indices,
                reference.data * 1.01,
                reference.shape,
            ),
        )
        with pytest.raises(KernelVerificationError, match="max abs error"):
            skewed_csdb.spmm(b, verify=True)


class TestInstanceCaches:
    def test_prefix_and_degree_caches_are_reused(self, skewed_csdb):
        assert skewed_csdb.row_degrees() is skewed_csdb.row_degrees()
        assert skewed_csdb.nnz_prefix() is skewed_csdb.nnz_prefix()
        assert skewed_csdb.col_degrees() is skewed_csdb.col_degrees()

    def test_cached_values_are_correct(self, skewed_csdb):
        degrees = skewed_csdb.row_degrees()
        prefix = skewed_csdb.nnz_prefix()
        assert np.array_equal(prefix, np.concatenate([[0], np.cumsum(degrees)]))

    def test_scale_inherits_pattern_caches(self, skewed_csdb):
        skewed_csdb.row_degrees()
        skewed_csdb.nnz_prefix()
        scaled = skewed_csdb.scale(2.0)
        assert scaled.row_degrees() is skewed_csdb.row_degrees()
        assert scaled.nnz_prefix() is skewed_csdb.nnz_prefix()

    def test_transpose_and_elementwise_get_fresh_caches(self, skewed_csdb):
        skewed_csdb.row_degrees()
        t = skewed_csdb.transpose()
        # The transpose's degrees must describe the transpose, not the
        # original (cache must not leak across structural ops).
        assert int(t.row_degrees().sum()) == t.nnz
        s = skewed_csdb + skewed_csdb
        assert int(s.row_degrees().sum()) == s.nnz


class TestSharedRoundtrip:
    def test_roundtrip_bitwise_and_zero_copy(self, skewed_csdb, rng):
        shared = skewed_csdb.to_shared()
        try:
            attached = CSDBMatrix.from_shared(shared.handle)
            for name in ("deg_list", "deg_ind", "col_list", "nnz_list", "perm"):
                assert np.array_equal(
                    getattr(attached, name), getattr(skewed_csdb, name)
                )
                # Views over the segment buffer, not copies.
                assert getattr(attached, name).base is not None
            b = rng.standard_normal((skewed_csdb.n_cols, 6))
            assert np.array_equal(attached.spmm(b), skewed_csdb.spmm(b))
        finally:
            shared.close()

    def test_close_unlinks_and_is_idempotent(self, paper_csdb):
        from multiprocessing import shared_memory

        shared = paper_csdb.to_shared()
        names = [spec.name for spec in shared.handle.specs]
        shared.close()
        shared.close()
        assert shared.closed
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_empty_matrix_roundtrip(self):
        empty = CSDBMatrix.from_coo([], [], [], (4, 4))
        shared = empty.to_shared()
        try:
            attached = CSDBMatrix.from_shared(shared.handle)
            assert attached.nnz == 0
            out = attached.spmm(np.ones((4, 2)))
            assert np.array_equal(out, np.zeros((4, 2)))
        finally:
            shared.close()
