"""Accounting-detail tests: result objects, stage bookkeeping, capacities."""

import numpy as np
import pytest

from repro.core import OMeGaConfig, OMeGaEmbedder, SpMMEngine
from repro.formats import edges_to_csdb
from repro.graphs import chung_lu_edges
from repro.memsim import MemoryKind
from repro.prone.chebyshev import spmm_calls_for_order
from repro.prone.model import ProNEParams


@pytest.fixture(scope="module")
def graph():
    edges = chung_lu_edges(400, 3000, seed=5)
    return edges, edges_to_csdb(edges, 400)


class TestSpMMResultHelpers:
    def test_mean_hit_fraction_weighted_by_workload(self, graph, rng):
        _, csdb = graph
        engine = SpMMEngine(OMeGaConfig(n_threads=4, dim=8, sigma=0.2))
        result = engine.multiply(
            csdb, rng.standard_normal((400, 8)), compute=False
        )
        manual = sum(
            plan.hit_fraction * part.nnz_count
            for plan, part in zip(result.prefetch_plans, result.partitions)
        ) / csdb.nnz
        assert result.mean_hit_fraction == pytest.approx(manual)

    def test_thread_stats_derived_from_thread_times(self, graph, rng):
        _, csdb = graph
        engine = SpMMEngine(OMeGaConfig(n_threads=6, dim=8))
        result = engine.multiply(
            csdb, rng.standard_normal((400, 8)), compute=False
        )
        stats = result.thread_stats
        assert stats.n_threads == 6
        assert stats.maximum == pytest.approx(result.thread_times.max())

    def test_trace_byte_accounting(self, graph, rng):
        _, csdb = graph
        engine = SpMMEngine(OMeGaConfig(n_threads=4, dim=8))
        d = 8
        result = engine.multiply(
            csdb, rng.standard_normal((400, d)), compute=False
        )
        # The dense gathers move exactly W*d*8 bytes in total.
        assert result.trace.bytes_moved("get_dense_nnz") == pytest.approx(
            csdb.nnz * d * 8.0
        )


class TestPipelineBookkeeping:
    def test_spmm_call_count_matches_formula(self, graph):
        edges, _ = graph
        params = ProNEParams(dim=8, order=6, n_power_iterations=2)
        embedder = OMeGaEmbedder(
            OMeGaConfig(n_threads=2, dim=8), params=params
        )
        result = embedder.embed_edges(edges, 400)
        # tSVD: 1 range-finder + 2 per power iteration + 1 projection;
        # Chebyshev: the closed-form count.
        tsvd_calls = 1 + 2 * params.n_power_iterations + 1
        expected = tsvd_calls + spmm_calls_for_order(params.order)
        assert result.n_spmm == expected

    def test_stage_times_positive_and_ordered(self, graph):
        edges, _ = graph
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=4, dim=8))
        result = embedder.embed_edges(edges, 400)
        assert result.read_seconds > 0
        assert result.factorization_seconds > 0
        assert result.propagation_seconds > 0
        # Chebyshev order 10 involves more SpMM work than the tSVD here.
        assert result.propagation_seconds > result.factorization_seconds / 4

    def test_embedder_is_reusable(self, graph):
        edges, _ = graph
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=8))
        first = embedder.embed_edges(edges, 400)
        second = embedder.embed_edges(edges, 400)
        assert np.array_equal(first.embedding, second.embedding)
        assert first.sim_seconds == pytest.approx(second.sim_seconds)
        assert second.n_spmm == first.n_spmm  # counters reset per run


class TestCapacityAccounting:
    def test_scaled_capacity_divides_exactly(self):
        engine = SpMMEngine(OMeGaConfig(capacity_scale=128))
        full = engine.topology.capacity(MemoryKind.PM)
        assert engine.scaled_capacity(MemoryKind.PM) == pytest.approx(
            full / 128
        )

    def test_stream_plan_partitions_never_exceed_dim(self, graph, rng):
        _, csdb = graph
        engine = SpMMEngine(
            OMeGaConfig(n_threads=4, dim=8, capacity_scale=10**9)
        )
        result = engine.multiply(
            csdb, rng.standard_normal((400, 8)), compute=False
        )
        assert 1 <= result.stream_plan.n_partitions <= 8

    def test_dram_headroom_bounds_stream_budget(self, graph, rng):
        _, csdb = graph

        def partitions(headroom):
            engine = SpMMEngine(
                OMeGaConfig(
                    n_threads=4,
                    dim=8,
                    dram_headroom=headroom,
                    capacity_scale=2 * 10**4,
                )
            )
            return engine.multiply(
                csdb, rng.standard_normal((400, 8)), compute=False
            ).stream_plan.n_partitions

        assert partitions(0.05) >= partitions(1.0)
