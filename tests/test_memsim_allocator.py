"""Unit tests for the placement-tracking allocator and NUMA topology."""

import numpy as np
import pytest

from repro.memsim import (
    CapacityError,
    HeterogeneousAllocator,
    Locality,
    MemoryKind,
    NumaTopology,
    Placement,
    PlacementPolicy,
)


@pytest.fixture
def topology():
    return NumaTopology(n_sockets=2, cores_per_socket=18)


@pytest.fixture
def allocator(topology):
    # Tiny capacities so capacity behaviour is testable.
    return HeterogeneousAllocator(
        topology, dram_capacity_bytes=1000, pm_capacity_bytes=8000
    )


class TestTopology:
    def test_total_cores(self, topology):
        assert topology.total_cores == 36

    def test_thread_binding_blocks(self, topology):
        sockets = [topology.socket_of_thread(t, 30) for t in range(30)]
        assert sockets[:15] == [0] * 15
        assert sockets[15:] == [1] * 15

    def test_threads_on_socket(self, topology):
        assert topology.threads_on_socket(0, 30) == 15
        assert topology.threads_on_socket(1, 30) == 15
        assert topology.threads_on_socket(0, 7) + topology.threads_on_socket(
            1, 7
        ) == 7

    def test_thread_out_of_range(self, topology):
        with pytest.raises(ValueError, match="thread_id"):
            topology.socket_of_thread(30, 30)

    def test_locality(self, topology):
        assert topology.locality(0, 0) is Locality.LOCAL
        assert topology.locality(0, 1) is Locality.REMOTE

    def test_invalid_socket(self, topology):
        with pytest.raises(ValueError, match="socket"):
            topology.locality(0, 5)

    def test_capacity_aggregates_sockets(self, topology):
        assert topology.capacity(MemoryKind.PM) == 2 * topology.device(
            MemoryKind.PM
        ).capacity_bytes

    def test_invalid_construction(self):
        with pytest.raises(ValueError, match="n_sockets"):
            NumaTopology(n_sockets=0)


class TestPlacement:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            Placement(MemoryKind.DRAM, (0.5, 0.4), 100)

    def test_home_socket(self):
        p = Placement(MemoryKind.PM, (0.25, 0.75), 100)
        assert p.home_socket == 1
        assert p.local_fraction(0) == 0.25


class TestAllocator:
    def test_explicit_placement(self, allocator):
        array = np.zeros(50, dtype=np.uint8)
        m = allocator.allocate(
            array, MemoryKind.DRAM, PlacementPolicy.EXPLICIT, socket=1
        )
        assert m.placement.socket_fractions == (0.0, 1.0)
        assert allocator.used(MemoryKind.DRAM, socket=1) == 50
        assert allocator.used(MemoryKind.DRAM, socket=0) == 0

    def test_interleave_placement(self, allocator):
        array = np.zeros(100, dtype=np.uint8)
        m = allocator.allocate(
            array, MemoryKind.DRAM, PlacementPolicy.INTERLEAVE
        )
        assert m.placement.socket_fractions == (0.5, 0.5)
        assert allocator.used(MemoryKind.DRAM) == 100

    def test_local_spills_to_other_socket(self, allocator):
        a = np.zeros(900, dtype=np.uint8)
        allocator.allocate(a, MemoryKind.DRAM, PlacementPolicy.EXPLICIT, socket=0)
        spilled = allocator.allocate(
            np.zeros(200, dtype=np.uint8),
            MemoryKind.DRAM,
            PlacementPolicy.LOCAL,
            socket=0,
        )
        # 100 bytes fit on socket 0, 100 spill to socket 1.
        assert spilled.placement.socket_fractions == (0.5, 0.5)

    def test_explicit_over_capacity_raises(self, allocator):
        with pytest.raises(CapacityError):
            allocator.allocate(
                np.zeros(2000, dtype=np.uint8),
                MemoryKind.DRAM,
                PlacementPolicy.EXPLICIT,
                socket=0,
            )

    def test_local_over_total_capacity_raises(self, allocator):
        with pytest.raises(CapacityError):
            allocator.allocate(
                np.zeros(3000, dtype=np.uint8),
                MemoryKind.DRAM,
                PlacementPolicy.LOCAL,
            )

    def test_free_releases_bytes(self, allocator):
        m = allocator.allocate(
            np.zeros(100, dtype=np.uint8),
            MemoryKind.PM,
            PlacementPolicy.INTERLEAVE,
        )
        assert allocator.used(MemoryKind.PM) == 100
        allocator.free(m)
        assert allocator.used(MemoryKind.PM) == 0
        assert not allocator.live_matrices()

    def test_double_free_rejected(self, allocator):
        m = allocator.allocate(
            np.zeros(10, dtype=np.uint8), MemoryKind.PM
        )
        allocator.free(m)
        with pytest.raises(ValueError, match="not live"):
            allocator.free(m)

    def test_available(self, allocator):
        allocator.allocate(np.zeros(300, dtype=np.uint8), MemoryKind.DRAM)
        assert allocator.available(MemoryKind.DRAM) == 2 * 1000 - 300

    def test_tiered_matrix_metadata(self, allocator):
        array = np.zeros((5, 5))
        m = allocator.allocate(array, MemoryKind.PM, name="dense")
        assert m.kind is MemoryKind.PM
        assert m.shape == (5, 5)
        assert m.nbytes == array.nbytes
