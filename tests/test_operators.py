"""Unit tests for the engine-level CSDB operator suite."""

import numpy as np
import pytest

from repro.core import OMeGaConfig
from repro.core.operators import OperatorSuite


@pytest.fixture
def suite():
    return OperatorSuite(OMeGaConfig(n_threads=4, dim=8))


class TestSDDMM:
    def test_matches_dense_reference(self, suite, skewed_csdb, rng):
        left = rng.standard_normal((skewed_csdb.n_rows, 6))
        right = rng.standard_normal((skewed_csdb.n_cols, 6))
        result = suite.sddmm(skewed_csdb, left, right)
        expected = skewed_csdb.to_dense() * (left @ right.T)
        assert np.allclose(result.output.to_dense(), expected)
        assert result.sim_seconds > 0

    def test_preserves_structure(self, suite, skewed_csdb, rng):
        left = rng.standard_normal((skewed_csdb.n_rows, 4))
        right = rng.standard_normal((skewed_csdb.n_cols, 4))
        out = suite.sddmm(skewed_csdb, left, right).output
        assert np.array_equal(out.col_list, skewed_csdb.col_list)
        assert np.array_equal(out.perm, skewed_csdb.perm)

    def test_shape_validation(self, suite, skewed_csdb, rng):
        with pytest.raises(ValueError, match="left"):
            suite.sddmm(
                skewed_csdb,
                rng.standard_normal((3, 4)),
                rng.standard_normal((skewed_csdb.n_cols, 4)),
            )
        with pytest.raises(ValueError, match="widths"):
            suite.sddmm(
                skewed_csdb,
                rng.standard_normal((skewed_csdb.n_rows, 4)),
                rng.standard_normal((skewed_csdb.n_cols, 5)),
            )


class TestAlgebraOperators:
    def test_add(self, suite, paper_csdb):
        result = suite.add(paper_csdb, paper_csdb)
        assert np.allclose(result.output.to_dense(), 2 * paper_csdb.to_dense())
        assert result.trace.seconds("add") == result.sim_seconds

    def test_subtract(self, suite, paper_csdb):
        result = suite.subtract(paper_csdb, paper_csdb)
        assert result.output.nnz == 0

    def test_transpose(self, suite, skewed_csdb):
        result = suite.transpose(skewed_csdb)
        assert np.allclose(
            result.output.to_dense(), skewed_csdb.to_dense().T
        )
        assert result.sim_seconds > 0

    def test_scale(self, suite, paper_csdb):
        result = suite.scale(paper_csdb, -2.0)
        assert np.allclose(
            result.output.to_dense(), -2.0 * paper_csdb.to_dense()
        )

    def test_spmm_delegates_to_engine(self, suite, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))
        result = suite.spmm(skewed_csdb, dense)
        assert np.allclose(result.output, skewed_csdb.spmm(dense))

    def test_costs_scale_with_size(self, suite, paper_csdb, skewed_csdb):
        small = suite.transpose(paper_csdb).sim_seconds
        large = suite.transpose(skewed_csdb).sim_seconds
        assert large > small
