"""Unit tests for the Memory-Mode (DRAM-as-cache) substrate."""

import numpy as np
import pytest

from repro.memsim import CostModel, dram_spec, pm_spec
from repro.memsim.memorymode import (
    DirectMappedCache,
    MemoryModeModel,
    sample_dense_access_addresses,
)


class TestDirectMappedCache:
    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(capacity_bytes=8 * 4096)
        assert cache.access_addresses(np.array([0])) == 0.0
        assert cache.access_addresses(np.array([0])) == 1.0

    def test_same_block_hits(self):
        cache = DirectMappedCache(capacity_bytes=8 * 4096, block_bytes=4096)
        rate = cache.access_addresses(np.array([0, 100, 4000, 4095]))
        assert rate == pytest.approx(3 / 4)

    def test_conflict_eviction(self):
        # Two blocks mapping to the same set alternate: zero hits.
        cache = DirectMappedCache(capacity_bytes=2 * 4096, block_bytes=4096)
        trace = np.array([0, 2 * 4096, 0, 2 * 4096], dtype=np.int64)
        assert cache.access_addresses(trace) == 0.0

    def test_working_set_fits(self):
        cache = DirectMappedCache(capacity_bytes=64 * 4096)
        trace = np.tile(np.arange(16) * 4096, 10)
        rate = cache.access_addresses(trace)
        assert rate == pytest.approx((160 - 16) / 160)

    def test_cumulative_hit_rate_and_reset(self):
        cache = DirectMappedCache(capacity_bytes=4 * 4096)
        cache.access_addresses(np.array([0, 0]))
        assert cache.hit_rate == 0.5
        cache.reset()
        assert cache.hit_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            DirectMappedCache(0)
        cache = DirectMappedCache(4096)
        with pytest.raises(ValueError, match="non-negative"):
            cache.access_addresses(np.array([-1]))


class TestMemoryModeModel:
    @pytest.fixture
    def model(self):
        return MemoryModeModel(
            dram=dram_spec(), pm=pm_spec(), cost_model=CostModel()
        )

    def test_all_hits_equals_dram_time(self, model):
        t = model.access_time(2**20, hit_rate=1.0, z_entropy=0.8)
        dram_only = model.cost_model.entropy_access_time(
            dram_spec(), __import__("repro.memsim", fromlist=["Locality"]).Locality.LOCAL, 2**20, 0.8
        )
        assert t == pytest.approx(dram_only)

    def test_misses_amplify(self, model):
        hit_heavy = model.access_time(2**20, hit_rate=0.95, z_entropy=0.8)
        miss_heavy = model.access_time(2**20, hit_rate=0.3, z_entropy=0.8)
        assert miss_heavy > 5 * hit_heavy

    def test_monotone_in_hit_rate(self, model):
        times = [
            model.access_time(2**20, hit_rate=h, z_entropy=0.8)
            for h in (0.0, 0.3, 0.6, 0.9, 1.0)
        ]
        assert all(t2 < t1 for t1, t2 in zip(times, times[1:]))

    def test_validation(self, model):
        with pytest.raises(ValueError, match="hit_rate"):
            model.access_time(100, hit_rate=1.5, z_entropy=0.5)
        with pytest.raises(ValueError, match="nbytes"):
            model.access_time(-1, hit_rate=0.5, z_entropy=0.5)


class TestAddressSampling:
    def test_addresses_are_row_offsets(self):
        cols = np.array([0, 3, 7])
        addresses = sample_dense_access_addresses(cols, dense_cols=16)
        assert np.array_equal(addresses, cols * 16 * 8)

    def test_subsampling_bounds_length(self, skewed_csdb):
        addresses = sample_dense_access_addresses(
            skewed_csdb.col_list, dense_cols=8, max_samples=100
        )
        assert len(addresses) == 100
