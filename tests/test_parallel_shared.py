"""Shared-memory executor: bit-identity, crash safety, config plumbing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExecBackend,
    OMeGaConfig,
    ParallelConfig,
    SpMMEngine,
)
from repro.formats import CSDBMatrix, edges_to_csdb
from repro.graphs import rmat_edges
from repro.parallel import (
    SharedMemoryExecutor,
    SimulatedExecutor,
    WorkerCrashError,
    close_shared_executors,
    get_shared_executor,
)


@pytest.fixture(scope="module", autouse=True)
def _close_pools():
    yield
    close_shared_executors()


def _rmat_csdb(scale: int, seed: int) -> CSDBMatrix:
    edges = rmat_edges(scale, edge_factor=6.0, seed=seed)
    return edges_to_csdb(edges, 1 << scale)


def _serial_reference(matrix, dense, ranges):
    out = np.empty((matrix.n_rows, dense.shape[1]))
    SimulatedExecutor().run_partitions(matrix, dense, ranges, out)
    return out


class TestBitIdentity:
    """Parallel output must equal serial output bit for bit."""

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.integers(min_value=6, max_value=8),
        n_workers=st.sampled_from([1, 2, 4]),
        d=st.sampled_from([1, 3, 8]),
        n_cuts=st.integers(min_value=0, max_value=6),
    )
    def test_property_matches_serial(self, seed, scale, n_workers, d, n_cuts):
        matrix = _rmat_csdb(scale, seed)
        rng = np.random.default_rng(seed + 1)
        dense = rng.standard_normal((matrix.n_cols, d))
        # Odd partition shapes on purpose: duplicated cut points produce
        # empty partitions, adjacent cuts produce single-row partitions.
        cuts = sorted(
            rng.integers(0, matrix.n_rows + 1, size=n_cuts).tolist()
        )
        bounds = [0, *cuts, matrix.n_rows]
        ranges = list(zip(bounds[:-1], bounds[1:]))
        expected = _serial_reference(matrix, dense, ranges)

        pool = get_shared_executor(n_workers)
        out = np.empty_like(expected)
        pool.run_partitions(matrix, dense, ranges, out)
        assert np.array_equal(out, expected)

    def test_single_row_partitions(self):
        matrix = _rmat_csdb(6, seed=3)
        dense = np.random.default_rng(0).standard_normal((matrix.n_cols, 4))
        ranges = [(i, i + 1) for i in range(matrix.n_rows)]
        expected = _serial_reference(matrix, dense, ranges)
        pool = get_shared_executor(2)
        out = np.empty_like(expected)
        pool.run_partitions(matrix, dense, ranges, out)
        assert np.array_equal(out, expected)

    def test_partial_coverage_zeroes_uncovered_rows(self):
        matrix = _rmat_csdb(6, seed=4)
        dense = np.random.default_rng(1).standard_normal((matrix.n_cols, 2))
        ranges = [(0, matrix.n_rows // 2)]
        expected = _serial_reference(matrix, dense, ranges)
        pool = get_shared_executor(2)
        out = np.full_like(expected, np.nan)  # must be overwritten
        pool.run_partitions(matrix, dense, ranges, out)
        assert np.array_equal(out, expected)

    def test_no_ranges_zeroes_output(self):
        matrix = _rmat_csdb(6, seed=5)
        dense = np.zeros((matrix.n_cols, 2))
        pool = get_shared_executor(2)
        out = np.full((matrix.n_rows, 2), np.nan)
        pool.run_partitions(matrix, dense, [], out)
        assert np.array_equal(out, np.zeros_like(out))

    def test_tiny_chunk_budget_still_identical(self):
        matrix = _rmat_csdb(7, seed=6)
        dense = np.random.default_rng(2).standard_normal((matrix.n_cols, 5))
        ranges = [(0, matrix.n_rows // 3), (matrix.n_rows // 3, matrix.n_rows)]
        expected = _serial_reference(matrix, dense, ranges)
        pool = get_shared_executor(2)
        out = np.empty_like(expected)
        pool.run_partitions(matrix, dense, ranges, out, budget_bytes=4096)
        assert np.array_equal(out, expected)


class TestCrashSafety:
    def test_worker_crash_raises_typed_error_and_releases_memory(self):
        matrix = _rmat_csdb(6, seed=7)
        dense = np.random.default_rng(3).standard_normal((matrix.n_cols, 3))
        pool = SharedMemoryExecutor(n_workers=2, call_timeout_s=30.0)
        out = np.empty((matrix.n_rows, 3))
        pool.run_partitions(matrix, dense, [(0, matrix.n_rows)], out)
        segment_names = [
            spec.name
            for entry in pool._matrices.values()
            for spec in entry[1].handle.specs
        ] + [seg.segment.name for seg in pool._scratch.values()]
        assert segment_names

        with pytest.raises(WorkerCrashError, match="died"):
            pool.run_partitions(
                matrix, dense, [(0, matrix.n_rows)], out, _inject_crash=True
            )
        assert pool.closed
        from multiprocessing import shared_memory

        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

        with pytest.raises(WorkerCrashError, match="closed"):
            pool.run_partitions(matrix, dense, [(0, 1)], out)

    def test_registry_replaces_crashed_pool(self):
        matrix = _rmat_csdb(6, seed=8)
        dense = np.zeros((matrix.n_cols, 2))
        out = np.empty((matrix.n_rows, 2))
        pool = get_shared_executor(3)
        with pytest.raises(WorkerCrashError):
            pool.run_partitions(
                matrix, dense, [(0, 1)], out, _inject_crash=True
            )
        fresh = get_shared_executor(3)
        assert fresh is not pool and not fresh.closed
        fresh.run_partitions(matrix, dense, [(0, matrix.n_rows)], out)
        assert np.array_equal(out, np.zeros_like(out))

    def test_close_is_idempotent(self):
        pool = SharedMemoryExecutor(n_workers=1)
        pool.close()
        pool.close()
        assert pool.closed


class TestEngineDispatch:
    def _engines(self, n_workers=2, **overrides):
        base = dict(n_threads=4, dim=8, **overrides)
        # Explicit simulated backend: the smoke CI jobs flip the
        # process-wide default via REPRO_EXEC_BACKEND, and this class
        # asserts on executor *types*.
        sim = SpMMEngine(
            OMeGaConfig(**base, parallel=ParallelConfig())
        )
        shm = SpMMEngine(
            OMeGaConfig(
                **base,
                parallel=ParallelConfig(
                    backend=ExecBackend.SHARED_MEMORY, n_workers=n_workers
                ),
            )
        )
        return sim, shm

    def test_backend_selection(self):
        sim, shm = self._engines()
        assert isinstance(sim.kernel_executor, SimulatedExecutor)
        assert isinstance(shm.kernel_executor, SharedMemoryExecutor)

    def test_multiply_bit_identical_and_same_sim_time(self):
        matrix = _rmat_csdb(8, seed=9)
        dense = np.random.default_rng(4).standard_normal((matrix.n_cols, 8))
        sim, shm = self._engines()
        a = sim.multiply(matrix, dense)
        b = shm.multiply(matrix, dense)
        assert np.array_equal(a.output, b.output)
        assert a.sim_seconds == b.sim_seconds
        assert b.kernel_wall_seconds > 0.0

    def test_natural_order_allocation_falls_back_to_serial_pass(self):
        # Non-contiguous partitions are a costing construct; both
        # backends compute them in one serial pass.
        from repro.core import AllocationScheme

        matrix = _rmat_csdb(7, seed=10)
        dense = np.random.default_rng(5).standard_normal((matrix.n_cols, 4))
        sim, shm = self._engines(
            allocation=AllocationScheme.NATURAL_ROUND_ROBIN
        )
        a = sim.multiply(matrix, dense)
        b = shm.multiply(matrix, dense)
        assert np.array_equal(a.output, b.output)

    def test_compute_false_reports_zero_wall(self):
        matrix = _rmat_csdb(6, seed=11)
        dense = np.zeros((matrix.n_cols, 2))
        _, shm = self._engines()
        result = shm.multiply(matrix, dense, compute=False)
        assert result.output is None
        assert result.kernel_wall_seconds == 0.0


class TestParallelConfig:
    def test_env_default_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_BACKEND", "shared_memory")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        parallel = ParallelConfig.default()
        assert parallel.backend is ExecBackend.SHARED_MEMORY
        assert parallel.n_workers == 3
        monkeypatch.delenv("REPRO_EXEC_BACKEND")
        monkeypatch.delenv("REPRO_WORKERS")
        assert ParallelConfig.default().backend is ExecBackend.SIMULATED

    def test_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            ParallelConfig(n_workers=0)
        with pytest.raises(ValueError, match="chunk_budget_bytes"):
            ParallelConfig(chunk_budget_bytes=1)


class TestReleaseSweep:
    """Teardown must unlink every owned segment even on a double fault."""

    class _Stub:
        def __init__(self, log, name, fail=False):
            self.log, self.name, self.fail = log, name, fail

        def _touch(self):
            if self.fail:
                raise RuntimeError(f"{self.name} refused to close")
            self.log.append(self.name)

        def close(self):
            self._touch()

        def release(self):
            self._touch()

    def _loaded_executor(self, log, failing: str):
        executor = SharedMemoryExecutor(n_workers=1)
        stub = lambda name: self._Stub(log, name, fail=(name == failing))
        executor._matrices = {
            1: (lambda: None, stub("matrix-a")),
            2: (lambda: None, stub("matrix-b")),
        }
        executor._scratch = {"dense": stub("scratch-dense")}
        return executor

    def test_one_failure_does_not_stop_the_sweep(self, monkeypatch):
        import repro.parallel.shared as shared_module

        log: list[str] = []
        executor = self._loaded_executor(log, failing="matrix-a")
        executor._retired = ["retired-a", "retired-b"]
        unlinked: list[str] = []
        monkeypatch.setattr(
            shared_module, "unlink_segment", unlinked.append
        )
        with pytest.raises(RuntimeError, match="matrix-a refused"):
            executor.close()
        # Every other segment was still released and unlinked...
        assert log == ["matrix-b", "scratch-dense"]
        assert unlinked == ["retired-a", "retired-b"]
        # ...and the bookkeeping is empty, so a retry cannot double-free.
        assert executor._matrices == {}
        assert executor._scratch == {}
        assert executor._retired == []

    def test_first_failure_wins(self, monkeypatch):
        import repro.parallel.shared as shared_module

        log: list[str] = []
        executor = self._loaded_executor(log, failing="matrix-a")
        executor._scratch["out"] = self._Stub(
            log, "scratch-out", fail=True
        )
        monkeypatch.setattr(
            shared_module, "unlink_segment", lambda name: None
        )
        with pytest.raises(RuntimeError, match="matrix-a refused"):
            executor.close()

    def test_fail_path_keeps_the_worker_crash_error(self):
        log: list[str] = []
        executor = self._loaded_executor(log, failing="matrix-a")
        executor._retired = []
        error = executor._fail("worker died")
        # The release failure is swept, not allowed to mask the crash.
        assert isinstance(error, WorkerCrashError)
        assert log == ["matrix-b", "scratch-dense"]
        assert executor.closed

    def test_clean_close_leaves_no_segments(self):
        matrix = _rmat_csdb(6, seed=5)
        dense = np.ones((matrix.n_cols, 2))
        executor = SharedMemoryExecutor(n_workers=1)
        ranges = ((0, matrix.n_rows),)
        out = np.empty((matrix.n_rows, 2))
        executor.run_partitions(matrix, dense, ranges, out)
        names = [executor._prefix]
        names += [seg.segment.name for seg in executor._scratch.values()]
        executor.close()
        import pathlib

        leaked = [
            p.name
            for p in pathlib.Path("/dev/shm").glob(f"*{executor._prefix}*")
        ]
        assert leaked == []
