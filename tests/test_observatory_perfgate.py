"""The perf-regression gate: determinism, baselining, and chaos detection.

The suite here runs the real pinned micro-bench (sub-second, pure cost
model), so these are integration tests of the acceptance criteria:

- an identical re-run passes against the pinned baseline and appends a
  ``BENCH_omega.json`` trajectory point;
- a run with PM bandwidth deliberately derated (the existing
  ``pm_degrade`` fault) fails and *names* the regressed stages.
"""

import json

import pytest

from repro.obs.observatory.perfgate import (
    GATE_BASELINE_NAME,
    compare_to_baseline,
    render_gate,
    run_perf_gate,
    run_suite,
)
from repro.obs.observatory.store import BaselineStore

#: Severe PM-bandwidth derate: mild factors hide behind the streaming/
#: compute overlap, 0.05 produces >50% simulated stage regressions.
CHAOS_PLAN = {
    "seed": 0,
    "events": [{"kind": "pm_degrade", "site": "pm", "factor": 0.05}],
}


@pytest.fixture(scope="module")
def clean_run():
    return run_suite()


@pytest.fixture(scope="module")
def chaos_plan_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos") / "plan.json"
    path.write_text(json.dumps(CHAOS_PLAN), encoding="utf-8")
    return path


class TestSuite:
    def test_stage_set(self, clean_run):
        assert set(clean_run.stages) == {
            "embed.graph_read", "embed.factorization", "embed.propagation",
            "embed.spmm", "embed.total", "spmm.total",
            "serve.warmup", "serve.p99_latency",
        }
        assert all(v > 0.0 for v in clean_run.stages.values())

    def test_deterministic_across_runs(self, clean_run):
        again = run_suite()
        assert again.stages == clean_run.stages
        assert again.manifest.run_id == clean_run.manifest.run_id

    def test_payload_deterministic_fields_only(self, clean_run):
        payload = clean_run.payload()
        assert payload["suite"] == "perf_gate"
        # Attribution fractions derive from the sim clock, so they are
        # as deterministic as the stage timings.
        assert set(payload) == {
            "suite", "config_hash", "stages", "attribution",
        }
        assert all(0.0 <= v <= 1.0 for v in payload["attribution"].values())


class TestCompare:
    def test_no_baseline_never_regresses(self, clean_run):
        verdicts = compare_to_baseline(clean_run, {})
        assert all(not v.regressed for v in verdicts)
        assert all(v.baseline is None for v in verdicts)

    def test_identical_baseline_passes(self, clean_run):
        verdicts = compare_to_baseline(clean_run, clean_run.payload())
        assert all(not v.regressed for v in verdicts)

    def test_slowdown_detected(self, clean_run):
        payload = clean_run.payload()
        payload["stages"] = {
            k: v / 2.0 for k, v in payload["stages"].items()
        }
        verdicts = compare_to_baseline(clean_run, payload)
        assert all(v.regressed for v in verdicts)


class TestGateLifecycle:
    def test_bootstrap_rerun_and_chaos(self, tmp_path, chaos_plan_path):
        store = BaselineStore(tmp_path / "store")
        trajectory = tmp_path / "BENCH_omega.json"

        # 1. First clean run auto-pins the baseline and starts the
        # trajectory.
        first = run_perf_gate(store, trajectory_path=trajectory)
        assert first.ok and first.baseline_updated
        assert store.resolve(GATE_BASELINE_NAME) == first.baseline_key
        assert first.trajectory_appended

        # 2. Identical re-run passes and appends a second point.
        second = run_perf_gate(store, trajectory_path=trajectory)
        assert second.ok and not second.baseline_updated
        assert second.trajectory_appended
        points = json.loads(trajectory.read_text(encoding="utf-8"))
        assert len(points) == 2
        assert points[0]["run_id"] == points[1]["run_id"]
        assert points[1]["stages"] == {
            k: pytest.approx(v) for k, v in second.run.stages.items()
        }

        # 3. Derated PM bandwidth: the gate fails and names the
        # regressed stages; baseline and trajectory stay untouched.
        chaos = run_perf_gate(
            store,
            faults_path=chaos_plan_path,
            trajectory_path=trajectory,
        )
        assert not chaos.ok
        regressed = {v.stage for v in chaos.regressions}
        assert "embed.total" in regressed
        assert "spmm.total" in regressed
        assert "serve.p99_latency" not in regressed  # serve runs faultless
        assert not chaos.baseline_updated and not chaos.trajectory_appended
        assert store.resolve(GATE_BASELINE_NAME) == first.baseline_key
        assert len(json.loads(trajectory.read_text(encoding="utf-8"))) == 2

        # The rendered verdict names the stages (what CI surfaces).
        text = render_gate(chaos)
        assert "PERF GATE FAILED" in text
        assert "embed.total" in text

    def test_update_baseline_repins(self, tmp_path):
        store = BaselineStore(tmp_path / "store")
        first = run_perf_gate(store)
        repin = run_perf_gate(store, update_baseline=True)
        assert repin.baseline_updated
        # Identical payload: the content address cannot move.
        assert repin.baseline_key == first.baseline_key


class TestCommittedBaseline:
    def test_repo_baseline_matches_current_code(self, clean_run):
        """The committed baseline must agree with the code as built —
        otherwise CI's perf-gate job and this checkout disagree."""
        store = BaselineStore()
        key = store.resolve(GATE_BASELINE_NAME)
        assert key is not None, (
            "benchmarks/baselines has no pinned perf_gate ref; run"
            " `repro perf-gate --update-baseline`"
        )
        baseline = store.get(key)
        verdicts = compare_to_baseline(clean_run, baseline)
        regressed = [v.stage for v in verdicts if v.regressed]
        assert not regressed, f"stages regressed vs committed baseline: {regressed}"
