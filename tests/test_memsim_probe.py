"""Unit tests for the Fig. 9 bandwidth/latency probe."""

import pytest

from repro.memsim import (
    AccessPattern,
    Locality,
    Operation,
    pm_spec,
    probe_bandwidth,
    probe_latency,
)


class TestProbeBandwidth:
    def test_covers_all_eight_curves(self):
        results = probe_bandwidth(pm_spec(), thread_counts=(1, 4))
        combos = {(r.op, r.pattern, r.locality) for r in results}
        assert len(combos) == 8
        assert len(results) == 16

    def test_each_curve_monotone_in_threads(self):
        threads = (1, 2, 4, 8, 16, 28)
        results = probe_bandwidth(pm_spec(), thread_counts=threads)
        by_curve: dict = {}
        for r in results:
            by_curve.setdefault((r.op, r.pattern, r.locality), []).append(
                r.bandwidth_gib_s
            )
        for curve in by_curve.values():
            assert all(b2 > b1 for b1, b2 in zip(curve, curve[1:]))

    def test_fig9_shape_reads(self):
        """Sequential remote reads ~ sequential local >> random."""
        results = {
            (r.op, r.pattern, r.locality): r.bandwidth_gib_s
            for r in probe_bandwidth(pm_spec(), thread_counts=(28,))
        }
        seq_local = results[
            (Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        ]
        seq_remote = results[
            (Operation.READ, AccessPattern.SEQUENTIAL, Locality.REMOTE)
        ]
        rand_local = results[
            (Operation.READ, AccessPattern.RANDOM, Locality.LOCAL)
        ]
        rand_remote = results[
            (Operation.READ, AccessPattern.RANDOM, Locality.REMOTE)
        ]
        assert seq_remote == pytest.approx(seq_local, rel=0.05)
        assert seq_local / rand_local == pytest.approx(2.41, rel=0.02)
        assert seq_remote / rand_remote == pytest.approx(2.45, rel=0.02)

    def test_fig9_shape_writes_prefer_local(self):
        """Local writes always beat remote, whatever the pattern."""
        results = {
            (r.op, r.pattern, r.locality): r.bandwidth_gib_s
            for r in probe_bandwidth(pm_spec(), thread_counts=(28,))
        }
        for pattern in AccessPattern:
            assert (
                results[(Operation.WRITE, pattern, Locality.LOCAL)]
                > results[(Operation.WRITE, pattern, Locality.REMOTE)]
            )

    def test_remote_write_peak_near_69_percent(self):
        # "The peak bandwidth of the remote PM write is decreased to 69.2%"
        # — our calibration puts the best remote write within 25-75% of
        # the best local write.
        results = {
            (r.op, r.pattern, r.locality): r.bandwidth_gib_s
            for r in probe_bandwidth(pm_spec(), thread_counts=(28,))
        }
        best_local = max(
            results[(Operation.WRITE, p, Locality.LOCAL)] for p in AccessPattern
        )
        best_remote = max(
            results[(Operation.WRITE, p, Locality.REMOTE)]
            for p in AccessPattern
        )
        assert 0.25 < best_remote / best_local < 0.75


class TestProbeLatency:
    def test_covers_four_points(self):
        latency = probe_latency(pm_spec())
        assert len(latency) == 4
        assert all(v > 0 for v in latency.values())

    def test_values_in_nanoseconds(self):
        latency = probe_latency(pm_spec())
        read_local = latency[(Operation.READ, Locality.LOCAL)]
        assert read_local == pytest.approx(80.0 * 4.2, rel=0.01)
