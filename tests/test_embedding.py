"""Tests for the end-to-end OMeGa embedding pipeline."""

import numpy as np
import pytest

from repro.core import MemoryMode, OMeGaConfig, OMeGaEmbedder, PlacementScheme
from repro.core.embedding import embedder_for_dataset
from repro.graphs import load_dataset
from repro.memsim import CapacityError
from repro.prone.model import ProNEParams


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("PK", scale=4096)


def make_embedder(dataset, **overrides):
    base = dict(n_threads=4, dim=8)
    base.update(overrides)
    return embedder_for_dataset(dataset, OMeGaConfig(**{k: v for k, v in base.items() if k in OMeGaConfig.__dataclass_fields__}))


class TestPipeline:
    def test_embed_dataset(self, dataset):
        result = make_embedder(dataset).embed_dataset(dataset)
        assert result.embedding.shape == (dataset.n_nodes, 8)
        assert result.sim_seconds > 0
        assert result.n_spmm > 10  # tSVD + Chebyshev chain
        assert result.wall_seconds > 0

    def test_sim_time_accounting_consistent(self, dataset):
        result = make_embedder(dataset).embed_dataset(dataset)
        stages = (
            result.read_seconds
            + result.factorization_seconds
            + result.propagation_seconds
        )
        assert result.sim_seconds == pytest.approx(stages, rel=1e-9)
        assert result.spmm_seconds < result.sim_seconds

    def test_spmm_dominates_runtime(self, dataset):
        """The paper's premise: SpMM is ~70% of ProNE's runtime."""
        result = make_embedder(dataset, n_threads=16).embed_dataset(dataset)
        assert result.spmm_fraction > 0.5

    def test_capacity_scale_mismatch_rejected(self, dataset):
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=8))
        with pytest.raises(ValueError, match="capacity_scale"):
            embedder.embed_dataset(dataset)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dim"):
            OMeGaEmbedder(
                OMeGaConfig(dim=8), params=ProNEParams(dim=16)
            )

    def test_embed_edges_equals_embed_dataset(self, dataset):
        a = make_embedder(dataset).embed_dataset(dataset)
        b = make_embedder(dataset).embed_edges(dataset.edges, dataset.n_nodes)
        assert np.array_equal(a.embedding, b.embedding)


class TestQualityPreservation:
    """§IV-B: OMeGa preserves ProNE's representation quality exactly."""

    def test_embedding_identical_across_memory_modes(self, dataset):
        results = {}
        for mode in MemoryMode:
            embedder = make_embedder(
                dataset,
                memory_mode=mode,
                prefetcher_enabled=mode is MemoryMode.HETEROGENEOUS,
            )
            results[mode] = embedder.embed_dataset(dataset).embedding
        baseline = results[MemoryMode.DRAM_ONLY]
        for emb in results.values():
            assert np.array_equal(emb, baseline)

    def test_embedding_identical_across_placements(self, dataset):
        embeddings = [
            make_embedder(dataset, placement=p).embed_dataset(dataset).embedding
            for p in PlacementScheme
        ]
        for emb in embeddings[1:]:
            assert np.array_equal(emb, embeddings[0])


class TestSimulatedBehaviour:
    def test_dram_oom_on_scaled_capacity(self, dataset):
        # Shrink the simulated DRAM far below the pipeline working set.
        embedder = OMeGaEmbedder(
            OMeGaConfig(
                n_threads=4,
                dim=8,
                memory_mode=MemoryMode.DRAM_ONLY,
                capacity_scale=10**9,
            )
        )
        with pytest.raises(CapacityError):
            embedder.embed_edges(dataset.edges, dataset.n_nodes)

    def test_hm_survives_same_capacity_pressure(self, dataset):
        embedder = OMeGaEmbedder(
            OMeGaConfig(n_threads=4, dim=8, capacity_scale=10**6)
        )
        result = embedder.embed_edges(dataset.edges, dataset.n_nodes)
        assert result.sim_seconds > 0

    def test_mode_ordering(self, dataset):
        times = {}
        for mode in MemoryMode:
            embedder = make_embedder(
                dataset,
                memory_mode=mode,
                prefetcher_enabled=mode is MemoryMode.HETEROGENEOUS,
            )
            times[mode] = embedder.embed_dataset(dataset).sim_seconds
        assert (
            times[MemoryMode.DRAM_ONLY]
            < times[MemoryMode.HETEROGENEOUS]
            < times[MemoryMode.PM_ONLY]
        )

    def test_graph_read_csdb_faster_than_csr(self, dataset):
        """Fig. 19(a): the CSDB reading procedure beats CSR's."""
        embedder = make_embedder(dataset)
        csdb = embedder.simulate_graph_read(dataset.n_nodes, dataset.n_edges)
        csr = embedder.simulate_graph_read_csr(dataset.n_nodes, dataset.n_edges)
        assert 1.0 < csr / csdb < 3.0

    def test_trace_merges_spmm_categories(self, dataset):
        result = make_embedder(dataset).embed_dataset(dataset)
        assert result.trace.seconds("get_dense_nnz") > 0
        assert result.trace.seconds("graph_read") == pytest.approx(
            result.read_seconds
        )


class TestHelpers:
    def test_embedder_for_dataset_sets_scale(self, dataset):
        embedder = embedder_for_dataset(dataset)
        assert embedder.config.capacity_scale == dataset.scale

    def test_embedder_for_dataset_overrides(self, dataset):
        embedder = embedder_for_dataset(dataset, n_threads=2, dim=16)
        assert embedder.config.n_threads == 2
        assert embedder.config.dim == 16

    def test_pipeline_working_set_scales_with_graph(self, dataset):
        embedder = make_embedder(dataset)
        small = embedder.pipeline_working_set_bytes(1000, 10_000)
        large = embedder.pipeline_working_set_bytes(100_000, 1_000_000)
        assert large > 50 * small
