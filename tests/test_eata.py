"""Unit tests for thread allocation: RR, WaTA, EaTA (§III-B)."""

import numpy as np
import pytest

from repro.core import (
    AllocationScheme,
    AllocatorContext,
    EntropyAwareAllocator,
    RoundRobinAllocator,
    WorkloadBalancedAllocator,
    make_allocator,
)


def assert_covers_all_rows(partitions, matrix):
    """Partitions must tile [0, n_rows) contiguously, in thread order."""
    assert partitions[0].row_start == 0
    assert partitions[-1].row_end == matrix.n_rows
    for left, right in zip(partitions, partitions[1:]):
        assert left.row_end == right.row_start
    assert sum(p.nnz_count for p in partitions) == matrix.nnz


class TestAllocatorContext:
    def test_workload_totals(self, skewed_csdb):
        ctx = AllocatorContext(skewed_csdb)
        assert ctx.workload(0, skewed_csdb.n_rows) == skewed_csdb.nnz

    def test_entropy_eq3_matches_direct_computation(self, skewed_csdb):
        ctx = AllocatorContext(skewed_csdb)
        a, b = 5, 105
        degrees = skewed_csdb.row_degrees()[a:b].astype(float)
        w = degrees.sum()
        p = degrees[degrees > 0] / w
        expected = float(-(p * np.log(p)).sum())
        assert ctx.entropy(a, b) == pytest.approx(expected)

    def test_entropy_bounds(self, skewed_csdb):
        ctx = AllocatorContext(skewed_csdb)
        n = skewed_csdb.n_rows
        h = ctx.entropy(0, n)
        assert 0.0 <= h <= np.log(n)
        assert 0.0 <= ctx.z_entropy(0, n) <= 1.0

    def test_entropy_single_row_is_zero(self, skewed_csdb):
        ctx = AllocatorContext(skewed_csdb)
        assert ctx.entropy(0, 1) == 0.0

    def test_entropy_empty_range_is_zero(self, skewed_csdb):
        ctx = AllocatorContext(skewed_csdb)
        assert ctx.entropy(3, 3) == 0.0

    def test_uniform_rows_entropy_is_log_count(self, paper_csdb):
        # The first block of the example graph has equal-degree rows.
        ctx = AllocatorContext(paper_csdb)
        block = int(paper_csdb.deg_ind[1])
        assert ctx.entropy(0, block) == pytest.approx(np.log(block))

    def test_scatter_definition(self, skewed_csdb):
        ctx = AllocatorContext(skewed_csdb)
        w = ctx.workload(0, 10)
        expected = (w / 10) / skewed_csdb.n_cols
        assert ctx.scatter(0, 10) == pytest.approx(expected)

    def test_row_at_workload(self, skewed_csdb):
        ctx = AllocatorContext(skewed_csdb)
        end = ctx.row_at_workload(ctx.total_nnz / 2)
        half = ctx.workload(0, end)
        assert abs(half - ctx.total_nnz / 2) <= skewed_csdb.row_degrees().max()


class TestRoundRobin:
    def test_equal_rows(self, skewed_csdb):
        partitions = RoundRobinAllocator().allocate(skewed_csdb, 4)
        assert_covers_all_rows(partitions, skewed_csdb)
        rows = [p.n_rows for p in partitions]
        assert max(rows) - min(rows) <= 1

    def test_unbalanced_nnz_on_skewed_graph(self, skewed_csdb):
        partitions = RoundRobinAllocator().allocate(skewed_csdb, 4)
        loads = [p.nnz_count for p in partitions]
        # Degree-sorted rows make RR chunks wildly unbalanced.
        assert max(loads) > 2 * min(loads)


class TestWaTA:
    def test_balanced_nnz(self, skewed_csdb):
        partitions = WorkloadBalancedAllocator().allocate(skewed_csdb, 4)
        assert_covers_all_rows(partitions, skewed_csdb)
        loads = [p.nnz_count for p in partitions]
        tolerance = skewed_csdb.row_degrees().max()
        target = skewed_csdb.nnz / 4
        assert all(abs(load - target) <= tolerance for load in loads)

    def test_more_threads_than_rows(self, paper_csdb):
        partitions = WorkloadBalancedAllocator().allocate(paper_csdb, 20)
        assert_covers_all_rows(partitions, paper_csdb)
        assert len(partitions) == 20


class TestEaTA:
    def test_covers_rows(self, skewed_csdb):
        partitions = EntropyAwareAllocator().allocate(skewed_csdb, 8)
        assert_covers_all_rows(partitions, skewed_csdb)
        assert len(partitions) == 8

    def test_single_thread(self, skewed_csdb):
        partitions = EntropyAwareAllocator().allocate(skewed_csdb, 1)
        assert len(partitions) == 1
        assert partitions[0].nnz_count == skewed_csdb.nnz

    def test_predicted_time_is_balanced(self, skewed_csdb):
        """EaTA equalizes deg/g(z) proxies, not raw nnz."""
        allocator = EntropyAwareAllocator(beta=0.2)
        partitions = allocator.allocate(skewed_csdb, 6)
        proxies = []
        for p in partitions:
            g = 1.0 - p.z_entropy + allocator.beta * p.z_entropy
            proxies.append(p.nnz_count / g)
        proxies = np.array(proxies)
        assert proxies.std() / proxies.mean() < 0.25

    def test_reduces_tail_versus_wata_under_entropy_cost(self, skewed_csdb):
        """Under the Eq. 5 cost model, EaTA's worst thread beats WaTA's."""
        beta = 0.2

        def cost(partition):
            g = 1.0 - partition.z_entropy + beta * partition.z_entropy
            return partition.nnz_count / g

        eata = EntropyAwareAllocator(beta=beta).allocate(skewed_csdb, 8)
        wata = WorkloadBalancedAllocator().allocate(skewed_csdb, 8)
        assert max(cost(p) for p in eata) < max(cost(p) for p in wata)

    def test_scattered_partitions_get_less_work(self, skewed_csdb):
        partitions = EntropyAwareAllocator(beta=0.2).allocate(skewed_csdb, 6)
        nonempty = [p for p in partitions if p.nnz_count > 0]
        low_z = min(nonempty, key=lambda p: p.z_entropy)
        high_z = max(nonempty, key=lambda p: p.z_entropy)
        if high_z.z_entropy - low_z.z_entropy > 0.2:
            assert high_z.nnz_count < low_z.nnz_count

    def test_algorithm2_variant_covers_rows(self, skewed_csdb):
        partitions = EntropyAwareAllocator().allocate_algorithm2(
            skewed_csdb, 8
        )
        assert_covers_all_rows(partitions, skewed_csdb)

    def test_algorithm2_rescales_toward_objective(self, skewed_csdb):
        """Eq. 7: entropy spread across threads narrows versus WaTA."""
        eata = EntropyAwareAllocator().allocate_algorithm2(skewed_csdb, 8)
        wata = WorkloadBalancedAllocator().allocate(skewed_csdb, 8)
        spread = lambda ps: np.std([p.entropy for p in ps if p.nnz_count])
        assert spread(eata) <= spread(wata) * 1.5

    def test_invalid_beta(self):
        with pytest.raises(ValueError, match="beta"):
            EntropyAwareAllocator(beta=0.0)

    def test_invalid_threads(self, skewed_csdb):
        with pytest.raises(ValueError, match="n_threads"):
            EntropyAwareAllocator().allocate(skewed_csdb, 0)


class TestFactory:
    def test_make_allocator(self):
        assert isinstance(
            make_allocator(AllocationScheme.ROUND_ROBIN), RoundRobinAllocator
        )
        assert isinstance(
            make_allocator(AllocationScheme.WORKLOAD_BALANCED),
            WorkloadBalancedAllocator,
        )
        eata = make_allocator(AllocationScheme.ENTROPY_AWARE, beta=0.3)
        assert isinstance(eata, EntropyAwareAllocator)
        assert eata.beta == 0.3

    def test_make_allocator_from_string(self):
        assert isinstance(make_allocator("rr"), RoundRobinAllocator)


class TestPartitionProperties:
    def test_partition_fields(self, skewed_csdb):
        partitions = WorkloadBalancedAllocator().allocate(skewed_csdb, 4)
        prefix = skewed_csdb.nnz_prefix()
        for p in partitions:
            assert p.nnz_start == prefix[p.row_start]
            assert p.nnz_end == prefix[p.row_end]
            assert p.nnz_count == p.nnz_end - p.nnz_start
            assert p.n_rows == p.row_end - p.row_start
            assert 0.0 <= p.z_entropy <= 1.0

    def test_empty_partition_flag(self, paper_csdb):
        partitions = WorkloadBalancedAllocator().allocate(paper_csdb, 20)
        assert any(p.is_empty for p in partitions)
