"""Unit tests for format conversions and scipy interop."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import (
    csdb_from_scipy,
    csdb_to_scipy,
    csr_from_scipy,
    csr_to_scipy,
    edges_to_csdb,
    edges_to_csr,
)


class TestEdgeConversions:
    def test_undirected_mirrors_edges(self, paper_edges):
        csr = edges_to_csr(paper_edges, 7)
        dense = csr.to_dense()
        assert np.allclose(dense, dense.T)
        assert csr.nnz == 2 * len(paper_edges)

    def test_directed(self, paper_edges):
        csr = edges_to_csr(paper_edges, 7, undirected=False)
        assert csr.nnz == len(paper_edges)

    def test_weighted(self, paper_edges):
        weights = np.arange(1.0, len(paper_edges) + 1)
        csr = edges_to_csr(paper_edges, 7, weights=weights)
        u, v = paper_edges[0]
        assert csr.to_dense()[u, v] == 1.0
        u, v = paper_edges[-1]
        assert csr.to_dense()[u, v] == len(paper_edges)

    def test_weights_length_mismatch(self, paper_edges):
        with pytest.raises(ValueError, match="weights"):
            edges_to_csr(paper_edges, 7, weights=np.ones(3))

    def test_bad_edge_shape(self):
        with pytest.raises(ValueError, match=r"\(m, 2\)"):
            edges_to_csr(np.zeros((3, 3), dtype=np.int64), 5)

    def test_csdb_equals_csr_route(self, paper_edges):
        assert np.allclose(
            edges_to_csdb(paper_edges, 7).to_dense(),
            edges_to_csr(paper_edges, 7).to_dense(),
        )


class TestScipyInterop:
    def test_csr_roundtrip(self, skewed_csr):
        back = csr_from_scipy(csr_to_scipy(skewed_csr))
        assert np.allclose(back.to_dense(), skewed_csr.to_dense())

    def test_csdb_roundtrip(self, skewed_csdb):
        back = csdb_from_scipy(csdb_to_scipy(skewed_csdb))
        assert np.allclose(back.to_dense(), skewed_csdb.to_dense())

    def test_import_from_scipy_coo(self, rng):
        scipy_mat = sp.random(40, 30, density=0.1, random_state=7, format="coo")
        ours = csr_from_scipy(scipy_mat)
        assert np.allclose(ours.to_dense(), scipy_mat.toarray())

    def test_spmm_agrees_with_scipy(self, skewed_csdb, rng):
        scipy_mat = csdb_to_scipy(skewed_csdb)
        dense = rng.standard_normal((skewed_csdb.n_cols, 5))
        assert np.allclose(skewed_csdb.spmm(dense), scipy_mat @ dense)

    def test_scipy_duplicates_summed(self):
        coo = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([1, 1]))),
            shape=(2, 2),
        )
        ours = csr_from_scipy(coo)
        assert ours.nnz == 1
        assert ours.to_dense()[0, 1] == 3.0
