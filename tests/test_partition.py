"""Unit tests for graph partitioning and its quality metrics."""

import numpy as np
import pytest

from repro.graphs.partition import (
    balanced_edge_partition,
    edge_cut_fraction,
    greedy_community_partition,
    hash_partition,
    partition_load_balance,
    range_partition,
)
from repro.graphs import planted_partition_edges


class TestBasicPartitioners:
    def test_hash_partition_covers_parts(self):
        assignment = hash_partition(1000, 4, seed=0)
        assert set(np.unique(assignment)) == {0, 1, 2, 3}
        assert partition_load_balance(assignment) < 1.2

    def test_hash_partition_deterministic(self):
        a = hash_partition(100, 4, seed=1)
        b = hash_partition(100, 4, seed=1)
        assert np.array_equal(a, b)

    def test_range_partition_contiguous(self):
        assignment = range_partition(10, 3)
        assert np.all(np.diff(assignment) >= 0)
        assert assignment[0] == 0 and assignment[-1] == 2

    def test_range_partition_balanced(self):
        assignment = range_partition(1000, 8)
        assert partition_load_balance(assignment) == pytest.approx(1.0)

    def test_invalid_parts(self):
        with pytest.raises(ValueError, match="n_parts"):
            hash_partition(10, 0)


class TestBalancedEdgePartition:
    def test_balances_degree_mass(self, skewed_csdb):
        degrees = skewed_csdb.row_degrees()[skewed_csdb.inv_perm]
        assignment = balanced_edge_partition(degrees, 4)
        balance = partition_load_balance(assignment, weights=degrees)
        assert balance < 1.3

    def test_single_part(self):
        assignment = balanced_edge_partition(np.array([3, 1, 2]), 1)
        assert np.all(assignment == 0)

    def test_parts_are_contiguous_ranges(self):
        degrees = np.array([10, 1, 1, 1, 10, 1, 1, 1])
        assignment = balanced_edge_partition(degrees, 2)
        assert np.all(np.diff(assignment) >= 0)


class TestGreedyCommunityPartition:
    def test_lower_cut_than_hash_on_community_graph(self):
        edges, _ = planted_partition_edges(
            300, 4000, n_communities=4, p_in=0.9, seed=0
        )
        greedy = greedy_community_partition(edges, 300, 4, seed=0)
        hashed = hash_partition(300, 4, seed=0)
        assert edge_cut_fraction(edges, greedy) < edge_cut_fraction(
            edges, hashed
        )

    def test_all_nodes_assigned(self, skewed_edges):
        assignment = greedy_community_partition(skewed_edges, 600, 4, seed=0)
        assert np.all(assignment >= 0)
        assert assignment.max() < 4

    def test_roughly_balanced(self, skewed_edges):
        assignment = greedy_community_partition(skewed_edges, 600, 4, seed=0)
        assert partition_load_balance(assignment) < 2.0


class TestMetrics:
    def test_edge_cut_all_same_part(self, skewed_edges):
        assignment = np.zeros(600, dtype=np.int64)
        assert edge_cut_fraction(skewed_edges, assignment) == 0.0

    def test_edge_cut_hash_near_expectation(self, skewed_edges):
        assignment = hash_partition(600, 4, seed=0)
        cut = edge_cut_fraction(skewed_edges, assignment)
        assert 0.6 < cut < 0.9  # expectation is 3/4 for 4 random parts

    def test_edge_cut_empty_graph(self):
        assert edge_cut_fraction(np.empty((0, 2), dtype=np.int64), np.zeros(5)) == 0.0

    def test_load_balance_perfect(self):
        assert partition_load_balance(np.array([0, 0, 1, 1])) == 1.0

    def test_load_balance_skewed(self):
        assert partition_load_balance(np.array([0, 0, 0, 1])) == pytest.approx(
            1.5
        )
