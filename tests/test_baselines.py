"""Tests for the baseline systems and competitor simulators."""

import numpy as np
import pytest

from repro.baselines import (
    DistDGLSimulator,
    DistGERSimulator,
    FusedMMSimulator,
    GinexSimulator,
    MariusGNNSimulator,
    SEMSpMMSimulator,
    run_arm,
    standard_arms,
)
from repro.baselines.systems import speedup_table
from repro.graphs import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("PK", scale=4096)


@pytest.fixture(scope="module")
def arm_results(dataset):
    return [run_arm(arm, dataset) for arm in standard_arms(n_threads=8, dim=8)]


class TestSystemArms:
    def test_five_arms_in_paper_order(self):
        names = [arm.name for arm in standard_arms()]
        assert names == [
            "OMeGa",
            "OMeGa-DRAM",
            "OMeGa-PM",
            "ProNE-DRAM",
            "ProNE-HM",
        ]

    def test_all_arms_complete_on_small_graph(self, arm_results):
        assert all(r.status == "ok" for r in arm_results)

    def test_fig12_ordering(self, arm_results):
        """OMeGa-DRAM < OMeGa < ProNE-DRAM < ProNE-HM < OMeGa-PM."""
        times = {r.system: r.sim_seconds for r in arm_results}
        assert times["OMeGa-DRAM"] < times["OMeGa"]
        assert times["OMeGa"] < times["ProNE-DRAM"]
        assert times["ProNE-DRAM"] < times["ProNE-HM"]
        assert times["ProNE-HM"] < times["OMeGa-PM"]

    def test_omega_pm_orders_of_magnitude_slower(self, arm_results):
        times = {r.system: r.sim_seconds for r in arm_results}
        assert times["OMeGa-PM"] > 20 * times["OMeGa"]

    def test_speedup_table(self, arm_results):
        table = speedup_table(arm_results, reference="OMeGa")
        assert set(table) == {
            "OMeGa-DRAM",
            "OMeGa-PM",
            "ProNE-DRAM",
            "ProNE-HM",
        }
        assert table["ProNE-HM"] > 1.0
        assert table["OMeGa-DRAM"] < 1.0

    def test_speedup_table_unknown_reference(self, arm_results):
        with pytest.raises(ValueError, match="reference"):
            speedup_table(arm_results, reference="nope")

    def test_dram_arms_oom_on_capacity_pressure(self, dataset):
        from dataclasses import replace

        arm = standard_arms(n_threads=4, dim=8)[1]  # OMeGa-DRAM
        squeezed = replace(dataset, scale=10**9)
        result = run_arm(arm, squeezed)
        assert result.status == "oom"
        assert not np.isfinite(result.sim_seconds)

    def test_embeddings_match_across_arms(self, arm_results):
        embeddings = [
            r.result.embedding for r in arm_results if r.result is not None
        ]
        for emb in embeddings[1:]:
            assert np.array_equal(emb, embeddings[0])


class TestRunArmFaults:
    def test_pm_degrade_slows_omega_arm(self, dataset):
        from repro.faults import FaultEvent, FaultPlan

        arm = standard_arms(n_threads=8, dim=8)[0]
        clean = run_arm(arm, dataset)
        degraded = run_arm(
            arm,
            dataset,
            faults=FaultPlan(
                events=(FaultEvent("pm_degrade", "pm", factor=0.5),)
            ),
        )
        assert clean.status == "ok"
        assert degraded.status == "ok"
        assert degraded.sim_seconds > clean.sim_seconds

    def test_crash_plan_recovers_via_checkpoints(self, dataset):
        from repro.faults import FaultEvent, FaultPlan

        arm = standard_arms(n_threads=8, dim=8)[0]
        plan = FaultPlan(events=(FaultEvent("crash", "factorization"),))
        result = run_arm(arm, dataset, faults=plan)
        assert result.status == "recovered"
        assert result.result is not None
        assert result.result.embedding is not None
        assert result.sim_seconds > 0

    def test_speedup_table_accepts_recovered_arms(self, dataset):
        from repro.faults import FaultEvent, FaultPlan

        arms = standard_arms(n_threads=8, dim=8)[:2]
        plan = FaultPlan(events=(FaultEvent("crash", "factorization"),))
        results = [run_arm(arm, dataset, faults=plan) for arm in arms]
        assert all(r.status == "recovered" for r in results)
        # Both recovered arms count as valid completions, so the
        # non-reference arm gets a finite speedup row.
        rows = speedup_table(results)
        assert rows == {"OMeGa-DRAM": pytest.approx(rows["OMeGa-DRAM"])}
        assert np.isfinite(rows["OMeGa-DRAM"])


class TestExternalSimulators:
    def test_all_run_ok(self, dataset):
        sims = (
            GinexSimulator(),
            MariusGNNSimulator(),
            DistDGLSimulator(),
            DistGERSimulator(),
            SEMSpMMSimulator(),
            FusedMMSimulator(),
        )
        for sim in sims:
            result = sim.run(dataset, dim=8)
            assert result.status == "ok"
            assert result.sim_seconds > 0
            assert result.dataset == dataset.name

    def test_omega_beats_ssd_and_distributed_systems(self):
        # Use the default-scale analogue: the ordering is a property of
        # realistic workload sizes, not of 400-node toys.
        realistic = load_dataset("PK")
        omega = run_arm(standard_arms(n_threads=30, dim=32)[0], realistic)
        for sim in (GinexSimulator(), MariusGNNSimulator(), DistDGLSimulator()):
            competitor = sim.run(realistic, dim=32)
            assert competitor.sim_seconds > omega.sim_seconds

    def test_ginex_caching_reduces_io(self, dataset):
        fast = GinexSimulator(cache_fraction=0.9).run(dataset)
        slow = GinexSimulator(cache_fraction=0.01).run(dataset)
        assert slow.sim_seconds > fast.sim_seconds

    def test_marius_swaps_cover_pairs(self):
        sim = MariusGNNSimulator(n_partitions=8, buffer_partitions=4)
        assert sim.swaps_per_epoch() >= 8

    def test_marius_validation(self):
        with pytest.raises(ValueError, match="buffer_partitions"):
            MariusGNNSimulator(n_partitions=4, buffer_partitions=8)

    def test_distdgl_slower_with_more_machines_network_bound(self, dataset):
        few = DistDGLSimulator(machines=2).run(dataset)
        many = DistDGLSimulator(machines=8).run(dataset)
        # More machines -> higher remote fraction -> more network traffic.
        assert many.sim_seconds > few.sim_seconds

    def test_sem_spmm_panel_passes(self, dataset):
        fine = SEMSpMMSimulator(panel_dim=2)
        coarse = SEMSpMMSimulator(panel_dim=32)
        assert fine.run(dataset, dim=32).sim_seconds > coarse.run(
            dataset, dim=32
        ).sim_seconds

    def test_fusedmm_ooms_at_billion_scale(self, dataset):
        from dataclasses import replace

        squeezed = replace(dataset, scale=10**9)
        result = FusedMMSimulator().run(squeezed)
        assert result.status == "oom"

    def test_fusedmm_slower_than_omega_spmm(self, dataset):
        from repro.core import OMeGaConfig, SpMMEngine

        engine = SpMMEngine(
            OMeGaConfig(n_threads=30, dim=32, capacity_scale=dataset.scale)
        )
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((dataset.n_nodes, 32))
        omega = engine.multiply(
            dataset.adjacency_csdb(), dense, compute=False
        )
        fused = FusedMMSimulator().run(dataset, dim=32)
        assert fused.sim_seconds > omega.sim_seconds

    def test_fusedmm_validation(self):
        with pytest.raises(ValueError, match="fusion_discount"):
            FusedMMSimulator(fusion_discount=0.0)
