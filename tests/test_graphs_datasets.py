"""Unit tests for the Table I dataset analogues."""

import numpy as np
import pytest

from repro.graphs import DATASET_NAMES, dataset_table, load_dataset
from repro.graphs.datasets import PAPER_GRAPHS


class TestRegistry:
    def test_six_datasets(self):
        assert DATASET_NAMES == ("PK", "LJ", "OR", "TW", "TW-2010", "FR")

    def test_paper_statistics_match_table1(self):
        # Spot checks against Table I of the paper.
        assert PAPER_GRAPHS["PK"].n_nodes == 1_630_000
        assert PAPER_GRAPHS["PK"].n_edges == 44_600_000
        assert PAPER_GRAPHS["TW-2010"].n_edges == 2_410_000_000
        assert PAPER_GRAPHS["FR"].n_nodes == 65_610_000
        assert PAPER_GRAPHS["LJ"].n_distinct_degrees == 1_641

    def test_billion_scale_have_larger_scale_factors(self):
        assert (
            PAPER_GRAPHS["TW-2010"].default_scale
            > PAPER_GRAPHS["LJ"].default_scale
        )
        assert PAPER_GRAPHS["FR"].default_scale > PAPER_GRAPHS["TW"].default_scale


class TestLoading:
    def test_load_is_deterministic(self):
        a = load_dataset("PK")
        b = load_dataset("PK")
        assert np.array_equal(a.edges, b.edges)

    def test_case_insensitive(self):
        assert load_dataset("pk").name == "PK"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("nope")

    def test_scaled_size(self):
        d = load_dataset("LJ", scale=1024)
        assert d.n_nodes == PAPER_GRAPHS["LJ"].n_nodes // 1024
        assert d.scale == 1024

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("PK", scale=0)

    def test_mean_degree_tracks_paper(self):
        d = load_dataset("PK")
        paper_mean = 2 * d.paper.n_edges / d.paper.n_nodes
        assert d.stats().mean_degree == pytest.approx(paper_mean, rel=0.15)

    def test_adjacency_caches(self):
        d = load_dataset("PK", scale=4096)
        assert d.adjacency_csdb() is d.adjacency_csdb()
        assert d.adjacency_csr() is d.adjacency_csr()

    def test_adjacency_consistent_across_formats(self):
        d = load_dataset("PK", scale=4096)
        assert np.allclose(
            d.adjacency_csdb().to_dense(), d.adjacency_csr().to_dense()
        )

    def test_full_scale_accessors(self):
        d = load_dataset("OR")
        assert d.full_scale_nodes() == PAPER_GRAPHS["OR"].n_nodes
        assert d.full_scale_edges() == PAPER_GRAPHS["OR"].n_edges


class TestTable:
    def test_dataset_table_rows(self):
        rows = dataset_table(names=("PK", "LJ"))
        assert [r["graph"] for r in rows] == ["PK", "LJ"]
        for row in rows:
            assert row["nodes"] > 0
            assert row["edges"] > 0
            assert row["degrees"] > 10  # degree diversity survives scaling
            assert row["gini"] > 0.2  # skew survives scaling
