"""Unit tests for edge-list I/O and graph statistics."""

import numpy as np
import pytest

from repro.graphs import (
    EdgeListError,
    degree_histogram,
    graph_stats,
    load_edge_list,
    save_edge_list,
)
from repro.graphs.stats import (
    degrees_from_edges,
    gini_coefficient,
    shannon_entropy,
)


class TestIO:
    def test_roundtrip(self, tmp_path, skewed_edges):
        path = tmp_path / "graph.txt"
        save_edge_list(path, skewed_edges, header="test graph")
        edges, n_nodes = load_edge_list(path)
        assert n_nodes == len(np.unique(skewed_edges))
        assert len(edges) == len(skewed_edges)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# SNAP header\n# more\n0\t1\n1\t2\n")
        edges, n_nodes = load_edge_list(path)
        assert n_nodes == 3
        assert len(edges) == 2

    def test_node_id_compaction(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("100\t200\n200\t5\n")
        edges, n_nodes = load_edge_list(path)
        assert n_nodes == 3
        assert edges.max() == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# only comments\n")
        edges, n_nodes = load_edge_list(path)
        assert len(edges) == 0
        assert n_nodes == 0

    def test_save_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ValueError, match=r"\(m, 2\)"):
            save_edge_list(tmp_path / "x.txt", np.zeros((3, 3)))


class TestEdgeListValidation:
    def test_non_integer_tokens(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\t1\nfoo\tbar\n")
        with pytest.raises(EdgeListError, match="unparseable"):
            load_edge_list(path)

    def test_single_column(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\n1\n2\n")
        with pytest.raises(EdgeListError, match="two columns"):
            load_edge_list(path)

    def test_negative_node_ids(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\t1\n-3\t2\n")
        with pytest.raises(EdgeListError, match="negative node id"):
            load_edge_list(path)

    def test_error_carries_path_and_is_value_error(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError) as excinfo:
            load_edge_list(path)
        assert isinstance(excinfo.value, EdgeListError)
        assert excinfo.value.path == str(path)


class TestStats:
    def test_degrees_from_edges(self, paper_edges):
        degrees = degrees_from_edges(paper_edges, 7)
        assert degrees.sum() == 22
        assert degrees[0] == 4

    def test_degree_histogram(self, paper_edges):
        values, counts = degree_histogram(degrees_from_edges(paper_edges, 7))
        assert counts.sum() == 7
        assert set(values.tolist()) == {2, 3, 4}

    def test_shannon_entropy_uniform_is_log_n(self):
        h = shannon_entropy(np.ones(16))
        assert h == pytest.approx(np.log(16))

    def test_shannon_entropy_point_mass_is_zero(self):
        assert shannon_entropy(np.array([0.0, 5.0, 0.0])) == 0.0

    def test_shannon_entropy_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            shannon_entropy(np.array([-1.0]))

    def test_gini_uniform_is_zero(self):
        assert gini_coefficient(np.ones(100)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini_coefficient(values) > 0.9

    def test_graph_stats_fields(self, skewed_edges):
        stats = graph_stats(skewed_edges, 600)
        assert stats.n_nodes == 600
        assert stats.n_edges == len(skewed_edges)
        assert 0.0 <= stats.normalized_entropy <= 1.0
        assert stats.max_degree >= stats.mean_degree
        assert stats.n_distinct_degrees <= stats.max_degree + 1
