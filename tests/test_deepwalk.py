"""Unit tests for the from-scratch DeepWalk/SGNS baseline."""

import numpy as np
import pytest

from repro.baselines.deepwalk import DeepWalkEmbedder, DeepWalkParams
from repro.eval import node_classification_accuracy
from repro.formats import edges_to_csr
from repro.graphs import planted_partition_edges


@pytest.fixture(scope="module")
def embedder():
    return DeepWalkEmbedder(
        DeepWalkParams(dim=16, walks_per_node=3, walk_length=12, epochs=2)
    )


class TestCorpus:
    def test_corpus_covers_nodes(self, embedder, skewed_csr):
        corpus = embedder.build_corpus(skewed_csr)
        visited = set(np.concatenate(corpus).tolist())
        connected = int((skewed_csr.row_degrees() > 0).sum())
        assert len(visited) >= 0.9 * connected

    def test_corpus_walks_bounded(self, embedder, skewed_csr):
        corpus = embedder.build_corpus(skewed_csr)
        assert all(
            2 <= len(walk) <= embedder.params.walk_length + 1
            for walk in corpus
        )

    def test_pairs_within_window(self, embedder):
        walk = np.array([4, 7, 9, 2])
        pairs = embedder.skipgram_pairs([walk])
        for center, context in pairs.tolist():
            pos_c = np.flatnonzero(walk == center)
            pos_x = np.flatnonzero(walk == context)
            assert min(
                abs(int(a) - int(b)) for a in pos_c for b in pos_x
            ) <= embedder.params.window

    def test_pairs_symmetric(self, embedder):
        walk = np.array([0, 1, 2])
        pairs = {tuple(p) for p in embedder.skipgram_pairs([walk]).tolist()}
        assert (0, 1) in pairs and (1, 0) in pairs

    def test_empty_corpus(self, embedder):
        assert embedder.skipgram_pairs([]).shape == (0, 2)


class TestTraining:
    def test_embedding_shape_and_norm(self, embedder, skewed_csr):
        emb = embedder.embed(skewed_csr)
        assert emb.shape == (skewed_csr.n_rows, 16)
        norms = np.linalg.norm(emb, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_deterministic(self, skewed_csr):
        params = DeepWalkParams(dim=8, walks_per_node=2, walk_length=8, epochs=1)
        a = DeepWalkEmbedder(params).embed(skewed_csr)
        b = DeepWalkEmbedder(params).embed(skewed_csr)
        assert np.array_equal(a, b)

    def test_recovers_communities(self):
        edges, labels = planted_partition_edges(
            300, 4500, n_communities=3, p_in=0.9, seed=4
        )
        csr = edges_to_csr(edges, 300)
        emb = DeepWalkEmbedder(
            DeepWalkParams(dim=16, walks_per_node=6, walk_length=15, epochs=3)
        ).embed(csr)
        accuracy = node_classification_accuracy(emb, labels, seed=0)
        assert accuracy > 0.55  # chance is 1/3

    def test_training_cost_estimate_positive(self, embedder, skewed_csr):
        macs = embedder.training_cost_macs(skewed_csr)
        assert macs > skewed_csr.n_rows
