"""Property-based tests (hypothesis) on the core data structures.

Invariants covered:

- CSR/CSDB agree with each other and with dense algebra on arbitrary
  sparse matrices;
- CSDB round-trips (CSR -> CSDB -> CSR) preserve content;
- every thread allocator exactly tiles the row space on arbitrary inputs;
- Eq. 3 entropy respects its information-theoretic bounds;
- the Eq. 5 bandwidth interpolation is monotone;
- Eq. 9 partition counts always satisfy the peak-memory inequality;
- AUC is symmetric under score negation/swap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EntropyAwareAllocator,
    RoundRobinAllocator,
    WorkloadBalancedAllocator,
)
from repro.core.asl import optimal_partitions
from repro.core.eata import AllocatorContext
from repro.eval.linkpred import ranking_auc
from repro.formats import CSDBMatrix, CSRMatrix
from repro.memsim import CostModel, Locality, pm_spec


@st.composite
def coo_matrices(draw):
    """Random small sparse matrices as COO triplets + shape."""
    n_rows = draw(st.integers(1, 24))
    n_cols = draw(st.integers(1, 24))
    nnz = draw(st.integers(0, 60))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-5, 5, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return (
        np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64),
        np.array(vals, dtype=np.float64),
        (n_rows, n_cols),
    )


class TestFormatProperties:
    @given(coo_matrices())
    @settings(max_examples=60, deadline=None)
    def test_csdb_equals_csr(self, coo):
        rows, cols, vals, shape = coo
        csr = CSRMatrix.from_coo(rows, cols, vals, shape)
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        assert np.allclose(csdb.to_dense(), csr.to_dense())

    @given(coo_matrices(), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_spmm_matches_dense_algebra(self, coo, d):
        rows, cols, vals, shape = coo
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        rng = np.random.default_rng(0)
        b = rng.standard_normal((shape[1], d))
        assert np.allclose(csdb.spmm(b), csdb.to_dense() @ b, atol=1e-9)

    @given(coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_csdb_roundtrip(self, coo):
        rows, cols, vals, shape = coo
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        back = CSDBMatrix.from_csr(csdb.to_csr())
        assert np.allclose(back.to_dense(), csdb.to_dense())

    @given(coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, coo):
        rows, cols, vals, shape = coo
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        assert np.allclose(
            csdb.transpose().transpose().to_dense(), csdb.to_dense()
        )

    @given(coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_degree_blocks_sorted_and_consistent(self, coo):
        rows, cols, vals, shape = coo
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        degrees = csdb.row_degrees()
        assert np.all(np.diff(degrees) <= 0)
        assert degrees.sum() == csdb.nnz
        assert len(np.unique(degrees)) == csdb.n_blocks


class TestAllocatorProperties:
    @given(coo_matrices(), st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_every_allocator_tiles_rows(self, coo, n_threads):
        rows, cols, vals, shape = coo
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        for allocator in (
            RoundRobinAllocator(),
            WorkloadBalancedAllocator(),
            EntropyAwareAllocator(),
        ):
            partitions = allocator.allocate(csdb, n_threads)
            assert len(partitions) == n_threads
            assert partitions[0].row_start == 0
            assert partitions[-1].row_end == csdb.n_rows
            for a, b in zip(partitions, partitions[1:]):
                assert a.row_end == b.row_start
            assert sum(p.nnz_count for p in partitions) == csdb.nnz

    @given(coo_matrices())
    @settings(max_examples=40, deadline=None)
    def test_entropy_bounds(self, coo):
        rows, cols, vals, shape = coo
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        ctx = AllocatorContext(csdb)
        h = ctx.entropy(0, csdb.n_rows)
        rows_with_nnz = int((csdb.row_degrees() > 0).sum())
        assert 0.0 <= h <= np.log(max(rows_with_nnz, 1)) + 1e-9
        assert 0.0 <= ctx.z_entropy(0, csdb.n_rows) <= 1.0

    @given(coo_matrices(), st.integers(0, 20), st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_entropy_subadditive_ranges(self, coo, a, b):
        """Entropy of a range never exceeds log of its row count."""
        rows, cols, vals, shape = coo
        csdb = CSDBMatrix.from_coo(rows, cols, vals, shape)
        lo = min(a, b) % (csdb.n_rows + 1)
        hi = max(a, b) % (csdb.n_rows + 1)
        if lo > hi:
            lo, hi = hi, lo
        ctx = AllocatorContext(csdb)
        if hi > lo:
            assert ctx.entropy(lo, hi) <= np.log(hi - lo) + 1e-9


class TestCostModelProperties:
    @given(
        st.floats(0.0, 1.0),
        st.floats(0.0, 1.0),
        st.integers(1, 32),
    )
    @settings(max_examples=60, deadline=None)
    def test_eq5_monotone_in_z(self, z1, z2, threads):
        model = CostModel()
        lo, hi = min(z1, z2), max(z1, z2)
        bw_lo = model.entropy_interpolated_bandwidth(
            pm_spec(), Locality.LOCAL, lo, threads
        )
        bw_hi = model.entropy_interpolated_bandwidth(
            pm_spec(), Locality.LOCAL, hi, threads
        )
        assert bw_hi <= bw_lo + 1e-6

    @given(st.floats(1.0, 1e9), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_access_time_positive_and_linearish(self, nbytes, z):
        model = CostModel()
        t = model.entropy_access_time(
            pm_spec(), Locality.LOCAL, nbytes, z
        )
        t2 = model.entropy_access_time(
            pm_spec(), Locality.LOCAL, 2 * nbytes, z
        )
        assert t > 0
        assert t2 == pytest.approx(2 * t, rel=1e-6)


class TestASLProperties:
    @given(
        st.integers(1, 10**6),
        st.integers(1, 256),
        st.floats(1.0, 1e12),
        st.floats(0.0, 1e10),
    )
    @settings(max_examples=80, deadline=None)
    def test_eq9_partitions_satisfy_peak_memory(
        self, n_nodes, dim, budget, sparse
    ):
        n = optimal_partitions(n_nodes, dim, budget, sparse)
        assert 1 <= n <= dim
        dense = dim * n_nodes * 8.0
        # If a non-degenerate split was chosen, Eq. 8 must hold:
        # 3*(dense/n) + sparse + 2*dense <= budget.
        if n < dim:
            assert 3 * dense / n + sparse + 2 * dense <= budget * (1 + 1e-9)


class TestAUCProperties:
    @given(
        st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=40),
        st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_auc_in_unit_interval_and_antisymmetric(self, pos, neg):
        pos, neg = np.array(pos), np.array(neg)
        auc = ranking_auc(pos, neg)
        assert 0.0 <= auc <= 1.0
        swapped = ranking_auc(neg, pos)
        assert auc + swapped == pytest.approx(1.0, abs=1e-9)
