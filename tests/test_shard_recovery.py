"""Crash-at-every-boundary recovery tests for the sharded store.

A shard can die before, during, or after a WAL checkpoint commit.  The
restart contract is the same at every boundary: the shard reopens from
its last *durable* checkpoint, every recovered lookup is either
bit-identical to the authoritative table or flagged stale, and
``catch_up`` converges it back to bit-identical.  The second half
drives the same machinery through the full serving stack:
:class:`~repro.serve.sharded.ShardedEmbeddingBackend` behind an
:class:`~repro.serve.EmbeddingServer` under a seeded shard-kill plan.
"""

import numpy as np
import pytest

from repro.core import OMeGaConfig, OMeGaEmbedder
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.graphs import chung_lu_edges
from repro.memsim.clock import VirtualClock
from repro.memsim.devices import pm_spec
from repro.memsim.persistence import (
    CrashInjected,
    PersistenceDomain,
    StageCheckpointStore,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve import EmbeddingServer, RequestTrace, ServePolicy
from repro.serve.backend import FIDELITY_FULL, FIDELITY_STALE
from repro.serve.sharded import ShardedEmbeddingBackend
from repro.shard import (
    STATUS_FRESH,
    STATUS_STALE,
    EmbeddingShardManager,
    ShardCrashError,
    ShardHost,
    ShardPolicy,
    ShardSupervisor,
    SupervisorPolicy,
)

N_NODES = 64
DIM = 4


def _manager() -> EmbeddingShardManager:
    table = np.random.default_rng(3).standard_normal((N_NODES, DIM))
    return EmbeddingShardManager(
        table, policy=ShardPolicy(n_shards=2, lookup_deadline_s=0.2)
    )


# -- the three checkpoint boundaries --------------------------------------


class TestCrashBoundaries:
    def test_crash_before_checkpoint_loses_update(self):
        """Killed after a write but before its checkpoint: the write is
        lost, the recovered rows are the genesis values, flagged stale."""
        with _manager() as manager:
            supervisor = ShardSupervisor(manager)
            host = manager.hosts[0]
            ids = np.arange(host.row_start, host.row_end)
            genesis = np.array(manager.table[ids], copy=True)
            manager.apply_update(ids, np.full((len(ids), DIM), 9.0))
            host.inject_crash()
            result = manager.lookup(ids)
            assert supervisor.incidents[-1].lost_versions == 1
            assert result.statuses[0] == STATUS_STALE
            assert np.array_equal(result.rows, genesis)
            manager.catch_up(0)
            caught = manager.lookup(ids)
            assert caught.stale_rows == 0
            assert np.array_equal(caught.rows, manager.table[ids])

    def test_crash_during_checkpoint_keeps_earlier_record(self):
        """A crash inside the commit loses that record only: the
        checkpoint version does not advance and the previous checkpoint
        stays the durable recovery point."""
        with _manager() as manager:
            supervisor = ShardSupervisor(manager)
            host = manager.hosts[0]
            ids = np.arange(host.row_start, host.row_end)
            genesis = np.array(manager.table[ids], copy=True)
            manager.apply_update(ids, np.full((len(ids), DIM), 4.0))
            with pytest.raises(CrashInjected):
                host.checkpoint(crash=True)
            # The torn record never committed.
            assert host.checkpoint_version == 0
            assert host.checkpoints.last().meta["version"] == 0
            host.inject_crash()
            result = manager.lookup(ids)
            assert supervisor.incidents[-1].lost_versions == 1
            assert result.statuses[0] == STATUS_STALE
            assert np.array_equal(result.rows, genesis)

    def test_crash_after_checkpoint_recovers_bit_identical(self):
        """A durable checkpoint between the write and the crash: the
        restart loses nothing and the very next lookup is fresh."""
        with _manager() as manager:
            supervisor = ShardSupervisor(manager)
            host = manager.hosts[0]
            ids = np.arange(host.row_start, host.row_end)
            manager.apply_update(ids, np.full((len(ids), DIM), 6.0))
            manager.checkpoint_all()
            host.inject_crash()
            result = manager.lookup(ids)
            incident = supervisor.incidents[-1]
            assert incident.lost_versions == 0
            # The lookup that tripped over the dead worker was hedged to
            # the checkpoint tier, whose rows are already current...
            assert np.array_equal(result.rows, manager.table[ids])
            # ...and the restarted shard is fresh with nothing to replay.
            fresh = manager.lookup(ids)
            assert fresh.statuses[0] == STATUS_FRESH
            assert fresh.stale_rows == 0
            assert np.array_equal(fresh.rows, manager.table[ids])

    def test_restart_without_any_checkpoint_refused(self):
        table = np.random.default_rng(3).standard_normal((8, DIM))
        host = ShardHost(0, table, 0, ShardPolicy(n_shards=1))
        try:
            host.start(checkpoint=False)
            host.inject_crash()
            with pytest.raises(ShardCrashError, match="no checkpoint"):
                host.restart()
        finally:
            host.close()

    def test_repeated_crashes_at_mixed_boundaries_converge(self):
        """Crash -> recover -> update -> crash again, across boundaries;
        each recovery is stale-or-identical and catch-up converges."""
        with _manager() as manager:
            ShardSupervisor(manager)
            host = manager.hosts[1]
            ids = np.arange(host.row_start, host.row_end)
            for round_id, checkpoint_first in enumerate((True, False)):
                manager.apply_update(
                    ids, np.full((len(ids), DIM), float(round_id))
                )
                if checkpoint_first:
                    manager.checkpoint_all()
                host.inject_crash()
                result = manager.lookup(ids)
                if checkpoint_first:
                    assert np.array_equal(result.rows, manager.table[ids])
                else:
                    assert result.statuses[1] == STATUS_STALE
                manager.catch_up(1)
                caught = manager.lookup(ids)
                assert caught.stale_rows == 0
                assert np.array_equal(caught.rows, manager.table[ids])
            assert host.restarts == 2


# -- the full serving stack under a shard kill ----------------------------

GRAPH_NODES = 150


def _backend(supervised: bool, faults=None, metrics=None):
    edges = chung_lu_edges(GRAPH_NODES, 900, seed=3)
    embedder = OMeGaEmbedder(
        OMeGaConfig(n_threads=2, dim=8), metrics=metrics
    )
    return ShardedEmbeddingBackend(
        embedder,
        edges,
        GRAPH_NODES,
        shard_policy=ShardPolicy(
            n_shards=2, hedge_enabled=supervised, lookup_deadline_s=0.2
        ),
        supervisor_policy=SupervisorPolicy() if supervised else None,
        faults=faults,
        metrics=metrics,
    )


def _crash_plan() -> FaultPlan:
    return FaultPlan(
        events=(FaultEvent(kind="shard_crash", site="shard.0", count=3),)
    )


class TestServeIntegration:
    def test_supervised_server_rides_through_shard_kill(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(_crash_plan(), metrics)
        backend = _backend(True, faults=injector, metrics=metrics)
        try:
            backend.warm_up()
            trace = RequestTrace.synthesize(
                seed=5,
                n_requests=40,
                per_node_cost_s=backend.compute_cost(1),
                load=0.5,
                deadline_slack=60.0,
            )
            policy = ServePolicy.calibrated(backend.compute_cost(1) * 8.5)
            server = EmbeddingServer(
                backend, policy, clock=VirtualClock(), metrics=metrics
            )
            report = server.run_trace(trace)
            assert report.balanced
            assert report.failed == 0
            assert metrics.value("serve.unhandled_exceptions") == 0
            summary = backend.shard_summary()
            assert summary["restarts"] >= 1
            assert summary["lookups"] >= 3
            # The gather that saw the crash was hedged and flagged.
            assert metrics.value("serve.degraded", reason="shard_stale") >= 1
            assert any(
                response.stale_rows > 0 for response in report.responses
            )
        finally:
            backend.close()

    def test_unsupervised_server_fails_requests(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(_crash_plan(), metrics)
        backend = _backend(False, faults=injector, metrics=metrics)
        try:
            backend.warm_up()
            trace = RequestTrace.synthesize(
                seed=5,
                n_requests=40,
                per_node_cost_s=backend.compute_cost(1),
                load=0.5,
                deadline_slack=60.0,
            )
            policy = ServePolicy.calibrated(backend.compute_cost(1) * 8.5)
            server = EmbeddingServer(
                backend, policy, clock=VirtualClock(), metrics=metrics
            )
            report = server.run_trace(trace)
            assert report.balanced
            # No hedging and no supervisor: the crash costs requests for
            # the rest of the trace.
            assert report.failed > 0
            assert backend.shard_summary()["restarts"] == 0
        finally:
            backend.close()

    def test_partial_result_falls_one_rung_not_the_request(self):
        metrics = MetricsRegistry()
        backend = _backend(True, metrics=metrics)
        try:
            backend.warm_up()
            backend.supervisor = None  # nobody repairs the shard
            backend.shards.on_failure = None
            host = backend.shards.hosts[0]
            host.inject_crash()
            # Wipe the WAL: the hedge of last resort has nothing left.
            host.checkpoints = StageCheckpointStore(
                PersistenceDomain(device=pm_spec())
            )
            policy = ServePolicy.calibrated(backend.compute_cost(1) * 8.5)
            server = EmbeddingServer(
                backend, policy, clock=VirtualClock(), metrics=metrics
            )
            trace = RequestTrace.synthesize(
                seed=5,
                n_requests=4,
                per_node_cost_s=backend.compute_cost(1),
                load=0.3,
                deadline_slack=60.0,
            )
            report = server.run_trace(trace)
            assert report.balanced
            assert report.failed == 0
            # Full-tier gathers raised PartialResultError, the ladder
            # fell through, and the requests still served downgraded.
            assert metrics.value("serve.degraded", reason="shard_partial") >= 1
            served = [
                r for r in report.responses if r.fidelity is not None
            ]
            assert served
            assert all(
                r.fidelity in (FIDELITY_STALE, "propagation_only")
                or r.fidelity != FIDELITY_FULL
                for r in served
            )
        finally:
            backend.close()
