"""Tests for the fault-tolerant sharded embedding store (`repro.shard`).

Covers entropy-aware range cutting and the routing table, policy
validation, scatter-gather bit-identity against the authoritative
table, deterministic shard-fault injection, the hedging ladder
(replica -> checkpoint tier -> PartialResultError), and the supervisor:
reactive crash/hang repair, the two-sweep heartbeat detector,
restart budgets, and bounded staleness accounting.
"""

import time

import numpy as np
import pytest

from repro.faults import (
    ALL_FAULT_KINDS,
    SHARD_FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.obs.metrics import MetricsRegistry
from repro.shard import (
    STATUS_FRESH,
    STATUS_STALE,
    EmbeddingShardManager,
    Incident,
    PartialResultError,
    ShardCrashError,
    ShardPolicy,
    ShardRoutingTable,
    ShardSupervisor,
    ShardTimeoutError,
    SupervisorPolicy,
    entropy_aware_node_ranges,
    uniform_node_ranges,
)

N_NODES = 64
DIM = 4


def _table(n_nodes: int = N_NODES, dim: int = DIM, seed: int = 0):
    return np.random.default_rng(seed).standard_normal((n_nodes, dim))


def _manager(
    table=None,
    degrees=None,
    faults=None,
    metrics=None,
    **policy_overrides,
) -> EmbeddingShardManager:
    policy_overrides.setdefault("n_shards", 2)
    policy_overrides.setdefault("lookup_deadline_s", 0.2)
    table = _table() if table is None else table
    return EmbeddingShardManager(
        table,
        degrees=degrees,
        policy=ShardPolicy(**policy_overrides),
        faults=faults,
        metrics=metrics,
    )


# -- ranges and routing ---------------------------------------------------


class TestRanges:
    def test_entropy_ranges_cover_contiguously(self):
        degrees = np.random.default_rng(1).pareto(1.5, size=500) + 1.0
        ranges = entropy_aware_node_ranges(degrees, 4)
        assert len(ranges) == 4
        cursor = 0
        for start, end in ranges:
            assert start == cursor
            assert end >= start
            cursor = end
        assert cursor == 500

    def test_entropy_ranges_shrink_hot_regions(self):
        # Sharply decreasing degrees: the hot head should land on a
        # smaller shard than a uniform cut would give it.
        degrees = np.linspace(1000.0, 1.0, 400) ** 2
        ranges = entropy_aware_node_ranges(degrees, 4)
        first = ranges[0][1] - ranges[0][0]
        last = ranges[-1][1] - ranges[-1][0]
        assert first < 100 < last

    def test_uniform_ranges(self):
        assert uniform_node_ranges(10, 3) == [(0, 3), (3, 6), (6, 10)]

    def test_empty_degrees(self):
        assert entropy_aware_node_ranges(np.array([]), 3) == [(0, 0)] * 3

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            entropy_aware_node_ranges(np.ones(4), 0)
        with pytest.raises(ValueError, match="beta"):
            entropy_aware_node_ranges(np.ones(4), 2, beta=0.0)
        with pytest.raises(ValueError, match="n_shards"):
            uniform_node_ranges(4, 0)


class TestRoutingTable:
    def _table(self) -> ShardRoutingTable:
        return ShardRoutingTable(ranges=((0, 5), (5, 5), (5, 12), (12, 20)))

    def test_shard_of_matches_bruteforce(self):
        routing = self._table()
        ids = np.arange(20)
        owners = routing.shard_of(ids)
        for node, owner in zip(ids, owners):
            start, end = routing.ranges[owner]
            assert start <= node < end

    def test_split_positions_roundtrip(self):
        routing = self._table()
        ids = np.array([19, 0, 7, 4, 12, 5])
        out = np.empty(len(ids), dtype=np.int64)
        for _, (positions, shard_ids) in routing.split(ids).items():
            out[positions] = shard_ids
        assert np.array_equal(out, ids)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            self._table().shard_of(np.array([20]))
        with pytest.raises(ValueError, match="outside"):
            self._table().shard_of(np.array([-1]))

    def test_contiguity_enforced(self):
        with pytest.raises(ValueError, match="contiguous"):
            ShardRoutingTable(ranges=((0, 5), (6, 10)))
        with pytest.raises(ValueError, match="at least one"):
            ShardRoutingTable(ranges=())

    def test_dict_roundtrip(self):
        routing = self._table()
        rebuilt = ShardRoutingTable.from_dict(routing.to_dict())
        assert rebuilt == routing
        assert rebuilt.n_shards == 4
        assert rebuilt.n_nodes == 20


# -- policies -------------------------------------------------------------


class TestPolicyValidation:
    def test_shard_policy(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardPolicy(n_shards=0)
        with pytest.raises(ValueError, match="n_replicas"):
            ShardPolicy(n_replicas=-1)
        with pytest.raises(ValueError, match="partition"):
            ShardPolicy(partition="random")
        with pytest.raises(ValueError, match="lookup_deadline_s"):
            ShardPolicy(lookup_deadline_s=0.0)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ShardPolicy(checkpoint_interval=-1)
        with pytest.raises(ValueError, match="staleness_bound"):
            ShardPolicy(staleness_bound=-1)

    def test_supervisor_policy(self):
        with pytest.raises(ValueError, match="heartbeat_timeout_s"):
            SupervisorPolicy(heartbeat_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_restarts"):
            SupervisorPolicy(max_restarts=-1)


# -- shard fault plans ----------------------------------------------------


class TestShardFaultPlans:
    def test_kinds_registered(self):
        assert set(SHARD_FAULT_KINDS) <= set(ALL_FAULT_KINDS)

    def test_event_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultEvent(kind="shard_crash", site="propagation")
        with pytest.raises(ValueError, match="seconds"):
            FaultEvent(kind="shard_hang", site="shard.0")

    def test_random_shard_deterministic(self):
        one = FaultPlan.random_shard(seed=11)
        two = FaultPlan.random_shard(seed=11)
        assert one.events == two.events
        assert all(e.kind in SHARD_FAULT_KINDS for e in one.events)
        assert all(e.site.startswith("shard.") for e in one.events)

    def test_take_shard_fault_fires_once_at_sequence(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="shard_crash", site="shard.1", count=3),)
        )
        injector = FaultInjector(plan)
        assert injector.take_shard_fault("shard.1", 2) is None
        assert injector.take_shard_fault("shard.0", 3) is None
        event = injector.take_shard_fault("shard.1", 3)
        assert event is not None and event.kind == "shard_crash"
        assert injector.take_shard_fault("shard.1", 4) is None


# -- scatter-gather -------------------------------------------------------


class TestScatterGather:
    def test_lookup_bit_identical(self):
        with _manager(n_shards=3) as manager:
            ids = np.array([0, 63, 17, 5, 42, 17])
            result = manager.lookup(ids)
            assert np.array_equal(result.rows, manager.table[ids])
            assert result.stale_rows == 0
            assert set(result.statuses.values()) == {STATUS_FRESH}
            assert result.sim_seconds > 0.0

    def test_full_table_gather(self):
        with _manager(n_shards=4) as manager:
            result = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(result.rows, manager.table)

    def test_entropy_partitioning_used_with_degrees(self):
        degrees = np.linspace(500.0, 1.0, N_NODES) ** 2
        with _manager(degrees=degrees, n_shards=4) as manager:
            sizes = [end - start for start, end in manager.routing.ranges]
            assert sizes[0] < sizes[-1]
            result = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(result.rows, manager.table)

    def test_apply_update_write_through(self):
        with _manager() as manager:
            ids = np.array([1, 40])
            rows = np.full((2, DIM), 7.5)
            version = manager.apply_update(ids, rows)
            assert version == 1
            result = manager.lookup(ids)
            assert np.array_equal(result.rows, rows)
            # Write-through keeps every shard at the table version.
            assert result.stale_rows == 0

    def test_injected_crash_hedges_to_checkpoint(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="shard_crash", site="shard.0", count=1),)
        )
        metrics = MetricsRegistry()
        injector = FaultInjector(plan, metrics)
        with _manager(faults=injector, metrics=metrics) as manager:
            ids = np.arange(N_NODES)
            result = manager.lookup(ids)
            # No updates since genesis: the checkpoint rows are the
            # table rows, so values stay identical but are flagged.
            assert np.array_equal(result.rows, manager.table)
            assert result.statuses[0] == STATUS_STALE
            assert result.statuses[1] == STATUS_FRESH
            assert result.stale_rows == manager.routing.ranges[0][1]
            assert result.stale_ranges and result.stale_ranges[0][0] == 0
            assert metrics.value("shard.hedged", target="checkpoint") == 1
            assert metrics.value("shard.stale_rows") == result.stale_rows
            assert (
                metrics.value(
                    "shard.failures", shard="0", kind="ShardCrashError"
                )
                == 1
            )

    def test_hedging_disabled_propagates_crash(self):
        plan = FaultPlan(
            events=(FaultEvent(kind="shard_crash", site="shard.0", count=1),)
        )
        with _manager(
            faults=FaultInjector(plan), hedge_enabled=False
        ) as manager:
            with pytest.raises(ShardCrashError):
                manager.lookup(np.arange(N_NODES))

    def test_replica_hedge_stays_fresh(self):
        with _manager(n_replicas=1) as manager:
            manager.hosts[0].inject_crash()
            result = manager.lookup(np.arange(N_NODES))
            # The replica shares the live segment: identical and not stale.
            assert np.array_equal(result.rows, manager.table)
            assert result.stale_rows == 0
            assert (
                manager.metrics.value("shard.hedged", target="replica") == 1
            )

    def test_partial_result_when_no_rung_left(self):
        from repro.memsim.persistence import (
            PersistenceDomain,
            StageCheckpointStore,
        )
        from repro.memsim.devices import pm_spec

        with _manager() as manager:
            host = manager.hosts[0]
            host.inject_crash()
            # Wipe the WAL: no live worker, no replica, no checkpoint.
            host.checkpoints = StageCheckpointStore(
                PersistenceDomain(device=pm_spec())
            )
            with pytest.raises(PartialResultError) as err:
                manager.lookup(np.arange(N_NODES))
            (shard, start, end), = err.value.missing_ranges
            assert shard == 0
            assert (start, end) == (0, manager.routing.ranges[0][1])

    def test_hang_hits_deadline(self):
        with _manager(lookup_deadline_s=0.15) as manager:
            host = manager.hosts[0]
            host.inject_hang(0.6)
            with pytest.raises(ShardTimeoutError):
                host.lookup(np.array([0]))


# -- supervision ----------------------------------------------------------


class TestSupervisor:
    def test_reactive_crash_restart(self):
        with _manager() as manager:
            supervisor = ShardSupervisor(manager)
            manager.hosts[0].inject_crash()
            result = manager.lookup(np.arange(N_NODES))
            # The gather that observed the crash was hedged stale...
            assert result.statuses[0] == STATUS_STALE
            # ...and the supervisor repaired the shard inside the call.
            assert manager.hosts[0].restarts == 1
            assert [
                (i.reason, i.action, i.lost_versions)
                for i in supervisor.incidents
            ] == [("crash", "restart", 0)]
            fresh = manager.lookup(np.arange(N_NODES))
            assert fresh.statuses[0] == STATUS_FRESH
            assert np.array_equal(fresh.rows, manager.table)
            assert (
                manager.metrics.value(
                    "shard.restarts", shard="0", reason="crash"
                )
                == 1
            )

    def test_bounded_staleness_and_catch_up(self):
        with _manager() as manager:
            supervisor = ShardSupervisor(manager)
            host = manager.hosts[0]
            ids = np.arange(host.row_start, host.row_end)
            before = np.array(manager.table[ids], copy=True)
            manager.apply_update(ids, np.full((len(ids), DIM), 2.5))
            host.inject_crash()
            result = manager.lookup(ids)
            # The restart restored the genesis checkpoint: exactly one
            # version behind, values from before the update, flagged.
            incident = supervisor.incidents[-1]
            assert incident.lost_versions == 1
            assert result.statuses[0] == STATUS_STALE
            assert np.array_equal(result.rows, before)
            manager.catch_up(0)
            caught = manager.lookup(ids)
            assert caught.stale_rows == 0
            assert np.array_equal(caught.rows, manager.table[ids])

    def test_hang_repaired_reactively(self):
        with _manager(lookup_deadline_s=0.15) as manager:
            supervisor = ShardSupervisor(manager)
            manager.hosts[0].inject_hang(0.6)
            result = manager.lookup(np.arange(N_NODES))
            assert result.statuses[0] == STATUS_STALE
            assert supervisor.incidents[-1].reason == "hang"
            assert manager.hosts[0].restarts == 1
            fresh = manager.lookup(np.arange(N_NODES))
            assert fresh.stale_rows == 0

    def test_heartbeat_loss_needs_two_sweeps(self):
        with _manager() as manager:
            policy = SupervisorPolicy(heartbeat_timeout_s=0.2)
            supervisor = ShardSupervisor(manager, policy)
            assert supervisor.wait_heartbeats()
            manager.hosts[1].inject_mute()
            time.sleep(0.05)  # let the mute land in the worker loop
            # Sweep 1 records the baseline; nothing is repaired yet.
            assert supervisor.check() == []
            time.sleep(0.35)
            incidents = supervisor.check()
            assert [(i.shard_id, i.reason) for i in incidents] == [
                (1, "heartbeat")
            ]
            assert (
                manager.metrics.value("shard.heartbeat_misses", shard="1")
                == 1
            )
            result = manager.lookup(np.arange(N_NODES))
            assert result.stale_rows == 0

    def test_proactive_sweep_catches_silent_crash(self):
        with _manager() as manager:
            supervisor = ShardSupervisor(manager)
            manager.hosts[1].inject_crash()
            incidents = supervisor.check()
            assert [(i.shard_id, i.action) for i in incidents] == [
                (1, "restart")
            ]
            result = manager.lookup(np.arange(N_NODES))
            assert result.stale_rows == 0

    def test_restart_budget_abandons(self):
        with _manager() as manager:
            policy = SupervisorPolicy(max_restarts=0)
            supervisor = ShardSupervisor(manager, policy)
            manager.hosts[0].inject_crash()
            result = manager.lookup(np.arange(N_NODES))
            host = manager.hosts[0]
            assert host.abandoned
            assert host.restarts == 0
            assert supervisor.incidents[-1].action == "abandon"
            assert manager.metrics.value("shard.abandoned", shard="0") == 1
            # Abandoned shards keep serving from the checkpoint tier.
            assert result.statuses[0] == STATUS_STALE
            again = manager.lookup(np.arange(N_NODES))
            assert again.statuses[0] == STATUS_STALE
            assert np.array_equal(again.rows, manager.table)

    def test_backoff_recorded_not_slept(self):
        from repro.core.asl import RetryPolicy

        with _manager() as manager:
            policy = SupervisorPolicy(
                restart_backoff=RetryPolicy(
                    max_retries=8,
                    base_delay_seconds=1e-3,
                    jitter="full",
                    jitter_seed=7,
                )
            )
            supervisor = ShardSupervisor(manager, policy)
            manager.hosts[0].inject_crash()
            started = time.monotonic()
            manager.lookup(np.arange(N_NODES))
            elapsed = time.monotonic() - started
            incident = supervisor.incidents[-1]
            assert 0.0 <= incident.backoff_s <= 1e-3
            assert supervisor.sim_backoff_seconds == incident.backoff_s
            # The expected replay matches a fresh policy with the seed.
            twin = RetryPolicy(
                max_retries=8,
                base_delay_seconds=1e-3,
                jitter="full",
                jitter_seed=7,
            )
            assert incident.backoff_s == twin.delay(0)
            # Recorded, not slept: repair is far faster than even a
            # handful of real backoffs would allow.
            assert elapsed < 5.0

    def test_incident_is_frozen_record(self):
        incident = Incident(shard_id=2, reason="crash", action="restart")
        with pytest.raises(AttributeError):
            incident.reason = "hang"
