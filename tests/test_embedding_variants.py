"""Cross-model comparison tests: ProNE vs spectral vs walk baselines.

These pin down the *relative* behaviour of the embedding family the
library ships: all models recover planted structure, the MF models are
deterministic, and the instrumented pipeline charges every model's
products.
"""

import numpy as np
import pytest

from repro.baselines.deepwalk import DeepWalkEmbedder, DeepWalkParams
from repro.eval import clustering_nmi, node_classification_accuracy
from repro.formats import edges_to_csdb, edges_to_csr
from repro.graphs import planted_partition_edges
from repro.prone import prone_embed, spectral_embed
from repro.prone.model import ProNEParams


@pytest.fixture(scope="module")
def community_graph():
    edges, labels = planted_partition_edges(
        500, 8000, n_communities=4, p_in=0.88, seed=12
    )
    return edges, labels


class TestAllModelsRecoverStructure:
    def test_prone(self, community_graph):
        edges, labels = community_graph
        emb = prone_embed(
            edges_to_csdb(edges, 500), ProNEParams(dim=16, order=8)
        )
        assert node_classification_accuracy(emb, labels, seed=0) > 0.7

    def test_spectral(self, community_graph):
        edges, labels = community_graph
        emb = spectral_embed(edges_to_csdb(edges, 500), dim=16)
        assert node_classification_accuracy(emb, labels, seed=0) > 0.6

    def test_deepwalk(self, community_graph):
        edges, labels = community_graph
        emb = DeepWalkEmbedder(
            DeepWalkParams(dim=16, walks_per_node=4, walk_length=15, epochs=2)
        ).embed(edges_to_csr(edges, 500))
        assert node_classification_accuracy(emb, labels, seed=0) > 0.5

    def test_clustering_agreement(self, community_graph):
        """Unsupervised clustering of ProNE embeddings matches labels."""
        edges, labels = community_graph
        emb = prone_embed(
            edges_to_csdb(edges, 500), ProNEParams(dim=16, order=8)
        )
        assert clustering_nmi(emb, labels, seed=0) > 0.4


class TestModelContracts:
    def test_mf_models_deterministic(self, community_graph):
        edges, _ = community_graph
        csdb = edges_to_csdb(edges, 500)
        assert np.array_equal(
            prone_embed(csdb, ProNEParams(dim=8, order=4, seed=3)),
            prone_embed(csdb, ProNEParams(dim=8, order=4, seed=3)),
        )
        assert np.array_equal(
            spectral_embed(csdb, dim=8, seed=3),
            spectral_embed(csdb, dim=8, seed=3),
        )

    def test_models_produce_distinct_embeddings(self, community_graph):
        edges, _ = community_graph
        csdb = edges_to_csdb(edges, 500)
        prone = prone_embed(csdb, ProNEParams(dim=8, order=4))
        spectral = spectral_embed(csdb, dim=8)
        assert not np.allclose(prone, spectral)

    def test_all_embeddings_unit_or_zero_norm(self, community_graph):
        edges, _ = community_graph
        csdb = edges_to_csdb(edges, 500)
        for emb in (
            prone_embed(csdb, ProNEParams(dim=8, order=4)),
            spectral_embed(csdb, dim=8),
        ):
            norms = np.linalg.norm(emb, axis=1)
            assert np.all(
                (np.abs(norms - 1.0) < 1e-9) | (norms < 1e-12)
            )
