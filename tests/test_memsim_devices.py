"""Unit tests for the device models and their paper-calibrated ratios."""

import pytest

from repro.memsim import (
    AccessPattern,
    Locality,
    MemoryKind,
    Operation,
    default_devices,
    dram_spec,
    network_spec,
    pm_spec,
    ssd_spec,
)
from repro.memsim.devices import GIB
from repro.memsim.probe import peak_bandwidth_summary


class TestCalibration:
    """The bandwidth asymmetries quoted in §II-B / §III-D / Fig. 9."""

    def test_pm_read_is_one_third_of_dram(self):
        key = (Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        ratio = dram_spec().peak_bandwidth[key] / pm_spec().peak_bandwidth[key]
        assert ratio == pytest.approx(3.0, rel=0.05)

    def test_pm_write_is_one_sixth_of_dram(self):
        key = (Operation.WRITE, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        ratio = dram_spec().peak_bandwidth[key] / pm_spec().peak_bandwidth[key]
        assert ratio == pytest.approx(6.0, rel=0.05)

    def test_fig9_read_ratios(self):
        summary = peak_bandwidth_summary(pm_spec())
        assert summary["seq_local_read_over_rand_local_read"] == pytest.approx(
            2.41, rel=0.01
        )
        assert summary[
            "seq_remote_read_over_rand_remote_read"
        ] == pytest.approx(2.45, rel=0.01)

    def test_fig9_write_ratios(self):
        summary = peak_bandwidth_summary(pm_spec())
        assert summary[
            "seq_local_write_over_seq_remote_write"
        ] == pytest.approx(3.23, rel=0.01)
        assert summary[
            "seq_local_write_over_rand_remote_write"
        ] == pytest.approx(4.99, rel=0.01)

    def test_remote_sequential_read_comparable_to_local(self):
        # The key NaDP observation: sequential PM reads are nearly
        # locality-insensitive.
        summary = peak_bandwidth_summary(pm_spec())
        assert 0.9 < summary["seq_remote_read_over_seq_local_read"] <= 1.0

    def test_pm_latency_multipliers(self):
        pm, dram = pm_spec(), dram_spec()
        local = pm.latency(Operation.READ, Locality.LOCAL) / dram.latency(
            Operation.READ, Locality.LOCAL
        )
        remote = pm.latency(Operation.READ, Locality.REMOTE) / dram.latency(
            Operation.READ, Locality.REMOTE
        )
        assert local == pytest.approx(4.2, rel=0.01)
        assert remote == pytest.approx(3.3, rel=0.01)

    def test_pm_cheaper_per_gib_than_dram(self):
        assert pm_spec().price_per_gib < dram_spec().price_per_gib

    def test_capacities(self):
        assert dram_spec().capacity_bytes == int(96 * GIB)
        assert pm_spec().capacity_bytes == int(768 * GIB)


class TestBandwidthCurve:
    def test_bandwidth_increases_with_threads(self):
        pm = pm_spec()
        args = (Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        bandwidths = [pm.bandwidth(*args, threads=t) for t in (1, 2, 4, 8, 16)]
        assert all(b2 > b1 for b1, b2 in zip(bandwidths, bandwidths[1:]))

    def test_bandwidth_never_exceeds_peak(self):
        pm = pm_spec()
        key = (Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        assert pm.bandwidth(*key, threads=1000) < pm.peak_bandwidth[key]

    def test_per_thread_bandwidth_decreases_with_contention(self):
        pm = pm_spec()
        args = (Operation.WRITE, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        per_thread = [
            pm.per_thread_bandwidth(*args, threads=t) for t in (1, 4, 16)
        ]
        assert per_thread[0] > per_thread[1] > per_thread[2]

    def test_pm_writes_saturate_earlier_than_reads(self):
        pm = pm_spec()
        assert (
            pm.half_saturation_threads[Operation.WRITE]
            > pm.half_saturation_threads[Operation.READ]
        )

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError, match="threads"):
            pm_spec().bandwidth(
                Operation.READ,
                AccessPattern.SEQUENTIAL,
                Locality.LOCAL,
                threads=0,
            )


class TestComplement:
    def test_default_devices_cover_all_tiers(self):
        devices = default_devices()
        assert set(devices) == set(MemoryKind)

    def test_ssd_page_granularity(self):
        assert ssd_spec().random_burst_bytes == 4096

    def test_network_has_no_capacity(self):
        assert network_spec().capacity_bytes == 0

    def test_ssd_latency_dwarfs_memory_latency(self):
        assert ssd_spec().latency(
            Operation.READ, Locality.LOCAL
        ) > 100 * pm_spec().latency(Operation.READ, Locality.LOCAL)
