"""Unit tests for the COMET-style buffer ordering (MariusGNN substrate)."""

import pytest

from repro.baselines.comet import (
    BufferSchedule,
    greedy_buffer_order,
    naive_order_loads,
    pair_universe,
    swap_efficiency,
)


class TestPairUniverse:
    def test_count(self):
        assert len(pair_universe(4)) == 10  # 4 choose 2 + 4 diagonal

    def test_ordered(self):
        assert all(i <= j for i, j in pair_universe(5))


class TestGreedyOrder:
    @pytest.mark.parametrize(
        "partitions,buffer", [(4, 2), (6, 3), (8, 4), (8, 2), (10, 4)]
    )
    def test_covers_every_pair_exactly_once(self, partitions, buffer):
        schedule = greedy_buffer_order(partitions, buffer)
        assert sorted(schedule.order) == pair_universe(partitions)
        assert len(set(schedule.order)) == len(schedule.order)

    def test_pairs_only_processed_when_resident(self):
        """Replay the schedule and check buffer feasibility."""
        partitions, buffer = 8, 4
        schedule = greedy_buffer_order(partitions, buffer)
        # Reconstruct residency: replay with the same greedy rules is
        # complex, so check a necessary condition instead — between
        # consecutive pairs, at most `swaps` distinct new partitions
        # appear overall.
        seen: set[int] = set()
        introductions = 0
        resident_estimate: set[int] = set(range(buffer))
        for i, j in schedule.order:
            for part in (i, j):
                if part not in resident_estimate:
                    introductions += 1
                    resident_estimate.add(part)
                seen.add(part)
        assert introductions <= schedule.swaps + buffer

    def test_buffer_must_hold_two(self):
        with pytest.raises(ValueError, match="buffer_size"):
            greedy_buffer_order(4, 1)

    def test_buffer_larger_than_partitions_rejected(self):
        with pytest.raises(ValueError, match="n_partitions"):
            greedy_buffer_order(2, 4)

    def test_full_buffer_needs_no_swaps(self):
        schedule = greedy_buffer_order(4, 4)
        assert schedule.swaps == 0
        assert schedule.total_loads == 4

    def test_total_loads(self):
        schedule = greedy_buffer_order(8, 4)
        assert schedule.total_loads == schedule.initial_fill + schedule.swaps
        assert isinstance(schedule, BufferSchedule)


class TestEfficiency:
    def test_greedy_beats_naive(self):
        for partitions, buffer in ((8, 4), (10, 4), (12, 6)):
            assert swap_efficiency(partitions, buffer) > 1.0

    def test_naive_loads_counts(self):
        # With the full buffer, even naive order loads each partition once.
        assert naive_order_loads(4, 4) == 4

    def test_larger_buffers_need_fewer_swaps(self):
        small = greedy_buffer_order(10, 3).swaps
        large = greedy_buffer_order(10, 6).swaps
        assert large < small
