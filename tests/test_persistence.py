"""Unit tests for the App-direct persistence facilities (§II-B)."""

import numpy as np
import pytest

from repro.core import OMeGaConfig, OMeGaEmbedder
from repro.graphs import chung_lu_edges
from repro.memsim import pm_spec
from repro.memsim.persistence import (
    CheckpointedEmbedder,
    CrashInjected,
    PersistenceDomain,
    ShadowCommit,
    StageCheckpointStore,
)


@pytest.fixture
def domain():
    return PersistenceDomain(device=pm_spec())


class TestPersistenceDomain:
    def test_stores_are_not_durable_until_flushed(self, domain):
        domain.store(1000)
        assert not domain.all_durable
        assert domain.durable_bytes == 0.0
        domain.flush()
        assert domain.all_durable
        assert domain.durable_bytes == 1000

    def test_flush_charges_pm_write_cost(self, domain):
        domain.store(2**20)
        cost = domain.flush()
        assert cost > 0
        assert domain.sim_seconds == pytest.approx(cost)

    def test_empty_flush_is_free(self, domain):
        assert domain.flush() == 0.0

    def test_fence_cost_and_count(self, domain):
        domain.fence()
        domain.fence()
        assert domain.fences == 2
        assert domain.sim_seconds == pytest.approx(2 * 30e-9)

    def test_negative_store_rejected(self, domain):
        with pytest.raises(ValueError, match="nbytes"):
            domain.store(-1)


class TestShadowCommit:
    def test_commit_and_recover(self, domain, rng):
        store = ShadowCommit(domain)
        data = rng.standard_normal((10, 4))
        seq = store.commit(data)
        assert seq == 1
        assert np.array_equal(store.recover(), data)

    def test_recover_before_any_commit(self, domain):
        assert ShadowCommit(domain).recover() is None

    def test_versions_alternate_buffers(self, domain, rng):
        store = ShadowCommit(domain)
        first = rng.standard_normal((5, 2))
        second = rng.standard_normal((5, 2))
        store.commit(first)
        store.commit(second)
        assert np.array_equal(store.recover(), second)
        assert store.committed_sequence == 2

    def test_crash_preserves_previous_version(self, domain, rng):
        store = ShadowCommit(domain)
        safe = rng.standard_normal((8, 3))
        store.commit(safe)
        with pytest.raises(CrashInjected):
            store.commit(rng.standard_normal((8, 3)), crash=True)
        # Recovery sees the pre-crash version, untouched.
        assert np.array_equal(store.recover(), safe)
        assert store.committed_sequence == 1

    def test_crash_on_first_commit_recovers_nothing(self, domain, rng):
        store = ShadowCommit(domain)
        with pytest.raises(CrashInjected):
            store.commit(rng.standard_normal((4, 2)), crash=True)
        assert store.recover() is None

    def test_commit_copies_data(self, domain):
        store = ShadowCommit(domain)
        data = np.ones((3, 3))
        store.commit(data)
        data[:] = 0.0
        assert np.all(store.recover() == 1.0)

    def test_commit_charges_flush_and_fences(self, domain, rng):
        store = ShadowCommit(domain)
        store.commit(rng.standard_normal((100, 8)))
        assert domain.fences == 2  # data fence + commit-record fence
        assert domain.sim_seconds > 0


class TestCheckpointedEmbedder:
    @pytest.fixture(scope="class")
    def setup(self):
        edges = chung_lu_edges(300, 2500, seed=9)
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=4, dim=8))
        return edges, CheckpointedEmbedder(embedder)

    def test_embed_and_checkpoint(self, setup):
        edges, checkpointed = setup
        result, checkpoint_seconds = checkpointed.embed_and_checkpoint(
            edges, 300
        )
        assert checkpoint_seconds > 0
        assert np.array_equal(
            checkpointed.recover_embedding(), result.embedding
        )
        # Checkpointing is cheap relative to the pipeline itself.
        assert checkpoint_seconds < result.sim_seconds

    def test_crash_keeps_previous_checkpoint(self, setup):
        edges, checkpointed = setup
        result, _ = checkpointed.embed_and_checkpoint(edges, 300)
        with pytest.raises(CrashInjected):
            checkpointed.embed_and_checkpoint(edges, 300, crash=True)
        assert np.array_equal(
            checkpointed.recover_embedding(), result.embedding
        )

    def test_crash_keeps_computed_result_in_memory(self, setup):
        edges, checkpointed = setup
        with pytest.raises(CrashInjected):
            checkpointed.embed_and_checkpoint(edges, 300, crash=True)
        # The pipeline's output survived the commit crash in memory.
        assert checkpointed.last_result is not None
        assert checkpointed.last_result.embedding.shape == (300, 8)

    def test_retry_checkpoint_commits_without_recompute(self, setup):
        edges, checkpointed = setup
        with pytest.raises(CrashInjected):
            checkpointed.embed_and_checkpoint(edges, 300, crash=True)
        crashed = checkpointed.last_result
        result, retry_seconds = checkpointed.retry_checkpoint()
        assert result is crashed  # same object: nothing recomputed
        assert retry_seconds > 0
        assert np.array_equal(
            checkpointed.recover_embedding(), result.embedding
        )

    def test_retry_checkpoint_before_any_run_rejected(self):
        from repro.core import OMeGaConfig, OMeGaEmbedder

        fresh = CheckpointedEmbedder(
            OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=8))
        )
        with pytest.raises(RuntimeError, match="no embedding computed"):
            fresh.retry_checkpoint()


class TestStageCheckpointStore:
    def test_append_and_last(self, domain, rng):
        store = StageCheckpointStore(domain)
        first = rng.standard_normal((6, 4))
        store.append("graph_read", {}, {"read_seconds": 1.0})
        seq = store.append("factorization", {"initial": first}, {"x": 2})
        assert seq == 2
        record = store.last()
        assert record.stage == "factorization"
        assert np.array_equal(record.arrays["initial"], first)
        assert store.stages == ["graph_read", "factorization"]

    def test_append_copies_arrays(self, domain):
        store = StageCheckpointStore(domain)
        data = np.ones((3, 2))
        store.append("factorization", {"initial": data}, {})
        data[:] = 0.0
        assert np.all(store.last().arrays["initial"] == 1.0)

    def test_crash_loses_only_pending_record(self, domain, rng):
        store = StageCheckpointStore(domain)
        store.append("graph_read", {}, {})
        with pytest.raises(CrashInjected) as err:
            store.append(
                "factorization",
                {"initial": rng.standard_normal((4, 2))},
                {},
                crash=True,
            )
        assert err.value.site == "factorization"
        assert err.value.phase == "before_commit"
        assert store.stages == ["graph_read"]

    def test_append_charges_flush_and_fences(self, domain, rng):
        store = StageCheckpointStore(domain)
        store.append(
            "factorization", {"initial": rng.standard_normal((50, 8))}, {}
        )
        assert domain.fences == 2  # payload fence + commit-record fence
        assert domain.sim_seconds > 0

    def test_clear_truncates(self, domain):
        store = StageCheckpointStore(domain)
        store.append("graph_read", {}, {})
        store.clear()
        assert store.last() is None
        assert store.stages == []
