"""Concurrent multi-writer streams and forensic-span merge semantics.

Two real writer processes append sibling streams (``<stream>.w<n>``)
while the coordinator stream carries copies of some of their records —
the double-delivery shape of the live bus, where a worker's payload
travels both over the result queue (re-emitted by the coordinator) and
through the worker's own crash-tolerant file.  ``merge_streams`` must
count every forensic span exactly once: duplicates collapse on the
top-level ``uid``, worker-only orphans (the coordinator died first)
are grafted in, and nothing is dropped.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.obs.forensics import FORENSIC_RECORD_TYPE, fold_stream
from repro.obs.live import (
    StreamFollower,
    TelemetryStream,
    merge_streams,
    worker_stream_paths,
)

N_TREES = 12


def _tree_records(worker: int, i: int) -> list[dict]:
    """One deterministic two-node request tree (root + kernel child)."""
    trace_id = f"req-w{worker}-{i:04d}"
    root_uid = f"w{worker}-{i}-root"
    return [
        {
            "type": FORENSIC_RECORD_TYPE,
            "trace_id": trace_id,
            "uid": root_uid,
            "parent_uid": None,
            "name": "request",
            "category": None,
            "sim_start": float(i),
            "sim_seconds": 0.5,
            "attributes": {
                "request_id": trace_id,
                "klass": "interactive",
                "status": "served",
                "arrival_s": float(i),
                "deadline_s": 1.0,
                "blame": {"kernel": 0.5},
                "lookup_seqs": [],
            },
        },
        {
            "type": FORENSIC_RECORD_TYPE,
            "trace_id": trace_id,
            "uid": f"w{worker}-{i}-kernel",
            "parent_uid": root_uid,
            "name": "kernel",
            "category": "kernel",
            "sim_start": float(i),
            "sim_seconds": 0.5,
            "attributes": {},
        },
    ]


def _writer(base_path: str, worker: int) -> None:
    """Worker process: append one sibling stream, a tree at a time."""
    with TelemetryStream(
        f"{base_path}.w{worker}", flush_every=1, role="worker"
    ) as stream:
        for i in range(N_TREES):
            for record in _tree_records(worker, i):
                stream.emit(record)
            time.sleep(0.001)
        stream.emit({"type": "stream_closed"})


@pytest.fixture
def concurrent_streams(tmp_path):
    """Coordinator stream + two live worker siblings, written concurrently.

    The coordinator re-emits the even-numbered trees of both workers
    (the result-queue copies) while the workers are still appending
    their own files — so every even tree exists twice on disk.
    """
    base = tmp_path / "serve.live.jsonl"
    ctx = multiprocessing.get_context("spawn")
    workers = [
        ctx.Process(target=_writer, args=(str(base), w)) for w in (1, 2)
    ]
    with TelemetryStream(base, flush_every=1) as coordinator:
        for proc in workers:
            proc.start()
        for worker in (1, 2):
            for i in range(0, N_TREES, 2):
                for record in _tree_records(worker, i):
                    coordinator.emit(record)
        for proc in workers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        coordinator.emit({"type": "stream_closed"})
    return base


class TestConcurrentWriters:
    def test_merge_never_drops_or_duplicates_forensic_spans(
        self, concurrent_streams
    ):
        assert len(worker_stream_paths(concurrent_streams)) == 2
        merged = merge_streams(concurrent_streams)
        forensic = [
            r for r in merged if r.get("type") == FORENSIC_RECORD_TYPE
        ]
        uids = [r["uid"] for r in forensic]
        assert len(uids) == len(set(uids)), "duplicated forensic span"
        expected = {
            f"w{worker}-{i}-{node}"
            for worker in (1, 2)
            for i in range(N_TREES)
            for node in ("root", "kernel")
        }
        assert set(uids) == expected, "dropped forensic span"

    def test_merged_trees_fold_and_verify(self, concurrent_streams):
        report = fold_stream(merge_streams(concurrent_streams))
        assert report.n_requests == 2 * N_TREES
        assert report.verify() == []
        # Every tree kept both its nodes through the merge.
        for summary in report.summaries.values():
            assert summary["blame"] == {"kernel": 0.5}

    def test_follower_tails_a_live_worker_sibling(self, tmp_path):
        base = tmp_path / "serve.live.jsonl"
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_writer, args=(str(base), 1))
        proc.start()
        follower = StreamFollower(f"{base}.w1")
        deadline = time.monotonic() + 30
        while not follower.closed and time.monotonic() < deadline:
            follower.poll()
            time.sleep(0.005)
        proc.join(timeout=30)
        assert proc.exitcode == 0
        follower.poll()
        assert follower.closed
        forensic = [
            r
            for r in follower.records
            if r.get("type") == FORENSIC_RECORD_TYPE
        ]
        # Incremental polling reassembled every record the worker wrote,
        # without duplication, despite racing the writer.
        assert len(forensic) == 2 * N_TREES
        assert len({r["uid"] for r in forensic}) == 2 * N_TREES
