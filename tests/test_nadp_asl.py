"""Unit tests for NaDP placements (§III-D) and ASL streaming (§III-E)."""

import pytest

from repro.core import (
    InterleavePlacement,
    LocalPlacement,
    NaDPPlacement,
    PlacementScheme,
    StreamingLoader,
    make_placement,
    optimal_partitions,
)
from repro.memsim import NumaTopology


@pytest.fixture
def topology():
    return NumaTopology(n_sockets=2)


class TestNaDP:
    def test_global_sequential_read_local_write(self, topology):
        """The NaDP principle: reads may be remote (sequential), writes
        and dense gathers are fully local."""
        plan = NaDPPlacement(topology).access_plan(0)
        assert plan.sparse_local_fraction == pytest.approx(0.5)
        assert plan.dense_local_fraction == 1.0
        assert plan.write_local_fraction == 1.0

    def test_merge_fraction(self, topology):
        plan = NaDPPlacement(topology).access_plan(1)
        assert plan.merge_remote_write_fraction == pytest.approx(0.5)

    def test_four_sockets(self):
        plan = NaDPPlacement(NumaTopology(n_sockets=4)).access_plan(2)
        assert plan.sparse_local_fraction == pytest.approx(0.25)
        assert plan.merge_remote_write_fraction == pytest.approx(0.75)


class TestOSPolicies:
    def test_interleave_splits_everything(self, topology):
        plan = InterleavePlacement(topology).access_plan(0)
        assert plan.dense_local_fraction == pytest.approx(0.5)
        assert plan.write_local_fraction == pytest.approx(0.5)
        assert plan.merge_remote_write_fraction == 0.0

    def test_local_policy_starves_remote_socket(self, topology):
        placement = LocalPlacement(topology)
        assert placement.access_plan(0).write_local_fraction == 1.0
        assert placement.access_plan(1).write_local_fraction == 0.0

    def test_factory(self, topology):
        assert isinstance(
            make_placement(PlacementScheme.NADP, topology), NaDPPlacement
        )
        assert isinstance(
            make_placement("interleave", topology), InterleavePlacement
        )
        assert isinstance(make_placement("local", topology), LocalPlacement)

    def test_access_plan_validation(self):
        from repro.core.nadp import AccessPlan

        with pytest.raises(ValueError, match="dense_local_fraction"):
            AccessPlan(
                sparse_local_fraction=0.5,
                dense_local_fraction=1.5,
                write_local_fraction=1.0,
            )


class TestOptimalPartitions:
    """Eq. 9 of the paper."""

    def test_plenty_of_dram_needs_one_partition(self):
        n = optimal_partitions(
            n_nodes=1000, dim=32, dram_budget_bytes=1e9, sparse_bytes=1e5
        )
        assert n == 1

    def test_tight_dram_needs_more_partitions(self):
        dense = 1000 * 32 * 8
        budget = 1e5 + 2 * dense + dense  # room for ~1/3 of a batch set
        n = optimal_partitions(
            n_nodes=1000, dim=32, dram_budget_bytes=budget, sparse_bytes=1e5
        )
        assert n >= 3

    def test_eq9_formula(self):
        n_nodes, dim, itemsize = 10_000, 64, 8
        sparse = 1e6
        dense = dim * n_nodes * itemsize
        budget = sparse + 2 * dense + dense / 2
        expected = -(-int(3 * dense) // int(budget - sparse - 2 * dense))
        got = optimal_partitions(n_nodes, dim, budget, sparse)
        assert got == min(max(expected, 1), dim)

    def test_degenerate_budget_splits_per_column(self):
        n = optimal_partitions(
            n_nodes=1000, dim=16, dram_budget_bytes=10.0, sparse_bytes=1e6
        )
        assert n == 16

    def test_zero_budget(self):
        assert optimal_partitions(1000, 16, 0.0, 0.0) == 16

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="n_nodes"):
            optimal_partitions(0, 16, 1e9, 0.0)


class TestStreamPlan:
    def test_total_load_time(self):
        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        plan = loader.plan(
            n_nodes=1000, dim=32, dram_budget_bytes=1e9, sparse_bytes=0.0
        )
        dense_bytes = 1000 * 32 * 8
        assert plan.total_load_seconds == pytest.approx(dense_bytes / 1e9)
        assert plan.batch_bytes == pytest.approx(dense_bytes / plan.n_partitions)

    def test_exposed_fully_hidden_when_compute_dominates(self):
        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        plan = loader.plan(1000, 32, 3e5, 0.0)
        assert plan.n_partitions > 1
        # Compute far larger than the load: only the first batch shows.
        exposed = plan.exposed_seconds(compute_seconds=10.0)
        assert exposed == pytest.approx(
            plan.total_load_seconds / plan.n_partitions
        )

    def test_exposed_when_load_dominates(self):
        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        plan = loader.plan(100_000, 32, 3e6, 0.0)
        compute = plan.total_load_seconds / 100
        exposed = plan.exposed_seconds(compute)
        n = plan.n_partitions
        assert exposed == pytest.approx(
            plan.total_load_seconds - compute / n * (n - 1)
        )

    def test_single_partition_never_overlaps(self):
        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        plan = loader.plan(1000, 32, 1e12, 0.0)
        assert plan.n_partitions == 1
        assert plan.exposed_seconds(100.0) == plan.total_load_seconds

    def test_exposed_monotone_in_partitions(self):
        """More batches -> more overlap -> less exposed time."""
        from repro.core.asl import StreamPlan

        load = 1.0
        exposed = [
            StreamPlan(
                n_partitions=n, batch_bytes=1.0, total_load_seconds=load
            ).exposed_seconds(0.5)
            for n in (1, 2, 4, 8)
        ]
        assert all(e2 <= e1 for e1, e2 in zip(exposed, exposed[1:]))

    def test_negative_compute_rejected(self):
        from repro.core.asl import StreamPlan

        plan = StreamPlan(2, 1.0, 1.0)
        with pytest.raises(ValueError, match="compute_seconds"):
            plan.exposed_seconds(-1.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            StreamingLoader(0.0)


class TestRetryJitter:
    """Full-jitter backoff: seeded, bounded, and off by default."""

    def _policy(self, **overrides):
        from repro.core.asl import RetryPolicy

        overrides.setdefault("jitter", "full")
        overrides.setdefault("jitter_seed", 11)
        return RetryPolicy(
            max_retries=5, base_delay_seconds=1e-3, **overrides
        )

    def test_default_is_pure_exponential(self):
        from repro.core.asl import DEFAULT_RETRY_POLICY, RetryPolicy

        policy = RetryPolicy(base_delay_seconds=1e-3, multiplier=2.0)
        assert policy.jitter == "none"
        assert [policy.delay(a) for a in range(3)] == [1e-3, 2e-3, 4e-3]
        assert DEFAULT_RETRY_POLICY.jitter == "none"

    def test_full_jitter_bounded_by_exponential_cap(self):
        policy = self._policy()
        for attempt in range(6):
            cap = 1e-3 * 2.0**attempt
            assert 0.0 <= policy.delay(attempt) <= cap

    def test_seeded_sequence_replayable(self):
        one = [self._policy().delay(a) for a in range(6)]
        two = [self._policy().delay(a) for a in range(6)]
        assert one == two
        # Different seeds decorrelate the retry storm.
        other = [self._policy(jitter_seed=12).delay(a) for a in range(6)]
        assert one != other

    def test_jitter_mode_validated(self):
        from repro.core.asl import RetryPolicy

        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter="equal")

    def test_retry_delay_histogram_recorded(self):
        from repro.core.asl import RetryPolicy, StreamPlan
        from repro.faults import ASL_LOAD_SITE, FaultEvent, FaultInjector, FaultPlan
        from repro.obs.metrics import MetricsRegistry

        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        faults = FaultInjector(
            FaultPlan(
                events=(
                    FaultEvent("transient_load", ASL_LOAD_SITE, count=2),
                )
            )
        )
        metrics = MetricsRegistry()
        policy = RetryPolicy(
            max_retries=3,
            base_delay_seconds=1e-3,
            jitter="full",
            jitter_seed=11,
        )
        plan = StreamPlan(
            n_partitions=4, batch_bytes=1024.0, total_load_seconds=0.4
        )
        outcome = loader.load(
            plan, 0.4, metrics=metrics, faults=faults, retry=policy
        )
        assert outcome.attempts == 3
        histogram = metrics.histogram("asl.retry_delay", jitter="full")
        assert histogram.count == 2
        # The recorded delays are exactly the seeded replay.
        twin = RetryPolicy(
            max_retries=3,
            base_delay_seconds=1e-3,
            jitter="full",
            jitter_seed=11,
        )
        assert histogram.sum == pytest.approx(twin.delay(0) + twin.delay(1))
