"""Tests for the resilient embedding server (`repro.serve`).

Covers the circuit-breaker state machine, serving policies, trace
synthesis/round-trips, the degradation ladder, liveness/readiness
probes, and — as a hypothesis property — the accounting invariant that
every submitted request resolves to exactly one terminal status, under
arbitrary seeded traces and fault plans.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import OMeGaConfig, OMeGaEmbedder
from repro.faults import (
    ARRIVAL_SITE,
    BACKEND_SITE,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.graphs import chung_lu_edges
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    EmbeddingBackend,
    EmbeddingServer,
    RequestTrace,
    ServePolicy,
    ServeRequest,
)
from repro.serve.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from repro.serve.server import (
    RESPONSE_STATUSES,
    STATUS_DEADLINE,
    STATUS_SERVED,
    STATUS_SHED,
)

N_NODES = 150

#: One warmed backend shared by the whole module (warmup runs the full
#: pipeline, so building it per test would dominate the suite).
_BACKEND = None


def shared_backend() -> EmbeddingBackend:
    global _BACKEND
    if _BACKEND is None:
        edges = chung_lu_edges(N_NODES, 900, seed=3)
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=8))
        _BACKEND = EmbeddingBackend(embedder, edges, N_NODES)
        _BACKEND.warm_up()
    return _BACKEND


@pytest.fixture(scope="module")
def backend() -> EmbeddingBackend:
    return shared_backend()


def calibrated_policy(backend, **overrides) -> ServePolicy:
    return ServePolicy.calibrated(
        backend.compute_cost(1) * 8.5, **overrides
    )


# -- circuit breaker ------------------------------------------------------


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_breaker(**policy_kwargs):
    clock = ManualClock()
    policy = BreakerPolicy(
        failure_threshold=3, recovery_seconds=1.0, half_open_probes=2,
        **policy_kwargs,
    )
    return CircuitBreaker(policy, clock=clock), clock


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        assert breaker.trips == 0

    def test_trips_after_consecutive_failures(self):
        breaker, _ = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker, _ = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_check_raises_with_retry_hint(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 0.25
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.retry_after_s == pytest.approx(0.75)

    def test_half_open_after_recovery_window(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 0.99
        assert breaker.state == STATE_OPEN
        clock.now = 1.0
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow()

    def test_probe_successes_close(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 1.5
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.trips == 1

    def test_probe_failure_reopens(self):
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 1.5
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2

    def test_rejections_are_counted(self):
        metrics = MetricsRegistry()
        clock = ManualClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1), clock=clock, metrics=metrics
        )
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert (
            metrics.value("serve.breaker.rejections", breaker="backend") == 2
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(failure_threshold=0),
            dict(recovery_seconds=0.0),
            dict(half_open_probes=0),
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


# -- policies -------------------------------------------------------------


class TestServePolicy:
    def test_calibrated_scales_time_knobs(self):
        policy = ServePolicy.calibrated(1e-4)
        assert policy.stall_budget_s == pytest.approx(5e-3)
        assert policy.breaker.recovery_seconds == pytest.approx(2e-2)

    def test_calibrated_explicit_override_wins(self):
        policy = ServePolicy.calibrated(1e-4, stall_budget_s=1.0)
        assert policy.stall_budget_s == 1.0

    def test_calibrated_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            ServePolicy.calibrated(0.0)

    def test_unknown_class_gets_interactive_ladder(self):
        policy = ServePolicy()
        assert policy.ladder_for("mystery") == policy.ladder_for("interactive")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(queue_limit=0),
            dict(stall_budget_s=0.0),
            dict(ladders={"interactive": ()}),
            dict(ladders={"interactive": ("fresh-ish",)}),
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServePolicy(**kwargs)


# -- traces ---------------------------------------------------------------


class TestRequestTrace:
    def test_synthesize_is_deterministic(self):
        a = RequestTrace.synthesize(seed=5, n_requests=40)
        b = RequestTrace.synthesize(seed=5, n_requests=40)
        assert a == b
        assert len(a) == 40

    def test_requests_sorted_by_arrival(self):
        trace = RequestTrace(
            requests=(
                ServeRequest("b", 2.0, "interactive", 4, 1.0),
                ServeRequest("a", 1.0, "batch", 32, 1.0),
            )
        )
        assert [r.request_id for r in trace.requests] == ["a", "b"]

    def test_round_trip(self, tmp_path):
        trace = RequestTrace.synthesize(seed=9, n_requests=25)
        path = trace.save(tmp_path / "trace.json")
        assert RequestTrace.load(path) == trace

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(klass="best_effort"),
            dict(arrival_s=-1.0),
            dict(n_nodes=0),
            dict(deadline_s=0.0),
        ],
    )
    def test_request_validation(self, kwargs):
        base = dict(
            request_id="r0", arrival_s=0.0, klass="interactive",
            n_nodes=4, deadline_s=1.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            ServeRequest(**base)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(load=0.0),
            dict(per_node_cost_s=0.0),
            dict(interactive_fraction=1.5),
            dict(max_batch_nodes=8),
        ],
    )
    def test_synthesize_validation(self, kwargs):
        with pytest.raises(ValueError):
            RequestTrace.synthesize(seed=0, n_requests=5, **kwargs)


# -- the server -----------------------------------------------------------


class TestEmbeddingServer:
    def test_cold_backend_not_ready(self):
        edges = chung_lu_edges(60, 300, seed=1)
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=8))
        cold = EmbeddingBackend(embedder, edges, 60)
        server = EmbeddingServer(cold)
        assert not server.readyz()["ready"]
        assert server.healthz()["healthy"]  # alive, just not warm

    def test_fault_free_trace_all_served(self, backend):
        trace = RequestTrace.synthesize(
            seed=11, n_requests=60,
            per_node_cost_s=backend.compute_cost(1), load=0.5,
        )
        server = EmbeddingServer(backend, calibrated_policy(backend))
        report = server.run_trace(trace)
        assert report.balanced
        assert report.submitted == 60
        assert report.served + report.deadline_exceeded == 60
        assert report.served > 0
        assert server.healthz()["healthy"]
        assert server.readyz()["ready"]

    def test_queue_overflow_sheds_typed(self, backend):
        burst = tuple(
            ServeRequest(f"r{i}", 0.0, "interactive", 4, 10.0)
            for i in range(8)
        )
        policy = calibrated_policy(backend, queue_limit=2)
        server = EmbeddingServer(backend, policy)
        report = server.run_trace(RequestTrace(requests=burst))
        assert report.balanced
        assert report.shed > 0
        shed = [r for r in report.responses if r.status == STATUS_SHED]
        assert all(r.error == "QueueFullError" for r in shed)

    def test_shedding_disabled_queues_everything(self, backend):
        burst = tuple(
            ServeRequest(f"r{i}", 0.0, "interactive", 4, 10.0)
            for i in range(8)
        )
        policy = calibrated_policy(
            backend, queue_limit=2, shedding_enabled=False
        )
        report = EmbeddingServer(backend, policy).run_trace(
            RequestTrace(requests=burst)
        )
        assert report.balanced
        assert report.shed == 0

    def test_impossible_deadline_degrades_or_misses(self, backend):
        # A deadline below even the cached-tier cost: the server must
        # still account for the request (deadline_exceeded), never hang.
        request = ServeRequest("r0", 0.0, "interactive", 64, 1e-12)
        report = EmbeddingServer(
            backend, calibrated_policy(backend)
        ).run_trace(RequestTrace(requests=(request,)))
        assert report.balanced
        assert report.deadline_exceeded == 1
        assert report.responses[0].error == "DeadlineExceededError"

    def test_stalls_trip_breaker_and_degrade(self, backend):
        stall_budget = calibrated_policy(backend).stall_budget_s
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="backend_stall", site=BACKEND_SITE, count=6,
                    seconds=10.0 * stall_budget,
                ),
            )
        )
        injector = FaultInjector(plan, MetricsRegistry())
        backend.faults = injector
        try:
            policy = calibrated_policy(
                backend, breaker=BreakerPolicy(failure_threshold=2)
            )
            trace = RequestTrace.synthesize(
                seed=2, n_requests=80,
                per_node_cost_s=backend.compute_cost(1), load=0.5,
            )
            server = EmbeddingServer(backend, policy, faults=injector)
            report = server.run_trace(trace)
        finally:
            backend.faults = None
        assert report.balanced
        assert server.breaker.trips > 0
        assert "stale" in report.fidelity_counts()
        assert server.healthz()["unhandled_exceptions"] == 0

    def test_request_burst_inflates_submitted(self, backend):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    kind="request_burst", site=ARRIVAL_SITE, count=5
                ),
            )
        )
        injector = FaultInjector(plan, MetricsRegistry())
        trace = RequestTrace.synthesize(
            seed=4, n_requests=20,
            per_node_cost_s=backend.compute_cost(1), load=0.5,
        )
        server = EmbeddingServer(
            backend, calibrated_policy(backend), faults=injector
        )
        report = server.run_trace(trace)
        assert report.submitted == 25
        assert report.balanced

    def test_replay_is_deterministic(self, backend):
        trace = RequestTrace.synthesize(
            seed=6, n_requests=40,
            per_node_cost_s=backend.compute_cost(1), load=1.2,
        )
        outcomes = []
        for _ in range(2):
            report = EmbeddingServer(
                backend, calibrated_policy(backend)
            ).run_trace(trace)
            outcomes.append(
                [(r.request_id, r.status, r.fidelity) for r in report.responses]
            )
        assert outcomes[0] == outcomes[1]


# -- the accounting invariant (property) ----------------------------------


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    trace_seed=st.integers(0, 10_000),
    n_requests=st.integers(1, 60),
    load=st.floats(0.2, 3.0),
    fault_seed=st.integers(0, 10_000),
)
def test_every_request_is_accounted(trace_seed, n_requests, load, fault_seed):
    """shed + served + deadline-exceeded (+ failed) == submitted,
    for arbitrary seeded traces and serve fault plans."""
    backend = shared_backend()
    trace = RequestTrace.synthesize(
        seed=trace_seed, n_requests=n_requests,
        per_node_cost_s=backend.compute_cost(1), load=load,
    )
    plan = FaultPlan.random_serve(seed=fault_seed)
    injector = FaultInjector(plan, MetricsRegistry())
    backend.faults = injector
    try:
        server = EmbeddingServer(
            backend, calibrated_policy(backend), faults=injector
        )
        report = server.run_trace(trace)
    finally:
        backend.faults = None
    assert report.balanced
    assert report.submitted >= n_requests
    assert {r.status for r in report.responses} <= set(RESPONSE_STATUSES)
    # The default ladders end in the always-available cached tier, so
    # nothing can fail outright.
    assert report.failed == 0
    completed = [
        r for r in report.responses
        if r.status in (STATUS_SERVED, STATUS_DEADLINE)
    ]
    assert all(
        r.latency_s is None or r.latency_s >= 0 for r in completed
    )
