"""Unit tests for matrix serialization."""

import numpy as np
import pytest

from repro.formats.serialize import (
    ContainerFormatError,
    load_csdb,
    load_csr,
    save_csdb,
    save_csr,
)


class TestCSDBRoundtrip:
    def test_roundtrip(self, tmp_path, skewed_csdb):
        path = tmp_path / "graph.npz"
        save_csdb(path, skewed_csdb)
        loaded = load_csdb(path)
        assert loaded.shape == skewed_csdb.shape
        assert np.array_equal(loaded.deg_list, skewed_csdb.deg_list)
        assert np.array_equal(loaded.col_list, skewed_csdb.col_list)
        assert np.array_equal(loaded.perm, skewed_csdb.perm)
        assert np.allclose(loaded.to_dense(), skewed_csdb.to_dense())

    def test_loaded_matrix_is_functional(self, tmp_path, skewed_csdb, rng):
        path = tmp_path / "graph.npz"
        save_csdb(path, skewed_csdb)
        loaded = load_csdb(path)
        dense = rng.standard_normal((skewed_csdb.n_cols, 4))
        assert np.allclose(loaded.spmm(dense), skewed_csdb.spmm(dense))


class TestCSRRoundtrip:
    def test_roundtrip(self, tmp_path, skewed_csr):
        path = tmp_path / "graph.npz"
        save_csr(path, skewed_csr)
        loaded = load_csr(path)
        assert np.allclose(loaded.to_dense(), skewed_csr.to_dense())


class TestValidation:
    def test_kind_mismatch(self, tmp_path, skewed_csdb):
        path = tmp_path / "graph.npz"
        save_csdb(path, skewed_csdb)
        with pytest.raises(ValueError, match="expected 'csr'"):
            load_csr(path)

    def test_not_a_container(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro matrix"):
            load_csdb(path)

    def test_future_version_rejected(self, tmp_path, paper_csdb):
        path = tmp_path / "graph.npz"
        np.savez(
            path,
            kind=np.array(["csdb"]),
            version=np.array([999]),
            shape=np.array([1, 1]),
        )
        with pytest.raises(ValueError, match="newer"):
            load_csdb(path)

    def test_errors_are_typed(self, tmp_path, skewed_csdb):
        path = tmp_path / "graph.npz"
        save_csdb(path, skewed_csdb)
        with pytest.raises(ContainerFormatError):
            load_csr(path)

    def test_truncated_blob(self, tmp_path, skewed_csdb):
        path = tmp_path / "graph.npz"
        save_csdb(path, skewed_csdb)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(ContainerFormatError, match="not a readable"):
            load_csdb(path)

    def test_garbage_blob(self, tmp_path):
        path = tmp_path / "graph.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ContainerFormatError):
            load_csdb(path)

    def test_missing_arrays(self, tmp_path):
        path = tmp_path / "graph.npz"
        np.savez(
            path,
            kind=np.array(["csdb"]),
            version=np.array([1]),
            shape=np.array([1, 1]),
        )
        with pytest.raises(ContainerFormatError, match="missing arrays"):
            load_csdb(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_csdb(tmp_path / "absent.npz")
