"""Unit tests for the benchmark harness helpers."""

import numpy as np
import pytest

from repro.bench import (
    format_seconds,
    format_table,
    geometric_mean,
    project_full_scale,
)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_skips_nans(self):
        assert geometric_mean([2.0, float("nan"), 8.0]) == pytest.approx(4.0)

    def test_all_invalid(self):
        assert np.isnan(geometric_mean([float("nan"), -1.0]))


class TestProjection:
    def test_multiplies_by_scale(self):
        assert project_full_scale(2.0, 512) == 1024.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            project_full_scale(1.0, 0)


class TestFormatting:
    def test_format_seconds_ranges(self):
        assert format_seconds(2 * 3600) == "2.00 h"
        assert format_seconds(120) == "2.00 min"
        assert format_seconds(1.5) == "1.50 s"
        assert format_seconds(0.002) == "2.00 ms"
        assert format_seconds(2e-6) == "2.0 us"

    def test_format_seconds_oom(self):
        assert format_seconds(float("nan")) == "OOM"

    def test_format_table_alignment(self):
        table = format_table(
            ["graph", "time"],
            [["PK", "1.0 s"], ["TW-2010", "3.0 s"]],
            title="Demo",
        )
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "graph" in lines[1]
        assert lines[2].startswith("-")
        assert "TW-2010" in table

    def test_format_table_empty(self):
        table = format_table(["a"], [])
        assert "a" in table
