"""Miscellaneous cross-module invariants and smoke checks."""

import py_compile
from pathlib import Path

import numpy as np
import pytest

from repro.formats import CSDBMatrix
from repro.memsim import (
    AccessPattern,
    Locality,
    Operation,
    cxl_spec,
    dram_spec,
    pm_spec,
    ssd_spec,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestRepoHygiene:
    def test_examples_compile(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_benchmarks_compile(self):
        benches = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))
        # One bench per evaluated table/figure plus ablations/extensions.
        assert len(benches) >= 15
        for path in benches:
            py_compile.compile(str(path), doraise=True)

    def test_docs_exist_and_nonempty(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / name
            assert path.exists(), name
            assert len(path.read_text()) > 1000, name

    def test_public_api_surface(self):
        import repro

        for symbol in repro.__all__:
            assert getattr(repro, symbol, None) is not None, symbol


class TestCSDBPointerConsistency:
    def test_row_ptr_equals_nnz_prefix_everywhere(self, skewed_csdb):
        prefix = skewed_csdb.nnz_prefix()
        for row in range(0, skewed_csdb.n_rows + 1, 7):
            assert skewed_csdb.row_ptr(row) == prefix[row]

    def test_block_ptr_monotone_and_terminal(self, skewed_csdb):
        assert np.all(np.diff(skewed_csdb.block_ptr) >= 0)
        assert skewed_csdb.block_ptr[-1] == skewed_csdb.nnz

    def test_degree_of_row_matches_expanded(self, skewed_csdb):
        expanded = skewed_csdb.row_degrees()
        for row in range(0, skewed_csdb.n_rows, 13):
            assert skewed_csdb.degree_of_row(row) == expanded[row]


class TestDeviceHierarchy:
    """The tier ordering every textbook (and the paper) assumes."""

    def test_sequential_read_bandwidth_ordering(self):
        key = (Operation.READ, AccessPattern.SEQUENTIAL, Locality.LOCAL)
        dram = dram_spec().peak_bandwidth[key]
        pm = pm_spec().peak_bandwidth[key]
        cxl = cxl_spec().peak_bandwidth[key]
        ssd = ssd_spec().peak_bandwidth[key]
        assert dram > pm > ssd
        assert dram > cxl > ssd

    def test_latency_ordering(self):
        args = (Operation.READ, Locality.LOCAL)
        assert (
            dram_spec().latency(*args)
            < cxl_spec().latency(*args)
            < pm_spec().latency(*args)
            < ssd_spec().latency(*args)
        )

    def test_capacity_ordering(self):
        assert (
            dram_spec().capacity_bytes
            < pm_spec().capacity_bytes
            <= ssd_spec().capacity_bytes
        )

    def test_price_ordering(self):
        assert (
            dram_spec().price_per_gib
            > pm_spec().price_per_gib
            > ssd_spec().price_per_gib
        )


class TestEmptyMatrixOperators:
    def test_empty_everything(self):
        empty = CSDBMatrix.from_coo([], [], [], (6, 6))
        assert empty.transpose().nnz == 0
        assert (empty + empty).nnz == 0
        assert empty.scale(5.0).nnz == 0
        assert np.allclose(empty.spmm(np.eye(6)), 0.0)
        assert empty.col_degrees().sum() == 0
        assert empty.index_bytes() > 0  # block metadata still exists
