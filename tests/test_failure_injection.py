"""Failure-injection and degenerate-input tests across the stack."""

import numpy as np
import pytest

from repro.core import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    OMeGaEmbedder,
    SpMMEngine,
)
from repro.formats import CSDBMatrix, edges_to_csdb
from repro.memsim import CapacityError


class TestDegenerateGraphs:
    def test_empty_matrix_spmm(self, rng):
        empty = CSDBMatrix.from_coo([], [], [], (10, 10))
        engine = SpMMEngine(OMeGaConfig(n_threads=4, dim=4))
        result = engine.multiply(empty, rng.standard_normal((10, 4)))
        assert np.allclose(result.output, 0.0)
        assert np.isfinite(result.sim_seconds)

    def test_single_edge_graph(self, rng):
        csdb = edges_to_csdb(np.array([[0, 1]]), 16)
        engine = SpMMEngine(OMeGaConfig(n_threads=8, dim=4))
        dense = rng.standard_normal((16, 4))
        result = engine.multiply(csdb, dense)
        assert np.allclose(result.output, csdb.spmm(dense))
        assert result.sim_seconds > 0

    def test_star_graph_extreme_skew(self, rng):
        # One hub connected to everything: the worst case for RR.
        hub = np.stack(
            [np.zeros(99, dtype=np.int64), np.arange(1, 100)], axis=1
        )
        csdb = edges_to_csdb(hub, 100)
        dense = rng.standard_normal((100, 4))
        for scheme in AllocationScheme:
            engine = SpMMEngine(
                OMeGaConfig(n_threads=8, dim=4, allocation=scheme)
            )
            result = engine.multiply(csdb, dense)
            assert np.allclose(result.output, csdb.spmm(dense))

    def test_graph_with_isolated_nodes_embeds(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]] * 20)
        edges = np.unique(edges, axis=0)
        # 60 nodes, but only 4 connected.
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=2))
        result = embedder.embed_edges(edges, 60)
        assert result.embedding.shape == (60, 2)
        assert np.all(np.isfinite(result.embedding))

    def test_dim_exceeding_nodes_rejected(self, paper_edges):
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=32))
        with pytest.raises(ValueError, match="exceeds the node count"):
            embedder.embed_edges(paper_edges, 7)

    def test_more_threads_than_rows(self, paper_csdb, rng):
        engine = SpMMEngine(OMeGaConfig(n_threads=32, dim=4))
        dense = rng.standard_normal((7, 4))
        result = engine.multiply(paper_csdb, dense)
        assert np.allclose(result.output, paper_csdb.spmm(dense))
        assert len(result.partitions) == 32

    def test_single_thread(self, skewed_csdb, rng):
        engine = SpMMEngine(OMeGaConfig(n_threads=1, dim=4))
        dense = rng.standard_normal((skewed_csdb.n_cols, 4))
        result = engine.multiply(skewed_csdb, dense)
        assert np.allclose(result.output, skewed_csdb.spmm(dense))


class TestCapacityFailures:
    def test_dram_oom_message_mentions_capacity(self, skewed_csdb, rng):
        engine = SpMMEngine(
            OMeGaConfig(
                n_threads=4,
                dim=8,
                memory_mode=MemoryMode.DRAM_ONLY,
                capacity_scale=10**9,
            )
        )
        with pytest.raises(CapacityError, match="GiB"):
            engine.multiply(skewed_csdb, rng.standard_normal((600, 8)))

    def test_oom_raised_before_compute(self, skewed_csdb, rng):
        """The capacity check fires before any numerics run."""
        engine = SpMMEngine(
            OMeGaConfig(
                n_threads=4,
                dim=8,
                memory_mode=MemoryMode.DRAM_ONLY,
                capacity_scale=10**9,
            )
        )
        with pytest.raises(CapacityError):
            engine.multiply(
                skewed_csdb, rng.standard_normal((600, 8)), compute=False
            )

    def test_pipeline_oom_leaves_embedder_reusable(self, skewed_edges):
        embedder = OMeGaEmbedder(
            OMeGaConfig(
                n_threads=2,
                dim=4,
                memory_mode=MemoryMode.DRAM_ONLY,
                capacity_scale=10**9,
            )
        )
        with pytest.raises(CapacityError):
            embedder.embed_edges(skewed_edges, 600)
        # A subsequent heterogeneous run on a fresh embedder succeeds.
        ok = OMeGaEmbedder(
            OMeGaConfig(n_threads=2, dim=4, capacity_scale=10**9)
        ).embed_edges(skewed_edges, 600)
        assert ok.sim_seconds > 0


class TestWeightedGraphs:
    def test_weighted_spmm_through_engine(self, rng):
        rows = rng.integers(0, 80, size=400)
        cols = rng.integers(0, 80, size=400)
        vals = rng.uniform(0.1, 5.0, size=400)
        csdb = CSDBMatrix.from_coo(rows, cols, vals, (80, 80))
        dense = rng.standard_normal((80, 6))
        engine = SpMMEngine(OMeGaConfig(n_threads=6, dim=6))
        result = engine.multiply(csdb, dense)
        assert np.allclose(result.output, csdb.to_dense() @ dense)

    def test_negative_weights(self, rng):
        csdb = CSDBMatrix.from_coo([0, 1], [1, 0], [-2.0, 3.0], (4, 4))
        dense = rng.standard_normal((4, 3))
        engine = SpMMEngine(OMeGaConfig(n_threads=2, dim=3))
        result = engine.multiply(csdb, dense)
        assert np.allclose(result.output, csdb.to_dense() @ dense)
