"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import chung_lu_edges, save_edge_list


class TestDatasets:
    def test_datasets_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("PK", "LJ", "OR", "TW", "TW-2010", "FR"):
            assert name in out


class TestProbe:
    def test_probe_output(self, capsys):
        assert main(["probe"]) == 0
        out = capsys.readouterr().out
        assert "read-seq-local" in out
        assert "seq_local_write_over_seq_remote_write" in out


class TestEmbed:
    def test_embed_named_dataset(self, capsys):
        assert main(["embed", "PK", "--threads", "4", "--dim", "8"]) == 0
        out = capsys.readouterr().out
        assert "SpMM ops" in out

    def test_embed_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "graph.txt"
        save_edge_list(path, chung_lu_edges(100, 500, seed=0))
        output = tmp_path / "emb.npy"
        code = main(
            [
                "embed",
                str(path),
                "--threads",
                "2",
                "--dim",
                "8",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        emb = np.load(output)
        assert emb.shape[1] == 8

    def test_embed_modes(self, capsys):
        assert (
            main(["embed", "PK", "--threads", "4", "--dim", "8", "--mode", "dram"])
            == 0
        )


class TestSpMM:
    def test_spmm_breakdown(self, capsys):
        assert main(["spmm", "PK", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "get_dense_nnz" in out
        assert "Mnnz/s" in out

    def test_spmm_allocation_flag(self, capsys):
        assert (
            main(["spmm", "PK", "--threads", "4", "--allocation", "rr"]) == 0
        )


class TestCompare:
    def test_compare_arms(self, capsys):
        assert main(["compare", "PK", "--threads", "4", "--dim", "8"]) == 0
        out = capsys.readouterr().out
        for arm in ("OMeGa", "OMeGa-DRAM", "OMeGa-PM", "ProNE-DRAM", "ProNE-HM"):
            assert arm in out

    def test_compare_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            main(["compare", "nope"])


class TestCalibrate:
    def test_calibrate_exits_zero_when_in_band(self, capsys):
        assert main(["calibrate", "--graph", "PK"]) == 0
        out = capsys.readouterr().out
        assert "Calibration" in out
        assert "NO" not in out.split("measured")[1]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
