"""Unit tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import chung_lu_edges, save_edge_list


class TestDatasets:
    def test_datasets_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("PK", "LJ", "OR", "TW", "TW-2010", "FR"):
            assert name in out


class TestProbe:
    def test_probe_output(self, capsys):
        assert main(["probe"]) == 0
        out = capsys.readouterr().out
        assert "read-seq-local" in out
        assert "seq_local_write_over_seq_remote_write" in out


class TestEmbed:
    def test_embed_named_dataset(self, capsys):
        assert main(["embed", "PK", "--threads", "4", "--dim", "8"]) == 0
        out = capsys.readouterr().out
        assert "SpMM ops" in out

    def test_embed_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "graph.txt"
        save_edge_list(path, chung_lu_edges(100, 500, seed=0))
        output = tmp_path / "emb.npy"
        code = main(
            [
                "embed",
                str(path),
                "--threads",
                "2",
                "--dim",
                "8",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        emb = np.load(output)
        assert emb.shape[1] == 8

    def test_embed_modes(self, capsys):
        assert (
            main(["embed", "PK", "--threads", "4", "--dim", "8", "--mode", "dram"])
            == 0
        )


class TestSpMM:
    def test_spmm_breakdown(self, capsys):
        assert main(["spmm", "PK", "--threads", "4"]) == 0
        out = capsys.readouterr().out
        assert "get_dense_nnz" in out
        assert "Mnnz/s" in out

    def test_spmm_allocation_flag(self, capsys):
        assert (
            main(["spmm", "PK", "--threads", "4", "--allocation", "rr"]) == 0
        )


class TestCompare:
    def test_compare_arms(self, capsys):
        assert main(["compare", "PK", "--threads", "4", "--dim", "8"]) == 0
        out = capsys.readouterr().out
        for arm in ("OMeGa", "OMeGa-DRAM", "OMeGa-PM", "ProNE-DRAM", "ProNE-HM"):
            assert arm in out

    def test_compare_rejects_unknown_graph(self):
        with pytest.raises(SystemExit):
            main(["compare", "nope"])

    def test_compare_telemetry_export(self, tmp_path, capsys):
        out_path = tmp_path / "compare.jsonl"
        code = main(
            [
                "compare", "PK", "--threads", "4", "--dim", "8",
                "--telemetry-out", str(out_path),
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        arm_events = [
            r for r in records
            if r.get("type") == "event" and r.get("name") == "arm"
        ]
        assert len(arm_events) == 5
        assert any(
            r.get("type") == "span" and r.get("name") == "embed"
            for r in records
        )


class TestCalibrate:
    def test_calibrate_exits_zero_when_in_band(self, capsys):
        assert main(["calibrate", "--graph", "PK"]) == 0
        out = capsys.readouterr().out
        assert "Calibration" in out
        assert "NO" not in out.split("measured")[1]

    def test_calibrate_telemetry_export(self, tmp_path, capsys):
        out_path = tmp_path / "calibrate.jsonl"
        assert (
            main(
                ["calibrate", "--graph", "PK", "--telemetry-out", str(out_path)]
            )
            == 0
        )
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        arms = [
            r for r in records
            if r.get("type") == "span" and r.get("name") == "calibrate_arm"
        ]
        points = [
            r for r in records
            if r.get("type") == "event"
            and r.get("name") == "calibration_point"
        ]
        assert len(arms) == 8
        assert len(points) == 7


class TestEmbedFaults:
    def _plan_path(self, tmp_path, *events):
        from repro.faults import FaultPlan

        return str(FaultPlan(events=events).save(tmp_path / "plan.json"))

    def test_crash_without_resume_fails(self, tmp_path, capsys):
        from repro.faults import FaultEvent

        plan = self._plan_path(
            tmp_path, FaultEvent("crash", "factorization")
        )
        code = main(
            [
                "embed", "PK", "--threads", "4", "--dim", "8",
                "--faults", plan,
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "injected crash at stage 'factorization'" in out
        assert "--resume" in out

    def test_crash_with_resume_recovers(self, tmp_path, capsys):
        from repro.faults import FaultEvent

        plan = self._plan_path(
            tmp_path, FaultEvent("crash", "factorization")
        )
        telemetry = tmp_path / "chaos.jsonl"
        code = main(
            [
                "embed", "PK", "--threads", "4", "--dim", "8",
                "--faults", plan, "--resume",
                "--telemetry-out", str(telemetry),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stage checkpoints recovered" in out
        assert "SpMM ops" in out
        metrics = {
            r["name"]: r.get("value")
            for r in map(json.loads, telemetry.read_text().splitlines())
            if r.get("type") == "metric"
        }
        assert metrics["checkpoint.recovered_stages"] > 0
        assert metrics["checkpoint.recovered_sim_seconds"] > 0

    def test_faultless_plan_runs_clean(self, tmp_path, capsys):
        plan = self._plan_path(tmp_path)
        code = main(
            [
                "embed", "PK", "--threads", "4", "--dim", "8",
                "--faults", plan,
            ]
        )
        assert code == 0
        assert "SpMM ops" in capsys.readouterr().out


class TestServeSim:
    ARGS = ["serve-sim", "PK", "--threads", "4", "--dim", "8"]

    def test_synthesized_trace_balanced(self, capsys):
        code = main(self.ARGS + ["--requests", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "submitted" in out
        assert "accounting balanced" in out

    def test_fault_plan_replay_is_deterministic(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        trace = tmp_path / "trace.json"
        code = main(
            self.ARGS
            + [
                "--requests", "120", "--fault-seed", "7",
                "--save-faults", str(plan), "--save-trace", str(trace),
            ]
        )
        assert code == 0
        first = capsys.readouterr().out
        code = main(
            self.ARGS + ["--faults", str(plan), "--trace", str(trace)]
        )
        assert code == 0
        replay = capsys.readouterr().out
        # Identical counts: same trace + same plan => same outcome
        # (modulo the "written to" notices of the first run).
        first_lines = [
            line for line in first.splitlines() if "written to" not in line
        ]
        assert first_lines == replay.splitlines()

    def test_telemetry_has_breaker_series(self, tmp_path, capsys):
        out_path = tmp_path / "serve.jsonl"
        code = main(
            self.ARGS
            + [
                "--requests", "150", "--fault-seed", "3",
                "--telemetry-out", str(out_path),
            ]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
        ]
        metrics = {
            r["name"]: r.get("value")
            for r in records
            if r.get("type") == "metric"
        }
        assert metrics.get("serve.unhandled_exceptions") == 0
        assert "serve.submitted" in metrics
        assert any(
            r.get("type") == "event" and r.get("name") == "serve_summary"
            for r in records
        )

    def test_resilience_toggles_run(self, capsys):
        code = main(
            self.ARGS
            + [
                "--requests", "60", "--no-breaker", "--no-shedding",
                "--no-deadline-aware",
            ]
        )
        assert code == 0
        assert "accounting balanced" in capsys.readouterr().out

    def test_unknown_graph_treated_as_missing_edge_list(self):
        # Like `embed`, the graph argument falls back to an edge-list
        # path when it is not a Table I name.
        with pytest.raises(FileNotFoundError):
            main(["serve-sim", "nope"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestExecBackendFlags:
    def test_embed_shared_memory_bit_identical(self, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(path, chung_lu_edges(120, 600, seed=1))
        serial_out = tmp_path / "serial.npy"
        shm_out = tmp_path / "shm.npy"
        base = ["embed", str(path), "--threads", "2", "--dim", "8"]
        assert main([*base, "--output", str(serial_out)]) == 0
        assert (
            main(
                [
                    *base,
                    "--exec-backend",
                    "shared_memory",
                    "--workers",
                    "2",
                    "--output",
                    str(shm_out),
                ]
            )
            == 0
        )
        assert np.array_equal(np.load(serial_out), np.load(shm_out))

    def test_spmm_accepts_backend_flags(self, tmp_path, capsys):
        path = tmp_path / "graph.txt"
        save_edge_list(path, chung_lu_edges(80, 300, seed=2))
        code = main(
            [
                "spmm",
                str(path),
                "--threads",
                "2",
                "--dim",
                "4",
                "--exec-backend",
                "shared_memory",
                "--workers",
                "2",
            ]
        )
        assert code == 0

    def test_rejects_unknown_backend(self, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(path, chung_lu_edges(40, 100, seed=3))
        with pytest.raises(SystemExit):
            main(["embed", str(path), "--exec-backend", "gpu"])


class TestPerfGateWallFlags:
    def test_wall_report_runs(self, tmp_path, capsys, monkeypatch):
        from repro.obs.observatory import wallgate

        monkeypatch.setattr(wallgate, "WALL_SCALE", 7)
        code = main(
            [
                "perf-gate",
                "--baseline-dir",
                str(tmp_path),
                "--no-trajectory",
                "--wall",
                "report",
                "--wall-runs",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "wall-clock gate [report-only]" in out
        assert "noise band" in out
