"""Tests for the online-resilience layer of the sharded store.

Covers the consistent-hash routing table, CRC-checksummed WAL records
and verified walk-back recovery (quarantine, total-corruption
abandonment), replica promotion (reactive, proactive, racing the
background checkpointer), the elastic reshard protocol (dual-route
split/merge, supervisor-driven splits, atomic swap + renumbering), the
abandoned-shard serve short-circuit, the ``staleness_bound`` SLO kind,
seeded resilience fault plans, and the shard-placement diff group.
"""

import time

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.memsim.devices import pm_spec
from repro.memsim.persistence import (
    PersistenceDomain,
    StageCheckpointStore,
    record_checksum,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.observatory.diff import (
    GROUP_PLACEMENT,
    diff_runs,
    extract_placement_values,
)
from repro.obs.observatory.slo import (
    SLOObjective,
    SLOSpec,
    evaluate_slo,
    render_slo,
)
from repro.shard import (
    CheckpointCorruptionError,
    EmbeddingShardManager,
    HashRoutingTable,
    PartialResultError,
    ShardCrashError,
    ShardPolicy,
    ShardRoutingTable,
    ShardSupervisor,
    SupervisorPolicy,
)

N_NODES = 64
DIM = 4


def _table(n_nodes: int = N_NODES, dim: int = DIM, seed: int = 0):
    return np.random.default_rng(seed).standard_normal((n_nodes, dim))


def _manager(
    table=None,
    faults=None,
    metrics=None,
    stream=None,
    **policy_overrides,
) -> EmbeddingShardManager:
    policy_overrides.setdefault("n_shards", 2)
    policy_overrides.setdefault("lookup_deadline_s", 0.2)
    table = _table() if table is None else table
    return EmbeddingShardManager(
        table,
        policy=ShardPolicy(**policy_overrides),
        faults=faults,
        metrics=metrics,
        stream=stream,
    )


class _ListStream:
    """Capture live-bus records for event assertions."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)

    def events(self, name):
        return [
            r
            for r in self.records
            if r.get("type") == "shard_event" and r.get("event") == name
        ]


def _wait_migration_ready(manager, timeout_s: float = 3.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if manager.migration_ready():
            return True
        time.sleep(0.01)
    return False


# -- consistent-hash routing ----------------------------------------------


class TestHashRouting:
    def test_covers_every_node_and_balances(self):
        routing = HashRoutingTable(n_nodes=4000, n_shards=4)
        owners = routing.shard_of(np.arange(4000))
        counts = np.bincount(owners, minlength=4)
        assert counts.sum() == 4000
        assert counts.min() > 0
        # Scattered ownership, not a collapsed ring: every shard holds
        # a non-trivial share.
        assert counts.max() / counts.min() < 3.0

    def test_deterministic_and_seed_sensitive(self):
        a = HashRoutingTable(n_nodes=500, n_shards=3)
        b = HashRoutingTable(n_nodes=500, n_shards=3)
        ids = np.arange(500)
        assert np.array_equal(a.shard_of(ids), b.shard_of(ids))
        c = HashRoutingTable(n_nodes=500, n_shards=3, seed=1)
        assert not np.array_equal(a.shard_of(ids), c.shard_of(ids))

    def test_members_partition_the_id_space(self):
        routing = HashRoutingTable(n_nodes=300, n_shards=3)
        members = [routing.members(s) for s in range(3)]
        merged = np.sort(np.concatenate(members))
        assert np.array_equal(merged, np.arange(300))

    def test_split_positions_roundtrip(self):
        routing = HashRoutingTable(n_nodes=200, n_shards=4)
        ids = np.random.default_rng(3).integers(0, 200, size=40)
        out = np.empty(40, dtype=np.int64)
        for _, (positions, shard_ids) in routing.split(ids).items():
            out[positions] = shard_ids
        assert np.array_equal(out, ids)

    def test_serialization_roundtrip(self):
        routing = HashRoutingTable(n_nodes=100, n_shards=2, vnodes=16, seed=5)
        payload = routing.to_dict()
        assert payload["kind"] == "hash"
        rebuilt = HashRoutingTable.from_dict(payload)
        ids = np.arange(100)
        assert np.array_equal(routing.shard_of(ids), rebuilt.shard_of(ids))

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            HashRoutingTable(n_nodes=10, n_shards=0)
        with pytest.raises(ValueError, match="vnodes"):
            HashRoutingTable(n_nodes=10, n_shards=1, vnodes=0)
        routing = HashRoutingTable(n_nodes=10, n_shards=2)
        with pytest.raises(ValueError, match="outside"):
            routing.shard_of(np.array([10]))

    def test_range_summaries_shape(self):
        routing = HashRoutingTable(n_nodes=100, n_shards=2)
        summaries = routing.range_summaries()
        assert len(summaries) == 2
        for lo, hi in summaries:
            assert 0 <= lo <= hi <= 100


class TestRangeTableEdits:
    def test_split_and_merge_roundtrip(self):
        routing = ShardRoutingTable(ranges=((0, 10), (10, 20)))
        assert routing.to_dict()["kind"] == "range"
        split = routing.split_range(0, 5)
        assert split.ranges == ((0, 5), (5, 10), (10, 20))
        merged = split.merge_ranges(0)
        assert merged.ranges == routing.ranges

    def test_split_point_validation(self):
        routing = ShardRoutingTable(ranges=((0, 10), (10, 20)))
        with pytest.raises(ValueError, match="split point"):
            routing.split_range(0, 0)
        with pytest.raises(ValueError, match="split point"):
            routing.split_range(0, 10)
        with pytest.raises(ValueError, match="neighbour"):
            routing.merge_ranges(1)


# -- CRC-checksummed WAL records ------------------------------------------


def _store() -> StageCheckpointStore:
    return StageCheckpointStore(PersistenceDomain(device=pm_spec()))


class TestChecksummedRecords:
    def test_checksum_covers_arrays_and_meta(self):
        arrays = {"rows": np.arange(8, dtype=np.float64)}
        crc = record_checksum(arrays, {"version": 1})
        assert crc == record_checksum(
            {"rows": np.arange(8, dtype=np.float64)}, {"version": 1}
        )
        assert crc != record_checksum(arrays, {"version": 2})
        mutated = {"rows": np.arange(8, dtype=np.float64)}
        mutated["rows"][3] += 1.0
        assert crc != record_checksum(mutated, {"version": 1})

    @pytest.mark.parametrize("mode", ["corrupt", "torn"])
    def test_damage_breaks_verification(self, mode):
        store = _store()
        store.append(
            "shard-0",
            {"rows": np.ones((4, 2))},
            {"version": 0},
        )
        record = store.records[-1]
        assert store.verify(record)
        damaged = store.damage_last(mode)
        assert damaged is record
        assert not store.verify(record)

    def test_quarantine_drops_record(self):
        store = _store()
        store.append("shard-0", {"rows": np.ones(2)}, {"version": 0})
        store.append("shard-0", {"rows": np.ones(2) * 2}, {"version": 1})
        record = store.records[-1]
        store.quarantine(record)
        assert len(store.records) == 1
        assert store.records[-1] is not record

    def test_damage_empty_store_is_noop(self):
        assert _store().damage_last("corrupt") is None


# -- verified walk-back recovery ------------------------------------------


class TestWalkBackRecovery:
    def test_restart_walks_back_past_damaged_checkpoint(self):
        metrics = MetricsRegistry()
        manager = _manager(metrics=metrics)
        genesis = manager.table.copy()
        with manager:
            rng = np.random.default_rng(1)
            ids = np.arange(4)
            manager.apply_update(ids, rng.standard_normal((4, DIM)))
            manager.checkpoint_all()  # v1, the record the fault damages
            manager.apply_update(ids, rng.standard_normal((4, DIM)))
            host = manager.hosts[0]
            host.inject_crash()
            assert host.inject_checkpoint_fault("checkpoint_corrupt")
            lost = host.restart()
            # The damaged v1 record was quarantined; recovery landed on
            # the genesis checkpoint, so the shard reopened at v0.
            assert host.quarantined == 1
            assert host.version == 0
            assert lost == 2
            assert host.checkpoint_version == 0
            assert metrics.value("shard.corrupt_checkpoints", shard="0") == 1
            rows, version = host.lookup(np.arange(2))
            assert version == 0
            assert np.array_equal(rows, genesis[:2])

    def test_total_corruption_raises_typed_error(self):
        manager = _manager()
        with manager:
            host = manager.hosts[0]
            host.inject_crash()
            assert host.inject_checkpoint_fault("checkpoint_torn")
            with pytest.raises(CheckpointCorruptionError) as err:
                host.restart()
            assert isinstance(err.value, ShardCrashError)
            assert err.value.quarantined == 1

    def test_supervisor_abandons_totally_corrupt_shard(self):
        metrics = MetricsRegistry()
        manager = _manager(metrics=metrics)
        with manager:
            supervisor = ShardSupervisor(manager, metrics=metrics)
            supervisor.wait_heartbeats()
            host = manager.hosts[0]
            host.inject_crash()
            host.inject_checkpoint_fault("checkpoint_corrupt")
            with pytest.raises(PartialResultError):
                manager.lookup(np.arange(N_NODES))
            assert host.abandoned
            assert supervisor.incidents[-1].action == "abandon"
            assert metrics.value("shard.abandoned", shard="0") == 1


# -- replica promotion ----------------------------------------------------


class TestPromotion:
    def test_reactive_promotion_serves_fresh_with_zero_loss(self):
        metrics = MetricsRegistry()
        manager = _manager(n_replicas=1, metrics=metrics)
        with manager:
            supervisor = ShardSupervisor(manager, metrics=metrics)
            supervisor.wait_heartbeats()
            rng = np.random.default_rng(2)
            for _ in range(3):
                ids = rng.integers(0, N_NODES, size=4)
                manager.apply_update(ids, rng.standard_normal((4, DIM)))
            manager.hosts[0].inject_crash()
            result = manager.lookup(np.arange(N_NODES))
            # The replica shares the live segment: nothing stale, and
            # the gather is bit-identical to the authoritative table.
            assert result.stale_rows == 0
            assert np.array_equal(result.rows, manager.table)
            incident = supervisor.incidents[-1]
            assert incident.action == "promote"
            assert incident.lost_versions == 0
            assert incident.recovery_s > 0
            host = manager.hosts[0]
            assert host.promotions == 1
            assert host.restarts == 0
            assert metrics.value("shard.promotions", shard="0") == 1

    def test_proactive_promotion_from_health_sweep(self):
        manager = _manager(n_replicas=1)
        with manager:
            supervisor = ShardSupervisor(manager)
            supervisor.wait_heartbeats()
            manager.hosts[0].inject_crash()
            sweep = supervisor.check()
            assert [i.action for i in sweep] == ["promote"]
            assert manager.hosts[0].alive()

    def test_promotion_restores_replica_budget(self):
        manager = _manager(n_replicas=1)
        with manager:
            host = manager.hosts[0]
            host.inject_crash()
            host.promote_replica()
            # The promoted fleet has a primary and a fresh standby.
            assert len(host.workers) == 2
            assert host.has_fresh_replica() or host.workers[1].process.is_alive()

    def test_falls_back_to_restart_without_live_replica(self):
        manager = _manager(n_replicas=1)
        with manager:
            supervisor = ShardSupervisor(manager)
            supervisor.wait_heartbeats()
            host = manager.hosts[0]
            # Kill the replica first, then the primary: no warm standby.
            replica = host.workers[1]
            replica.process.terminate()
            replica.process.join(timeout=2.0)
            host.inject_crash()
            sweep = supervisor.check()
            assert [i.action for i in sweep] == ["restart"]
            assert host.restarts == 1

    def test_promotion_races_background_checkpoint_bit_identical(self):
        # Satellite: a promotion landing between two background
        # refreshes must not disturb convergence — after catch-up the
        # store is bit-identical to the authoritative table.
        manager = _manager(
            n_replicas=1, checkpoint_interval=2, staleness_bound=2
        )
        with manager:
            supervisor = ShardSupervisor(manager)
            supervisor.wait_heartbeats()
            rng = np.random.default_rng(3)
            for i in range(8):
                ids = rng.integers(0, N_NODES, size=4)
                manager.apply_update(ids, rng.standard_normal((4, DIM)))
                if i == 3:
                    manager.hosts[0].inject_crash()
                result = manager.lookup(np.arange(0, N_NODES, 3))
                assert result.stale_rows == 0
                supervisor.check()
            assert sum(h.promotions for h in manager.hosts) >= 1
            assert sum(h.restarts for h in manager.hosts) == 0
            assert manager.refresher is not None
            assert manager.refresher.bg_checkpoints > 0
            for host in list(manager.hosts):
                manager.catch_up(host.shard_id)
            final = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(final.rows, manager.table)
            assert final.stale_rows == 0


# -- combined fault sweep (drain loop) ------------------------------------


class TestCombinedFaultSweep:
    def test_hang_and_heartbeat_loss_same_shard_one_sweep(self):
        # Satellite: two faults due at the same lookup on the same
        # shard must both land (the drain loop), and recovery must
        # still converge bit-identically.
        metrics = MetricsRegistry()
        plan = FaultPlan(
            events=(
                FaultEvent("shard_hang", "shard.0", count=3, seconds=1.0),
                FaultEvent("heartbeat_loss", "shard.0", count=3),
            ),
            seed=0,
        )
        injector = FaultInjector(plan, metrics)
        manager = _manager(faults=injector, metrics=metrics)
        with manager:
            supervisor = ShardSupervisor(manager, metrics=metrics)
            supervisor.wait_heartbeats()
            for _ in range(3):
                manager.lookup(np.arange(N_NODES))
                supervisor.check()
            assert metrics.value("faults.injected", kind="shard_hang") == 1
            assert (
                metrics.value("faults.injected", kind="heartbeat_loss") == 1
            )
            assert injector.pending == 0
            # The hung shard was repaired (timeout -> restart).
            assert sum(h.restarts for h in manager.hosts) >= 1
            for host in list(manager.hosts):
                manager.catch_up(host.shard_id)
            final = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(final.rows, manager.table)
            assert final.stale_rows == 0


# -- elastic reshard ------------------------------------------------------


class TestElasticReshard:
    def test_split_dual_routes_and_swaps_atomically(self):
        metrics = MetricsRegistry()
        manager = _manager(metrics=metrics)
        with manager:
            rng = np.random.default_rng(4)
            manager.begin_split(0)
            assert manager.migrating
            # Writes during the migration land on the old host *and*
            # the warming replacements.
            lo, hi = manager.routing.ranges[0]
            ids = rng.integers(lo, hi, size=6)
            manager.apply_update(ids, rng.standard_normal((6, DIM)))
            assert _wait_migration_ready(manager)
            manager.finish_migration()
            assert manager.routing.n_shards == 3
            assert manager.reshard_epoch == 1
            assert [h.shard_id for h in manager.hosts] == [0, 1, 2]
            assert metrics.value("shard.resharded_ranges") == 2
            result = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(result.rows, manager.table)
            assert result.stale_rows == 0

    def test_merge_adjacent_shards(self):
        manager = _manager()
        with manager:
            manager.begin_merge(0)
            assert _wait_migration_ready(manager)
            manager.finish_migration()
            assert manager.routing.n_shards == 1
            assert manager.routing.ranges == ((0, N_NODES),)
            result = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(result.rows, manager.table)

    def test_split_rejected_on_hash_routing(self):
        manager = _manager(partition="hash")
        with manager:
            with pytest.raises(ValueError, match="consistent-hash"):
                manager.begin_split(0)

    def test_single_migration_in_flight(self):
        manager = _manager()
        with manager:
            manager.begin_split(0)
            with pytest.raises(RuntimeError, match="already in flight"):
                manager.begin_split(1)
            assert _wait_migration_ready(manager)
            manager.finish_migration()

    def test_supervisor_splits_hot_shard_on_imbalance(self):
        metrics = MetricsRegistry()
        manager = _manager(metrics=metrics)
        with manager:
            supervisor = ShardSupervisor(
                manager,
                SupervisorPolicy(
                    reshard_imbalance=1.2, reshard_min_lookups=4
                ),
                metrics=metrics,
            )
            supervisor.wait_heartbeats()
            hot_lo, hot_hi = manager.routing.ranges[0]
            rng = np.random.default_rng(5)
            deadline = time.monotonic() + 5.0
            while manager.reshard_epoch == 0 and time.monotonic() < deadline:
                manager.lookup(rng.integers(hot_lo, hot_hi, size=8))
                supervisor.check()
                time.sleep(0.01)
            assert manager.reshard_epoch >= 1, "imbalance never split"
            assert manager.routing.n_shards == 3
            assert any(
                i.action == "reshard" and i.reason == "imbalance"
                for i in supervisor.incidents
            )
            assert metrics.value("shard.reshards", shard="0") == 1
            result = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(result.rows, manager.table)


# -- abandoned-shard short circuit ----------------------------------------


class TestAbandonedShortCircuit:
    def test_abandoned_serves_checkpoint_tier_without_event_spam(self):
        metrics = MetricsRegistry()
        stream = _ListStream()
        manager = _manager(metrics=metrics, stream=stream)
        with manager:
            supervisor = ShardSupervisor(
                manager, SupervisorPolicy(max_restarts=0), metrics=metrics
            )
            supervisor.wait_heartbeats()
            manager.hosts[0].inject_crash()
            first = manager.lookup(np.arange(N_NODES))
            assert first.stale_rows > 0
            assert manager.hosts[0].abandoned
            for _ in range(5):
                result = manager.lookup(np.arange(N_NODES))
                assert result.stale_rows > 0
            # One failure, one abandonment event, one hedge — the five
            # short-circuited reads spam neither counters nor the bus.
            assert len(stream.events("shard_abandoned")) == 1
            assert len(stream.events("hedged")) == 1
            assert (
                metrics.value("shard.abandoned_reads", shard="0") == 5
            )
            assert (
                metrics.value(
                    "shard.failures",
                    shard="0",
                    kind="ShardCrashError",
                )
                == 1
            )


# -- staleness bound: refresher and SLO kind ------------------------------


class TestStalenessBound:
    def test_background_refresh_bounds_version_lag(self):
        metrics = MetricsRegistry()
        manager = _manager(
            checkpoint_interval=4, staleness_bound=2, metrics=metrics
        )
        with manager:
            rng = np.random.default_rng(6)
            for _ in range(12):
                ids = rng.integers(0, N_NODES, size=4)
                manager.apply_update(ids, rng.standard_normal((4, DIM)))
                manager.lookup(np.arange(0, N_NODES, 5))
            refresher = manager.refresher
            assert refresher is not None
            assert refresher.bg_checkpoints > 0
            assert refresher.max_observed_staleness <= 2
            assert metrics.value("shard.staleness_max") == float(
                refresher.max_observed_staleness
            )
            assert refresher.sim_refresh_seconds > 0
            assert metrics.value("shard.bg_checkpoints", shard="0") > 0

    def test_slo_kind_evaluates_gauge(self):
        records = [
            {
                "type": "metric",
                "kind": "gauge",
                "name": "shard.staleness_max",
                "value": 3.0,
            }
        ]
        spec = SLOSpec(
            name="resilience",
            objectives=(
                SLOObjective(
                    name="lag", kind="staleness_bound", target=4.0
                ),
            ),
        )
        report = evaluate_slo(records, spec)
        assert report.ok
        assert report.results[0].value == 3.0
        assert report.results[0].burn_rate == pytest.approx(0.75)
        assert "3" in render_slo(report)

    def test_slo_kind_fails_past_bound(self):
        records = [
            {
                "type": "metric",
                "kind": "gauge",
                "name": "shard.staleness_max",
                "value": 5.0,
            }
        ]
        spec = SLOSpec(
            name="resilience",
            objectives=(
                SLOObjective(
                    name="lag", kind="staleness_bound", target=2.0
                ),
            ),
        )
        report = evaluate_slo(records, spec)
        assert not report.ok
        assert report.results[0].burn_rate == pytest.approx(2.5)

    def test_slo_kind_passes_when_absent(self):
        spec = SLOSpec(
            name="resilience",
            objectives=(
                SLOObjective(
                    name="lag", kind="staleness_bound", target=2.0
                ),
            ),
        )
        report = evaluate_slo([], spec)
        assert report.ok
        assert report.results[0].burn_rate == 0.0


# -- seeded resilience plans ----------------------------------------------


class TestRandomResilience:
    def test_deterministic_per_seed_and_scenario(self):
        a = FaultPlan.random_resilience(5, "promotion")
        b = FaultPlan.random_resilience(5, "promotion")
        assert a == b
        assert a != FaultPlan.random_resilience(6, "promotion")

    def test_scenario_validation(self):
        with pytest.raises(ValueError, match="scenario"):
            FaultPlan.random_resilience(0, "meteor")

    def test_scenario_shapes(self):
        promotion = FaultPlan.random_resilience(1, "promotion")
        assert all(e.kind == "shard_crash" for e in promotion.events)
        corruption = FaultPlan.random_resilience(1, "corruption")
        kinds = [e.kind for e in corruption.events]
        assert kinds[-1] == "shard_crash"
        assert kinds[0] in ("checkpoint_corrupt", "checkpoint_torn")
        # The damage lands on the same shard, before the kill.
        assert corruption.events[0].site == corruption.events[1].site
        assert corruption.events[0].count < corruption.events[1].count
        reshard = FaultPlan.random_resilience(1, "reshard")
        assert {e.kind for e in reshard.events} == {
            "shard_crash",
            "shard_hang",
        }


# -- shard-placement diff group -------------------------------------------


class TestPlacementDiff:
    def _records(self, balance):
        return [
            {
                "type": "metric",
                "kind": "gauge",
                "name": "shard.placement.balance",
                "labels": {"model": "real"},
                "value": balance,
            },
            {
                "type": "metric",
                "kind": "gauge",
                "name": "shard.placement.rows",
                "labels": {"shard": "0"},
                "value": 32.0,
            },
        ]

    def test_extract_keys_by_model_and_shard(self):
        values = extract_placement_values(self._records(1.05))
        assert values == {
            "balance[model=real]": 1.05,
            "rows[shard=0]": 32.0,
        }

    def test_diff_gated_only_when_requested(self):
        a, b = self._records(1.0), self._records(1.2)
        report = diff_runs(a, b, include_placement=True)
        placement = [
            r for r in report.rows if r.group == GROUP_PLACEMENT
        ]
        assert placement
        regressed = [
            r for r in placement if r.name == "balance[model=real]"
        ]
        assert regressed[0].status == "regressed"
        report_off = diff_runs(a, b)
        assert not [
            r for r in report_off.rows if r.group == GROUP_PLACEMENT
        ]


# -- consistent-hash store end to end -------------------------------------


class TestHashPartitionedStore:
    def test_lookup_bit_identical_and_updates_route(self):
        manager = _manager(partition="hash")
        with manager:
            assert isinstance(manager.routing, HashRoutingTable)
            result = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(result.rows, manager.table)
            rng = np.random.default_rng(7)
            ids = rng.integers(0, N_NODES, size=8)
            manager.apply_update(ids, rng.standard_normal((8, DIM)))
            again = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(again.rows, manager.table)
            assert again.stale_rows == 0

    def test_crash_recovery_with_scattered_ownership(self):
        manager = _manager(partition="hash")
        with manager:
            supervisor = ShardSupervisor(manager)
            supervisor.wait_heartbeats()
            rng = np.random.default_rng(8)
            ids = rng.integers(0, N_NODES, size=8)
            manager.apply_update(ids, rng.standard_normal((8, DIM)))
            manager.hosts[0].inject_crash()
            result = manager.lookup(np.arange(N_NODES))
            # Hedged through the checkpoint tier with searchsorted id
            # mapping: stale rows come from the genesis checkpoint.
            assert result.stale_rows > 0
            for host in list(manager.hosts):
                manager.catch_up(host.shard_id)
            final = manager.lookup(np.arange(N_NODES))
            assert np.array_equal(final.rows, manager.table)
            assert final.stale_rows == 0
