"""Extended property-based tests: partitioning, COMET, engine conservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.comet import (
    greedy_buffer_order,
    naive_order_loads,
    pair_universe,
)
from repro.core import OMeGaConfig, SpMMEngine
from repro.formats import CSDBMatrix
from repro.graphs.partition import (
    balanced_edge_partition,
    edge_cut_fraction,
    hash_partition,
    partition_load_balance,
    range_partition,
)


class TestPartitionProperties:
    @given(st.integers(1, 500), st.integers(1, 8), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_hash_partition_total_and_range(self, n_nodes, n_parts, seed):
        assignment = hash_partition(n_nodes, n_parts, seed)
        assert len(assignment) == n_nodes
        assert np.all((assignment >= 0) & (assignment < n_parts))

    @given(st.integers(1, 500), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_range_partition_monotone(self, n_nodes, n_parts):
        assignment = range_partition(n_nodes, n_parts)
        assert np.all(np.diff(assignment) >= 0)
        assert partition_load_balance(assignment) <= n_parts + 1e-9

    @given(
        st.lists(st.integers(0, 50), min_size=1, max_size=200),
        st.integers(1, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_balanced_edge_partition_covers(self, degrees, n_parts):
        degrees = np.array(degrees, dtype=np.int64)
        assignment = balanced_edge_partition(degrees, n_parts)
        assert len(assignment) == len(degrees)
        assert np.all(np.diff(assignment) >= 0)  # contiguous ranges
        assert assignment.max() <= n_parts - 1

    @given(st.integers(2, 60), st.integers(1, 6), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_edge_cut_bounds(self, n_nodes, n_parts, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(1, 50)
        edges = rng.integers(0, n_nodes, size=(m, 2))
        assignment = hash_partition(n_nodes, n_parts, seed)
        cut = edge_cut_fraction(edges, assignment)
        assert 0.0 <= cut <= 1.0
        if n_parts == 1:
            assert cut == 0.0


class TestCometProperties:
    @given(st.integers(2, 12), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_greedy_order_is_exact_cover(self, n_partitions, buffer_size):
        if buffer_size > n_partitions:
            n_partitions, buffer_size = buffer_size, n_partitions
        schedule = greedy_buffer_order(n_partitions, buffer_size)
        assert sorted(schedule.order) == pair_universe(n_partitions)
        assert len(set(schedule.order)) == len(schedule.order)
        assert schedule.swaps >= 0

    @given(st.integers(3, 12), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_greedy_never_worse_than_naive(self, n_partitions, buffer_size):
        buffer_size = min(buffer_size, n_partitions)
        if buffer_size < 2:
            buffer_size = 2
        greedy = greedy_buffer_order(n_partitions, buffer_size).total_loads
        naive = naive_order_loads(n_partitions, buffer_size)
        assert greedy <= naive

    @given(st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_full_buffer_loads_each_partition_once(self, n_partitions):
        schedule = greedy_buffer_order(n_partitions, n_partitions)
        assert schedule.total_loads == n_partitions


class TestEngineConservation:
    """Simulated accounting invariants of the SpMM engine."""

    @st.composite
    def small_graphs(draw):
        n = draw(st.integers(4, 40))
        m = draw(st.integers(1, 120))
        rng = np.random.default_rng(draw(st.integers(0, 1000)))
        rows = rng.integers(0, n, size=m)
        cols = rng.integers(0, n, size=m)
        return CSDBMatrix.from_coo(rows, cols, np.ones(m), (n, n))

    @given(small_graphs(), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_partition_nnz_conserved_and_times_finite(self, matrix, threads):
        engine = SpMMEngine(OMeGaConfig(n_threads=threads, dim=4))
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((matrix.n_cols, 4))
        result = engine.multiply(matrix, dense, compute=False)
        assert sum(p.nnz_count for p in result.partitions) == matrix.nnz
        assert np.all(np.isfinite(result.thread_times))
        assert result.sim_seconds >= result.thread_times.max() - 1e-15

    @given(small_graphs())
    @settings(max_examples=25, deadline=None)
    def test_trace_total_at_least_makespan(self, matrix):
        engine = SpMMEngine(OMeGaConfig(n_threads=4, dim=4))
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((matrix.n_cols, 4))
        result = engine.multiply(matrix, dense, compute=False)
        # Sum of per-category charges covers the parallel work, so it is
        # at least the makespan minus the serial add-ons.
        assert result.trace.total_seconds >= result.thread_times.max() * 0.99

    @given(small_graphs(), st.floats(0.01, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_hit_fraction_bounds(self, matrix, sigma):
        engine = SpMMEngine(OMeGaConfig(n_threads=4, dim=4, sigma=sigma))
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((matrix.n_cols, 4))
        result = engine.multiply(matrix, dense, compute=False)
        assert 0.0 <= result.mean_hit_fraction <= 1.0
        for plan in result.prefetch_plans:
            assert 0.0 <= plan.hit_fraction <= 1.0
