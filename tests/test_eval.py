"""Unit tests for the embedding-quality evaluation utilities."""

import numpy as np
import pytest

from repro.eval import (
    LogisticRegressionOVR,
    link_prediction_auc,
    node_classification_accuracy,
    sample_negative_edges,
    score_edges,
    train_test_edge_split,
)
from repro.eval.linkpred import ranking_auc
from repro.graphs import planted_partition_edges


class TestSplits:
    def test_split_sizes(self, skewed_edges):
        train, test = train_test_edge_split(skewed_edges, test_fraction=0.25)
        assert len(train) + len(test) == len(skewed_edges)
        assert len(test) == int(len(skewed_edges) * 0.25)

    def test_split_deterministic(self, skewed_edges):
        a = train_test_edge_split(skewed_edges, seed=1)
        b = train_test_edge_split(skewed_edges, seed=1)
        assert np.array_equal(a[0], b[0])

    def test_split_disjoint(self, skewed_edges):
        train, test = train_test_edge_split(skewed_edges, test_fraction=0.2)
        train_keys = {tuple(e) for e in train.tolist()}
        test_keys = {tuple(e) for e in test.tolist()}
        assert not train_keys & test_keys

    def test_invalid_fraction(self, skewed_edges):
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_edge_split(skewed_edges, test_fraction=1.0)

    def test_negative_edges_are_nonedges(self, skewed_edges):
        negatives = sample_negative_edges(skewed_edges, 600, 100, seed=0)
        true_keys = {
            (min(u, v), max(u, v)) for u, v in skewed_edges.tolist()
        }
        for u, v in negatives.tolist():
            assert (min(u, v), max(u, v)) not in true_keys
            assert u != v

    def test_negative_sampling_count(self, skewed_edges):
        negatives = sample_negative_edges(skewed_edges, 600, 250, seed=3)
        assert len(negatives) == 250

    def test_negative_sampling_dense_graph_fails(self):
        # K4 minus nothing: no negatives exist.
        complete = np.array(
            [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]]
        )
        with pytest.raises(RuntimeError, match="negative"):
            sample_negative_edges(complete, 4, 5, seed=0)


class TestAUC:
    def test_perfect_separation(self):
        assert ranking_auc(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0

    def test_inverted_separation(self):
        assert ranking_auc(np.array([0.0]), np.array([1.0])) == 0.0

    def test_ties_give_half(self):
        assert ranking_auc(np.ones(5), np.ones(5)) == pytest.approx(0.5)

    def test_random_scores_near_half(self, rng):
        auc = ranking_auc(rng.standard_normal(500), rng.standard_normal(500))
        assert 0.4 < auc < 0.6

    def test_score_edges_shape_check(self, rng):
        with pytest.raises(ValueError, match=r"\(m, 2\)"):
            score_edges(rng.standard_normal((5, 3)), np.zeros((2, 3)))

    def test_link_prediction_pipeline(self, rng):
        # Embeddings where edges are pairs of identical vectors separate
        # perfectly from random negatives.
        emb = rng.standard_normal((10, 4))
        emb[1] = emb[0]
        emb[3] = emb[2]
        positives = np.array([[0, 1], [2, 3]])
        negatives = np.array([[0, 5], [2, 7]])
        auc = link_prediction_auc(emb, positives, negatives)
        assert auc >= 0.5


class TestLogisticRegression:
    def test_separable_problem(self, rng):
        x = np.vstack(
            [rng.normal(-2, 0.3, size=(50, 2)), rng.normal(2, 0.3, size=(50, 2))]
        )
        y = np.array([0] * 50 + [1] * 50)
        model = LogisticRegressionOVR(n_iterations=300).fit(x, y)
        assert model.accuracy(x, y) > 0.95

    def test_multiclass(self, rng):
        centers = np.array([[0, 4], [4, 0], [-4, -4]])
        x = np.vstack(
            [rng.normal(c, 0.5, size=(40, 2)) for c in centers]
        )
        y = np.repeat([0, 1, 2], 40)
        model = LogisticRegressionOVR(n_iterations=300).fit(x, y)
        assert model.accuracy(x, y) > 0.9

    def test_predict_before_fit(self, rng):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegressionOVR().predict(rng.standard_normal((3, 2)))

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="lengths differ"):
            LogisticRegressionOVR().fit(rng.standard_normal((3, 2)), [0, 1])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError, match="learning_rate"):
            LogisticRegressionOVR(learning_rate=0.0)
        with pytest.raises(ValueError, match="n_iterations"):
            LogisticRegressionOVR(n_iterations=0)


class TestEndToEndQuality:
    def test_embeddings_recover_planted_communities(self):
        """A full quality probe: ProNE embeddings of a planted-partition
        graph classify communities far above chance."""
        from repro.formats import edges_to_csdb
        from repro.prone import prone_embed
        from repro.prone.model import ProNEParams

        edges, labels = planted_partition_edges(
            400, 6000, n_communities=4, p_in=0.85, seed=1
        )
        csdb = edges_to_csdb(edges, 400)
        emb = prone_embed(csdb, ProNEParams(dim=16, order=8))
        accuracy = node_classification_accuracy(emb, labels, seed=0)
        assert accuracy > 0.5  # chance is 0.25

    def test_embeddings_predict_held_out_links(self, skewed_edges):
        from repro.formats import edges_to_csdb
        from repro.prone import prone_embed
        from repro.prone.model import ProNEParams

        from repro.prone import prone_smf

        train, test = train_test_edge_split(skewed_edges, 0.15, seed=0)
        csdb = edges_to_csdb(train, 600)
        params = ProNEParams(dim=16, order=8)
        emb = prone_embed(csdb, params)
        negatives = sample_negative_edges(skewed_edges, 600, len(test), seed=0)
        auc = link_prediction_auc(emb, test, negatives)
        # A Chung-Lu graph carries little structure beyond degree, so the
        # bar is modest — but clearly above chance, and spectral
        # propagation must improve on the raw SMF bootstrap.
        assert auc > 0.55
        auc_smf = link_prediction_auc(
            prone_smf(csdb, params), test, negatives
        )
        assert auc > auc_smf
