"""Live telemetry: streaming, trace propagation, merging, the ops view."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import (
    ExecBackend,
    OMeGaConfig,
    ParallelConfig,
    SpMMEngine,
)
from repro.formats import edges_to_csdb
from repro.graphs import chung_lu_edges, rmat_edges
from repro.obs.export import TelemetrySession
from repro.obs.live import (
    StreamFollower,
    build_top_frame,
    latest_metric_records,
    load_records,
    read_stream,
    render_prom,
    render_top,
    worker_stream_paths,
)
from repro.obs.observatory import build_profile, diff_runs
from repro.obs.observatory.diff import GROUP_PROFILE
from repro.parallel import close_shared_executors

SCALE = 7


@pytest.fixture(scope="module", autouse=True)
def _close_pools():
    yield
    close_shared_executors()


def _streamed_spmm(path, backend=ExecBackend.SHARED_MEMORY, n_workers=2):
    """One real SpMM under a streaming session; returns (session, result)."""
    session = TelemetrySession(meta={"command": "spmm", "graph": "rmat"})
    session.stream_to(path, flush_every=1)
    config = OMeGaConfig(
        n_threads=4,
        dim=4,
        parallel=ParallelConfig(backend=backend, n_workers=n_workers),
    )
    engine = SpMMEngine(
        config, tracer=session.tracer, metrics=session.metrics
    )
    edges = rmat_edges(SCALE, edge_factor=6.0, seed=1)
    matrix = edges_to_csdb(edges, 1 << SCALE)
    dense = np.random.default_rng(0).standard_normal((1 << SCALE, 4))
    result = engine.multiply(matrix, dense, compute=True)
    return session, result


class TestTracePropagation:
    def test_worker_spans_parent_under_spmm(self, tmp_path):
        path = tmp_path / "run.stream.jsonl"
        session, _ = _streamed_spmm(path)
        session.close_stream()

        assert worker_stream_paths(path), "workers wrote no sibling streams"
        merged = load_records(path)
        spans = [r for r in merged if r.get("type") == "span"]
        by_id = {s["span_id"]: s for s in spans}
        parts = [s for s in spans if s["name"] == "spmm_partition"]
        assert parts, "no partition spans in the merged stream"

        root_trace = next(s["trace_id"] for s in spans if s["name"] == "spmm")
        worker_pids = set()
        for part in parts:
            assert part["trace_id"] == root_trace
            assert by_id[part["parent_id"]]["name"] == "spmm"
            attrs = part["attributes"]
            assert attrs["nnz"] > 0
            assert attrs["kernel_wall_s"] >= 0.0
            assert attrs["queue_wait_s"] >= 0.0
            worker_pids.add(attrs["worker_pid"])
        # Multiple workers contributed, none of them the coordinator.
        import os

        assert os.getpid() not in worker_pids
        assert len(worker_pids) >= 1

    def test_serial_backend_emits_partition_spans_too(self):
        session = TelemetrySession(meta={"command": "spmm"})
        config = OMeGaConfig(n_threads=4, dim=4)
        engine = SpMMEngine(
            config, tracer=session.tracer, metrics=session.metrics
        )
        edges = rmat_edges(SCALE, edge_factor=6.0, seed=2)
        matrix = edges_to_csdb(edges, 1 << SCALE)
        dense = np.random.default_rng(1).standard_normal((1 << SCALE, 4))
        engine.multiply(matrix, dense, compute=True)
        spans = session.tracer.to_records()
        parts = [s for s in spans if s["name"] == "spmm_partition"]
        assert parts, "serial backend should emit partition spans as well"
        total_nnz = sum(s["attributes"]["nnz"] for s in parts)
        assert total_nnz == matrix.nnz

    def test_merged_profile_preserves_sim_self_sum(self, tmp_path):
        """Zero-sim-width worker spans must not distort sim accounting."""
        path = tmp_path / "run.stream.jsonl"
        session, result = _streamed_spmm(path)
        session.close_stream()
        merged = load_records(path)
        spans = [r for r in merged if r.get("type") == "span"]
        profile = build_profile(spans)
        self_sum = sum(node.sim_self for node in profile.walk())
        assert self_sum == pytest.approx(profile.sim_total)
        assert profile.sim_total == pytest.approx(result.sim_seconds)
        # ...while the partition spans still carry real kernel wall time.
        part = profile.child("spmm").child("spmm_partition")
        assert part.sim_total == 0.0
        assert part.wall_total > 0.0

    def test_partition_payloads_survive_worker_crash(self):
        """Spans for completed partitions arrive despite WorkerCrashError."""
        from repro.obs.live import TraceContext
        from repro.parallel.shared import (
            SharedMemoryExecutor,
            WorkerCrashError,
        )

        edges = rmat_edges(SCALE, edge_factor=6.0, seed=2)
        n = 1 << SCALE
        matrix = edges_to_csdb(edges, n)
        dense = np.random.default_rng(1).standard_normal((n, 4))
        out = np.zeros((n, 4))
        step = max(1, n // 8)
        ranges = [(i, min(n, i + step)) for i in range(0, n, step)]
        ctx = TraceContext(trace_id="t-crash", parent_span_id=7)
        sink = []
        ex = SharedMemoryExecutor(n_workers=2)
        try:
            with pytest.raises(WorkerCrashError):
                ex.run_partitions(
                    matrix,
                    dense,
                    ranges,
                    out,
                    trace_ctx=ctx,
                    span_sink=sink.append,
                    _inject_crash=4,
                )
        finally:
            ex.close()
        # Jobs 0..3 ran to completion; their telemetry must not be lost.
        assert len(sink) == 4
        assert all(p["trace_id"] == "t-crash" for p in sink)
        assert all(p["parent_id"] == 7 for p in sink)


class TestStreamReaders:
    def test_read_stream_tolerates_torn_last_line(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "stream_meta", "pid": 1}) + "\n")
            fh.write(json.dumps({"type": "span", "name": "a"}) + "\n")
            fh.write('{"type": "span", "na')  # killed mid-write
        records, skipped = read_stream(path)
        assert [r["type"] for r in records] == ["stream_meta", "span"]
        assert skipped == 1

    def test_follower_retries_partial_line(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        first = json.dumps({"type": "span", "name": "a"})
        second = json.dumps({"type": "span", "name": "b"})
        path.write_text(first + "\n" + second[:7], encoding="utf-8")
        follower = StreamFollower(path)
        assert [r["name"] for r in follower.poll()] == ["a"]
        with path.open("a", encoding="utf-8") as fh:
            fh.write(second[7:] + "\n")
            fh.write(json.dumps({"type": "stream_closed"}) + "\n")
        fresh = follower.poll()
        assert [r.get("name") for r in fresh] == ["b", None]
        assert follower.closed
        assert len(follower.records) == 3

    def test_merge_synthesizes_manifest_on_crash(self, tmp_path):
        path = tmp_path / "crashed.stream.jsonl"
        session, _ = _streamed_spmm(path)
        # Simulated coordinator death: the stream is never closed, so no
        # manifest or stream_closed sentinel reaches the file.
        session.stream.flush()
        merged = load_records(path)
        manifests = [r for r in merged if r.get("type") == "manifest"]
        assert len(manifests) == 1
        assert manifests[0].get("synthesized") is True
        assert not any(r.get("type") == "stream_closed" for r in merged)
        session.close_stream()


class TestServeTraceIds:
    def test_trace_ids_unique_across_requests_and_bursts(self, tmp_path):
        from repro.faults import FaultInjector, FaultPlan
        from repro.memsim.clock import VirtualClock
        from repro.obs.live import TelemetryStream
        from repro.obs.metrics import MetricsRegistry
        from repro.serve import (
            EmbeddingBackend,
            EmbeddingServer,
            RequestTrace,
            ServePolicy,
        )
        from repro.core.embedding import OMeGaEmbedder

        n_nodes = 120
        edges = chung_lu_edges(n_nodes, 700, seed=5)
        metrics = MetricsRegistry()
        embedder = OMeGaEmbedder(
            OMeGaConfig(n_threads=2, dim=8), metrics=metrics
        )
        plan = FaultPlan.random_serve(seed=11, n_events=6)
        injector = FaultInjector(plan, metrics)
        backend = EmbeddingBackend(
            embedder, edges, n_nodes, faults=injector, metrics=metrics
        )
        backend.warm_up()
        per_node = backend.compute_cost(1)
        stream = TelemetryStream(
            tmp_path / "serve.stream.jsonl", flush_every=1
        )
        server = EmbeddingServer(
            backend,
            ServePolicy.calibrated(per_node * 8.5),
            clock=VirtualClock(),
            metrics=metrics,
            faults=injector,
            stream=stream,
            snapshot_every=10,
        )
        trace = RequestTrace.synthesize(
            seed=3, n_requests=80, per_node_cost_s=per_node
        )
        report = server.run_trace(trace)
        stream.close()

        trace_ids = [r.trace_id for r in report.responses]
        assert all(tid for tid in trace_ids)
        assert len(set(trace_ids)) == len(trace_ids)
        # Burst-injected requests were admitted through the same path,
        # so every response (including shed ones) carries an id.
        assert len(trace_ids) >= 80

        records, _ = read_stream(tmp_path / "serve.stream.jsonl")
        logged = [
            r for r in records if r.get("type") == "serve_request"
        ]
        assert len(logged) == len(report.responses)
        assert {r["trace_id"] for r in logged} == set(trace_ids)
        snapshots = [
            r for r in records if r.get("type") == "serve_snapshot"
        ]
        assert snapshots, "periodic snapshots missing from the stream"


class TestTopView:
    def _serve_stream(self, tmp_path):
        from repro.cli import main

        edges = chung_lu_edges(80, 400, seed=7)
        edge_file = tmp_path / "graph.txt"
        np.savetxt(edge_file, edges, fmt="%d")
        stream = tmp_path / "serve.stream.jsonl"
        rc = main(
            [
                "serve-sim",
                str(edge_file),
                "--requests",
                "60",
                "--threads",
                "2",
                "--dim",
                "8",
                "--live",
                str(stream),
            ]
        )
        assert rc == 0
        return stream

    def test_top_once_renders_live_counters(self, tmp_path, capsys):
        from repro.cli import main

        stream = self._serve_stream(tmp_path)
        capsys.readouterr()
        assert main(["top", str(stream), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "submitted" in out
        assert "breaker=" in out

        assert main(["top", str(stream), "--once", "--format", "prom"]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE serve_submitted_total counter" in prom
        assert "serve_submitted_total 6" in prom  # 60 requests

    def test_frame_matches_stream_counters(self, tmp_path):
        stream = self._serve_stream(tmp_path)
        records, skipped = read_stream(stream)
        assert skipped == 0
        frame = build_top_frame(records)
        assert frame["closed"] is True
        assert frame["submitted"] >= 60
        assert frame["responded"] == frame["submitted"]
        assert frame["n_snapshots"] >= 1
        assert frame["breaker_state"] in ("closed", "open", "half_open")
        rendered = render_top(frame)
        assert "requests" in rendered

    def test_prom_rendering_shapes(self):
        metric_records = [
            {
                "type": "metric",
                "kind": "counter",
                "name": "serve.submitted",
                "labels": {},
                "value": 3.0,
            },
            {
                "type": "metric",
                "kind": "gauge",
                "name": "queue.depth",
                "labels": {"klass": "interactive"},
                "value": 2.0,
            },
            {
                "type": "metric",
                "kind": "histogram",
                "name": "serve.latency",
                "labels": {},
                "count": 3,
                "sum": 0.6,
                "min": 0.1,
                "max": 0.3,
                "bounds": [0.1, 0.5],
                "bucket_counts": [1, 2, 0],
            },
        ]
        text = render_prom(metric_records)
        assert "# TYPE serve_submitted_total counter" in text
        assert "serve_submitted_total 3" in text
        assert 'queue_depth{klass="interactive"} 2' in text
        assert 'serve_latency_bucket{le="0.1"} 1' in text
        assert 'serve_latency_bucket{le="0.5"} 3' in text
        assert 'serve_latency_bucket{le="+Inf"} 3' in text
        assert "serve_latency_sum 0.6" in text
        assert "serve_latency_count 3" in text

    def test_latest_metrics_prefer_final_over_snapshot(self):
        snapshot_metric = {
            "type": "metric",
            "kind": "counter",
            "name": "serve.submitted",
            "labels": {},
            "value": 5.0,
        }
        records = [
            {
                "type": "serve_snapshot",
                "sim_now_s": 1.0,
                "breaker_state": "closed",
                "queue_depth": 0,
                "metrics": [snapshot_metric],
            }
        ]
        assert latest_metric_records(records) == [snapshot_metric]
        final = dict(snapshot_metric, value=9.0)
        assert latest_metric_records(records + [final]) == [final]


class TestDiffProfile:
    def _spans(self, spmm_seconds):
        return [
            {
                "type": "span",
                "span_id": 0,
                "parent_id": None,
                "depth": 0,
                "name": "embed",
                "sim_start": 0.0,
                "sim_seconds": spmm_seconds + 1.0,
                "wall_seconds": 0.0,
            },
            {
                "type": "span",
                "span_id": 1,
                "parent_id": 0,
                "depth": 1,
                "name": "spmm",
                "sim_start": 0.0,
                "sim_seconds": spmm_seconds,
                "wall_seconds": 0.0,
            },
        ]

    def test_profile_rows_gated(self):
        report = diff_runs(
            self._spans(2.0), self._spans(3.0), include_profile=True
        )
        rows = {r.name: r for r in report.rows if r.group == GROUP_PROFILE}
        assert rows["embed;spmm"].status == "regressed"
        assert any(
            r.group == GROUP_PROFILE for r in report.regressions
        )

    def test_profile_off_by_default(self):
        report = diff_runs(self._spans(2.0), self._spans(3.0))
        assert not any(r.group == GROUP_PROFILE for r in report.rows)


class TestBaselineGC:
    def test_gc_dry_run_then_apply(self, tmp_path):
        from repro.obs.observatory import BaselineStore

        store = BaselineStore(tmp_path)
        kept = store.put({"v": 1}, name="pinned")
        orphan = store.put({"v": 2})
        assert store.unreferenced_keys() == [orphan]

        doomed = store.gc()  # dry run by default
        assert doomed == [orphan]
        assert store.keys() == sorted([kept, orphan])

        assert store.gc(dry_run=False) == [orphan]
        assert store.keys() == [kept]
        assert store.load("pinned") == {"v": 1}


class TestTrend:
    def test_series_from_mixed_points(self):
        from repro.obs.observatory import sparkline, trajectory_series

        points = [
            {"stages": {"embed.total": 1.0}},
            {
                "suite": "bench_parallel_scaling",
                "points": [
                    {"backend": "shared_memory", "workers": 2, "speedup": 1.5}
                ],
            },
            {"stages": {"embed.total": 2.0}},
        ]
        series = trajectory_series(points)
        assert series["stages.embed.total"] == [1.0, 2.0]
        assert series["bench_parallel_scaling.shared_memory.w2.speedup"] == [
            1.5
        ]
        spark = sparkline([1.0, 2.0, 3.0])
        assert len(spark) == 3
        assert spark[0] < spark[-1]
        assert len(set(sparkline([4.0, 4.0]))) == 1  # flat series

    def test_render_and_cli(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.observatory import render_trend

        points = [
            {"stages": {"embed.total": 1.0}},
            {"stages": {"embed.total": 1.5}},
        ]
        out = render_trend(points, prefix="stages.")
        assert "stages.embed.total" in out
        assert "+50.0%" in out

        path = tmp_path / "traj.json"
        path.write_text(json.dumps(points), encoding="utf-8")
        assert main(["trend", "--trajectory", str(path)]) == 0
        assert "stages.embed.total" in capsys.readouterr().out


class TestEmbedSLOKinds:
    def _metric(self, name, value):
        return {
            "type": "metric",
            "kind": "counter",
            "name": name,
            "labels": {},
            "value": value,
        }

    def _stage_span(self, name, seconds):
        return {
            "type": "span",
            "span_id": 0,
            "name": name,
            "sim_seconds": seconds,
        }

    def test_stage_seconds_objective(self):
        from repro.obs.observatory import SLOObjective, evaluate_slo, SLOSpec

        spec = SLOSpec(
            name="embed",
            objectives=(
                SLOObjective(
                    name="spmm-budget",
                    kind="stage_seconds",
                    target=1.0,
                    stage="spmm",
                ),
            ),
        )
        ok = evaluate_slo([self._stage_span("spmm", 0.5)], spec)
        assert ok.ok and ok.results[0].burn_rate == pytest.approx(0.5)
        bad = evaluate_slo([self._stage_span("spmm", 2.0)], spec)
        assert not bad.ok
        # No matching spans: NaN-pass, not a violation.
        empty = evaluate_slo([self._stage_span("other", 9.0)], spec)
        assert empty.ok

    def test_checkpoint_overhead_objective(self):
        from repro.obs.observatory import SLOObjective, evaluate_slo, SLOSpec

        spec = SLOSpec(
            name="embed",
            objectives=(
                SLOObjective(
                    name="ckpt",
                    kind="checkpoint_overhead_fraction",
                    target=0.1,
                ),
            ),
        )
        records = [
            self._metric("checkpoint.sim_seconds", 0.05),
            self._metric("embed.sim_seconds", 1.0),
        ]
        report = evaluate_slo(records, spec)
        assert report.ok
        assert report.results[0].value == pytest.approx(0.05)
        over = evaluate_slo(
            [
                self._metric("checkpoint.sim_seconds", 0.5),
                self._metric("embed.sim_seconds", 1.0),
            ],
            spec,
        )
        assert not over.ok
        # No embed time at all: NaN-pass.
        assert evaluate_slo(
            [self._metric("checkpoint.sim_seconds", 0.5)], spec
        ).ok

    def test_checkpointed_embed_emits_overhead_metric(self):
        from repro.core.embedding import OMeGaEmbedder
        from repro.memsim.persistence import CheckpointedEmbedder

        edges = chung_lu_edges(90, 500, seed=9)
        embedder = OMeGaEmbedder(OMeGaConfig(n_threads=2, dim=8))
        checkpointed = CheckpointedEmbedder(embedder)
        checkpointed.embed_with_checkpoints(edges, 90)
        overhead = embedder.metrics.counter("checkpoint.sim_seconds").value
        assert overhead > 0.0
        assert overhead == pytest.approx(
            checkpointed.checkpoint_sim_seconds
        )
