"""Unit tests for the sampling/caching/walk substrates."""

import numpy as np
import pytest

from repro.baselines import (
    FeatureCache,
    NeighborSampler,
    RandomWalker,
    belady_hit_rate,
)


class TestNeighborSampler:
    def test_layer_respects_fanout(self, skewed_csr):
        sampler = NeighborSampler(skewed_csr, seed=0)
        frontier = np.array([0, 1, 2])
        nxt = sampler.sample_layer(frontier, fanout=3)
        assert len(nxt) <= 3 * len(frontier)

    def test_layer_nodes_are_neighbors(self, paper_csr):
        sampler = NeighborSampler(paper_csr, seed=0)
        nxt = sampler.sample_layer(np.array([1]), fanout=10)
        true_neighbors, _ = paper_csr.row(1)
        assert set(nxt.tolist()) <= set(true_neighbors.tolist())

    def test_minibatch_includes_seeds(self, skewed_csr):
        sampler = NeighborSampler(skewed_csr, seed=0)
        seeds = np.array([5, 9, 11])
        touched, n_edges = sampler.sample_minibatch(seeds, fanouts=(4, 2))
        assert set(seeds.tolist()) <= set(touched.tolist())
        assert n_edges > 0

    def test_invalid_fanout(self, skewed_csr):
        with pytest.raises(ValueError, match="fanout"):
            NeighborSampler(skewed_csr).sample_layer(np.array([0]), 0)

    def test_isolated_frontier(self, skewed_csr):
        sampler = NeighborSampler(skewed_csr, seed=0)
        nxt = sampler.sample_layer(np.empty(0, dtype=np.int64), fanout=3)
        assert len(nxt) == 0


class TestFeatureCache:
    def test_lru_eviction(self):
        cache = FeatureCache(capacity=2)
        assert not cache.access(1)
        assert not cache.access(2)
        assert cache.access(1)  # hit; 2 becomes LRU... no, 1 refreshed
        assert not cache.access(3)  # evicts 2
        assert not cache.access(2)  # miss: was evicted
        assert cache.access(3)

    def test_hit_rate(self):
        cache = FeatureCache(capacity=10)
        cache.access_many(np.array([1, 2, 3, 1, 2, 3]))
        assert cache.hit_rate == pytest.approx(0.5)

    def test_zero_capacity_never_hits(self):
        cache = FeatureCache(capacity=0)
        cache.access_many(np.array([1, 1, 1]))
        assert cache.hit_rate == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FeatureCache(capacity=-1)


class TestBelady:
    def test_optimal_beats_lru(self):
        rng = np.random.default_rng(0)
        # Zipf-ish access sequence over 200 keys.
        seq = rng.zipf(1.5, size=2000) % 200
        capacity = 20
        lru = FeatureCache(capacity)
        lru.access_many(seq)
        optimal = belady_hit_rate(seq, capacity)
        assert optimal >= lru.hit_rate

    def test_full_capacity_all_hits_after_first(self):
        seq = np.array([1, 2, 3, 1, 2, 3, 1, 2, 3])
        assert belady_hit_rate(seq, capacity=3) == pytest.approx(6 / 9)

    def test_zero_capacity(self):
        assert belady_hit_rate(np.array([1, 2, 3]), 0) == 0.0

    def test_empty_sequence(self):
        assert belady_hit_rate(np.array([]), 5) == 0.0

    def test_capacity_one_repeated_key(self):
        seq = np.array([7, 7, 7, 7])
        assert belady_hit_rate(seq, 1) == pytest.approx(0.75)


class TestRandomWalker:
    def test_walk_length(self, skewed_csr):
        walker = RandomWalker(skewed_csr, seed=0)
        path = walker.walk(0, 20)
        assert 1 <= len(path) <= 21
        assert path[0] == 0

    def test_walk_follows_edges(self, paper_csr):
        walker = RandomWalker(paper_csr, seed=0)
        path = walker.walk(0, 30)
        for u, v in zip(path, path[1:]):
            neighbors, _ = paper_csr.row(int(u))
            assert int(v) in neighbors.tolist()

    def test_walk_stops_at_dead_end(self):
        from repro.formats import CSRMatrix

        # Directed chain 0 -> 1 with node 1 a sink.
        chain = CSRMatrix.from_coo([0], [1], [1.0], (2, 2))
        walker = RandomWalker(chain, seed=0)
        path = walker.walk(0, 10)
        assert path.tolist() == [0, 1]

    def test_negative_length(self, skewed_csr):
        with pytest.raises(ValueError, match="length"):
            RandomWalker(skewed_csr).walk(0, -1)

    def test_corpus_size_estimate(self, skewed_csr):
        walker = RandomWalker(skewed_csr, seed=0)
        corpus = walker.corpus_size(walks_per_node=2, walk_length=10)
        n = skewed_csr.n_rows
        assert 2 * n <= corpus <= 2 * n * 11
