"""Unit tests for the graph generators (Chung-Lu, R-MAT)."""

import numpy as np
import pytest

from repro.graphs import chung_lu_edges, planted_partition_edges, rmat_edges
from repro.graphs.powerlaw import powerlaw_weights
from repro.graphs.stats import degrees_from_edges, gini_coefficient


class TestPowerlawWeights:
    def test_descending(self):
        w = powerlaw_weights(100, gamma=2.3)
        assert np.all(np.diff(w) <= 0)

    def test_min_weight(self):
        w = powerlaw_weights(100, gamma=2.3, min_weight=2.0)
        assert w.min() == pytest.approx(2.0)

    def test_invalid_gamma(self):
        with pytest.raises(ValueError, match="gamma"):
            powerlaw_weights(10, gamma=1.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError, match="n_nodes"):
            powerlaw_weights(0)


class TestChungLu:
    def test_deterministic(self):
        a = chung_lu_edges(200, 1000, seed=3)
        b = chung_lu_edges(200, 1000, seed=3)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = chung_lu_edges(200, 1000, seed=3)
        b = chung_lu_edges(200, 1000, seed=4)
        assert not np.array_equal(a, b)

    def test_no_self_loops_or_duplicates(self):
        edges = chung_lu_edges(300, 2000, seed=1)
        assert np.all(edges[:, 0] != edges[:, 1])
        keys = edges[:, 0] * 300 + edges[:, 1]
        assert len(np.unique(keys)) == len(edges)

    def test_canonical_orientation(self):
        edges = chung_lu_edges(300, 2000, seed=1)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_edge_count_close_to_target(self):
        edges = chung_lu_edges(500, 3000, seed=2)
        assert 0.9 * 3000 <= len(edges) <= 3000

    def test_skewed_degrees(self):
        edges = chung_lu_edges(1000, 10000, gamma=2.1, seed=5)
        degrees = degrees_from_edges(edges, 1000)
        assert gini_coefficient(degrees) > 0.3

    def test_zero_edges(self):
        assert chung_lu_edges(10, 0).shape == (0, 2)

    def test_node_range(self):
        edges = chung_lu_edges(64, 300, seed=9)
        assert edges.min() >= 0 and edges.max() < 64


class TestPlantedPartition:
    def test_shapes(self):
        edges, labels = planted_partition_edges(400, 3000, n_communities=4, seed=0)
        assert labels.shape == (400,)
        assert set(np.unique(labels)) <= set(range(4))
        assert edges.shape[1] == 2

    def test_intra_community_bias(self):
        edges, labels = planted_partition_edges(
            400, 3000, n_communities=4, p_in=0.9, seed=0
        )
        intra = np.mean(labels[edges[:, 0]] == labels[edges[:, 1]])
        # Random assignment would give ~0.25.
        assert intra > 0.5

    def test_invalid_p_in(self):
        with pytest.raises(ValueError, match="p_in"):
            planted_partition_edges(10, 20, p_in=1.5)


class TestRMAT:
    def test_node_count(self):
        edges = rmat_edges(8, edge_factor=8, seed=0)
        assert edges.max() < 2**8

    def test_deterministic(self):
        assert np.array_equal(rmat_edges(8, seed=1), rmat_edges(8, seed=1))

    def test_deduplicated(self):
        edges = rmat_edges(8, seed=0)
        keys = edges[:, 0] * (2**8) + edges[:, 1]
        assert len(np.unique(keys)) == len(edges)
        assert np.all(edges[:, 0] != edges[:, 1])

    def test_raw_mode_keeps_count(self):
        edges = rmat_edges(8, edge_factor=4, seed=0, deduplicate=False)
        assert len(edges) == 4 * 2**8

    def test_skew(self):
        edges = rmat_edges(12, edge_factor=16, seed=0)
        degrees = degrees_from_edges(edges, 2**12)
        assert gini_coefficient(degrees) > 0.5

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError, match="quadrant"):
            rmat_edges(4, a=0.9, b=0.2, c=0.2)

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            rmat_edges(0)

    def test_density_scales_with_edge_factor(self):
        sparse = rmat_edges(10, edge_factor=4, seed=0)
        dense = rmat_edges(10, edge_factor=32, seed=0)
        assert len(dense) > 3 * len(sparse)
