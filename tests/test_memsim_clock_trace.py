"""Unit tests for the simulated clocks and cost ledgers."""

import numpy as np
import pytest

from repro.memsim import CostTrace, SimClock
from repro.memsim.trace import SPMM_CATEGORIES


class TestSimClock:
    def test_advance_and_makespan(self):
        clock = SimClock(3)
        clock.advance(0, 1.0)
        clock.advance(1, 2.5)
        assert clock.makespan == 2.5
        assert clock.mean_time == pytest.approx((1.0 + 2.5) / 3)

    def test_synchronize_is_barrier(self):
        clock = SimClock(2)
        clock.advance(0, 1.0)
        makespan = clock.synchronize()
        assert makespan == 1.0
        assert np.all(clock.thread_times == 1.0)

    def test_advance_all(self):
        clock = SimClock(2)
        clock.advance_all(0.5)
        assert np.all(clock.thread_times == 0.5)

    def test_percentile(self):
        clock = SimClock(10)
        for t in range(10):
            clock.advance(t, float(t))
        assert clock.percentile(50) == pytest.approx(4.5)
        assert clock.percentile(100) == 9.0

    def test_reset(self):
        clock = SimClock(2)
        clock.advance(0, 3.0)
        clock.reset()
        assert clock.makespan == 0.0

    def test_negative_time_rejected(self):
        clock = SimClock(1)
        with pytest.raises(ValueError, match="seconds"):
            clock.advance(0, -1.0)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError, match="n_threads"):
            SimClock(0)

    def test_thread_times_is_copy(self):
        clock = SimClock(2)
        times = clock.thread_times
        times[0] = 99.0
        assert clock.makespan == 0.0


class TestCostTrace:
    def test_charge_and_totals(self):
        trace = CostTrace()
        trace.charge("get_dense_nnz", 2.0, nbytes=100.0)
        trace.charge("get_dense_nnz", 1.0, nbytes=50.0)
        trace.charge("write_result", 1.0)
        assert trace.seconds("get_dense_nnz") == 3.0
        assert trace.bytes_moved("get_dense_nnz") == 150.0
        assert trace.total_seconds == 4.0
        assert trace.fraction("get_dense_nnz") == pytest.approx(0.75)

    def test_unknown_category_is_zero(self):
        trace = CostTrace()
        assert trace.seconds("nope") == 0.0
        assert trace.fraction("nope") == 0.0

    def test_merge(self):
        a, b = CostTrace(), CostTrace()
        a.charge("x", 1.0)
        b.charge("x", 2.0)
        b.charge("y", 3.0)
        a.merge(b)
        assert a.seconds("x") == 3.0
        assert a.seconds("y") == 3.0
        assert b.seconds("x") == 2.0  # the source is untouched

    def test_reset(self):
        trace = CostTrace()
        trace.charge("x", 1.0)
        trace.reset()
        assert trace.total_seconds == 0.0

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError, match="seconds"):
            CostTrace().charge("x", -0.1)

    def test_spmm_categories_are_algorithm1_steps(self):
        assert SPMM_CATEGORIES == (
            "read_index",
            "get_sparse_nnz",
            "get_dense_nnz",
            "accumulate",
            "write_result",
        )

    def test_empty_trace_fraction(self):
        assert CostTrace().fraction("x") == 0.0
