"""Unit tests for the simulated executor and tail-latency statistics."""

import numpy as np
import pytest

from repro.memsim import SimClock
from repro.parallel import SimulatedExecutor, ThreadTask, summarize_thread_times


class TestExecutor:
    def test_tasks_overlap_across_threads(self):
        clock = SimClock(3)
        executor = SimulatedExecutor(clock)
        makespan = executor.run(
            [
                ThreadTask(0, 1.0),
                ThreadTask(1, 2.0),
                ThreadTask(2, 0.5),
            ]
        )
        assert makespan == 2.0

    def test_same_thread_serializes(self):
        clock = SimClock(2)
        executor = SimulatedExecutor(clock)
        makespan = executor.run([ThreadTask(0, 1.0), ThreadTask(0, 1.0)])
        assert makespan == 2.0

    def test_work_callbacks_execute(self):
        clock = SimClock(1)
        executor = SimulatedExecutor(clock)
        sink = []
        executor.run([ThreadTask(0, 0.1, work=lambda: sink.append(1))])
        assert sink == [1]

    def test_invalid_thread_id(self):
        executor = SimulatedExecutor(SimClock(2))
        with pytest.raises(ValueError, match="thread_id"):
            executor.run([ThreadTask(5, 1.0)])

    def test_barrier_synchronizes_clocks(self):
        clock = SimClock(2)
        SimulatedExecutor(clock).run([ThreadTask(0, 3.0)])
        assert np.all(clock.thread_times == 3.0)


class TestThreadStats:
    def test_summary_values(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        stats = summarize_thread_times(times)
        assert stats.n_threads == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.makespan == 4.0
        assert stats.p50 == 2.5

    def test_imbalance_and_cv(self):
        stats = summarize_thread_times(np.array([1.0, 1.0, 2.0]))
        assert stats.imbalance == pytest.approx(2.0 / (4.0 / 3.0))
        assert stats.coefficient_of_variation == pytest.approx(
            np.std([1.0, 1.0, 2.0]) / np.mean([1.0, 1.0, 2.0])
        )

    def test_balanced_distribution(self):
        stats = summarize_thread_times(np.full(8, 2.0))
        assert stats.std == 0.0
        assert stats.imbalance == 1.0
        assert stats.coefficient_of_variation == 0.0

    def test_percentiles_ordered(self, rng):
        stats = summarize_thread_times(rng.exponential(size=100))
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            summarize_thread_times(np.array([]))

    def test_zero_mean_edge_cases(self):
        stats = summarize_thread_times(np.zeros(3))
        assert stats.imbalance == 1.0
        assert stats.coefficient_of_variation == 0.0
