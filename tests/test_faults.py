"""Unit tests for the fault-injection subsystem and crash recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OMeGaConfig, OMeGaEmbedder, PIPELINE_STAGES
from repro.core.asl import RetryPolicy, StreamingLoader, StreamPlan
from repro.core.config import MemoryMode, PlacementScheme
from repro.core.nadp import FALLBACK_ORDER, plan_tier_fallback
from repro.faults import (
    ASL_LOAD_SITE,
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    RetryExhaustedError,
)
from repro.graphs import chung_lu_edges
from repro.memsim.persistence import CheckpointedEmbedder
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def fault_edges():
    return chung_lu_edges(300, 2500, seed=9)


@pytest.fixture(scope="module")
def fault_config():
    return OMeGaConfig(n_threads=4, dim=8)


@pytest.fixture(scope="module")
def fresh_result(fault_edges, fault_config):
    return OMeGaEmbedder(fault_config).embed_edges(fault_edges, 300)


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent("meteor", "factorization")
        with pytest.raises(ValueError, match="count"):
            FaultEvent("transient_load", ASL_LOAD_SITE, count=0)
        with pytest.raises(ValueError, match="factor"):
            FaultEvent("pm_degrade", "pm", factor=0.0)
        with pytest.raises(ValueError, match="phase"):
            FaultEvent("crash", "factorization", phase="during_lunch")

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            events=(
                FaultEvent("crash", "factorization", phase="before_commit"),
                FaultEvent("transient_load", ASL_LOAD_SITE, count=2),
                FaultEvent("pm_degrade", "pm", factor=0.5),
                FaultEvent("tier_loss", "propagation"),
            ),
            seed=3,
        )
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_seeded_plan_deterministic(self):
        assert FaultPlan.random(seed=7) == FaultPlan.random(seed=7)
        assert FaultPlan.random(seed=7) != FaultPlan.random(seed=8)

    def test_seeded_plan_events_valid(self):
        for seed in range(20):
            plan = FaultPlan.random(seed=seed, n_events=5)
            assert len(plan.events) == 5  # validation ran in __post_init__

    def test_exceptions_are_typed(self):
        assert issubclass(InjectedCrash, FaultError)
        assert issubclass(RetryExhaustedError, FaultError)
        assert issubclass(FaultError, RuntimeError)


class TestFaultInjector:
    def test_crash_consumed_once(self):
        plan = FaultPlan(events=(FaultEvent("crash", "factorization"),))
        injector = FaultInjector(plan)
        assert injector.should_crash("graph_read") is False
        assert injector.should_crash("factorization") is True
        assert injector.should_crash("factorization") is False

    def test_crash_phase_must_match(self):
        plan = FaultPlan(
            events=(
                FaultEvent("crash", "factorization", phase="before_commit"),
            )
        )
        injector = FaultInjector(plan)
        assert injector.should_crash("factorization") is False
        assert (
            injector.should_crash("factorization", phase="before_commit")
            is True
        )

    def test_transient_count(self):
        plan = FaultPlan(
            events=(FaultEvent("transient_load", ASL_LOAD_SITE, count=2),)
        )
        injector = FaultInjector(plan)
        assert injector.take_transient_failure() is True
        assert injector.take_transient_failure() is True
        assert injector.take_transient_failure() is False

    def test_pm_derate_persists(self):
        plan = FaultPlan(
            events=(FaultEvent("pm_degrade", "pm", factor=0.5),)
        )
        metrics = MetricsRegistry()
        injector = FaultInjector(plan, metrics)
        assert injector.pm_derate() == 0.5
        assert injector.pm_derate() == 0.5  # does not recover
        # ...but the injection is only counted once.
        assert metrics.counter("faults.injected", kind="pm_degrade").value == 1

    def test_injections_recorded_in_metrics(self):
        plan = FaultPlan(
            events=(
                FaultEvent("crash", "graph_read"),
                FaultEvent("tier_loss", "propagation"),
            )
        )
        metrics = MetricsRegistry()
        injector = FaultInjector(plan, metrics)
        injector.should_crash("graph_read")
        injector.tier_loss("propagation")
        assert metrics.counter("faults.injected", kind="crash").value == 1
        assert metrics.counter("faults.injected", kind="tier_loss").value == 1
        assert injector.pending == 0


class TestRetry:
    def _plan(self):
        return StreamPlan(
            n_partitions=4, batch_bytes=1024.0, total_load_seconds=0.4
        )

    def test_retry_charges_simulated_clock(self):
        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        faults = FaultInjector(
            FaultPlan(
                events=(
                    FaultEvent("transient_load", ASL_LOAD_SITE, count=2),
                )
            )
        )
        metrics = MetricsRegistry()
        policy = RetryPolicy(
            max_retries=3, base_delay_seconds=1e-3, multiplier=2.0
        )
        outcome = loader.load(
            self._plan(), 0.4, metrics=metrics, faults=faults, retry=policy
        )
        assert outcome.attempts == 3
        # Two wasted batches (0.1 each) plus backoff 1ms + 2ms.
        assert outcome.retry_seconds == pytest.approx(0.2 + 0.003)
        assert outcome.total_seconds > outcome.exposed_seconds
        assert metrics.counter("asl.retries").value == 2
        assert metrics.counter("asl.retry_seconds").value == pytest.approx(
            outcome.retry_seconds
        )

    def test_retry_exhaustion_raises_typed_error(self):
        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        faults = FaultInjector(
            FaultPlan(
                events=(
                    FaultEvent("transient_load", ASL_LOAD_SITE, count=10),
                )
            )
        )
        policy = RetryPolicy(max_retries=2)
        with pytest.raises(RetryExhaustedError) as err:
            loader.load(self._plan(), 0.4, faults=faults, retry=policy)
        assert err.value.site == ASL_LOAD_SITE
        assert err.value.attempts == 3

    def test_no_faults_single_attempt(self):
        loader = StreamingLoader(pm_seq_read_bandwidth=1e9)
        outcome = loader.load(self._plan(), 0.4)
        assert outcome.attempts == 1
        assert outcome.retry_seconds == 0.0

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)


class TestTierFallback:
    def test_fallback_order_walks_capacity(self):
        # Fits one socket's DRAM share -> local.
        assert (
            plan_tier_fallback(100.0, 1000.0, 2, 0.5).action == "local_dram"
        )
        # Fits aggregate DRAM only -> remote (interleaved).
        assert (
            plan_tier_fallback(700.0, 1000.0, 2, 0.5).action == "remote_dram"
        )
        # Does not fit DRAM -> re-plan ASL with a tighter budget.
        replan = plan_tier_fallback(5000.0, 1000.0, 2, 0.5)
        assert replan.action == "asl_replan"
        assert replan.config_overrides["dram_headroom"] == 0.25

    def test_fallback_actions_named(self):
        assert ("local_dram", "remote_dram", "asl_replan") == FALLBACK_ORDER

    def test_dram_fallbacks_disable_streaming(self):
        fallback = plan_tier_fallback(100.0, 1000.0, 2, 0.5)
        assert fallback.config_overrides["memory_mode"] is MemoryMode.DRAM_ONLY
        assert fallback.config_overrides["placement"] is PlacementScheme.LOCAL
        assert fallback.config_overrides["streaming_enabled"] is False

    def test_degraded_run_records_metrics(self, fault_edges, fault_config):
        plan = FaultPlan(events=(FaultEvent("tier_loss", "factorization"),))
        metrics = MetricsRegistry()
        injector = FaultInjector(plan, metrics)
        embedder = OMeGaEmbedder(
            fault_config, metrics=metrics, faults=injector
        )
        result = embedder.embed_edges(fault_edges, 300)
        assert result.embedding.shape == (300, 8)
        labelled = [
            metric
            for metric in metrics
            if metric.name == "nadp.degraded_placements"
        ]
        assert sum(c.value for c in labelled) == 1
        assert metrics.counter("faults.injected", kind="tier_loss").value == 1

    def test_degraded_run_preserves_quality(
        self, fault_edges, fault_config, fresh_result
    ):
        plan = FaultPlan(events=(FaultEvent("tier_loss", "graph_read"),))
        injector = FaultInjector(plan)
        embedder = OMeGaEmbedder(fault_config, faults=injector)
        degraded = embedder.embed_edges(fault_edges, 300)
        # Placement is cost-only; degradation never changes the numbers.
        assert np.array_equal(degraded.embedding, fresh_result.embedding)


class TestCrashRecovery:
    @pytest.mark.parametrize("stage", PIPELINE_STAGES)
    @pytest.mark.parametrize("phase", ["after_commit", "before_commit"])
    def test_crash_at_every_stage_boundary_resumes_identically(
        self, stage, phase, fault_edges, fault_config, fresh_result
    ):
        plan = FaultPlan(events=(FaultEvent("crash", stage, phase=phase),))
        metrics = MetricsRegistry()
        injector = FaultInjector(plan, metrics)
        checkpointed = CheckpointedEmbedder(
            OMeGaEmbedder(fault_config, metrics=metrics)
        )
        with pytest.raises(InjectedCrash) as err:
            checkpointed.embed_with_checkpoints(
                fault_edges, 300, faults=injector
            )
        assert err.value.site == stage
        expected_durable = list(
            PIPELINE_STAGES[: PIPELINE_STAGES.index(stage)]
        )
        if phase == "after_commit":
            expected_durable.append(stage)
        assert checkpointed.wal.stages == expected_durable

        result = checkpointed.resume(faults=injector)
        assert np.array_equal(result.embedding, fresh_result.embedding)
        assert result.sim_seconds == fresh_result.sim_seconds
        assert result.n_spmm == fresh_result.n_spmm
        assert metrics.counter("checkpoint.resumed_runs").value == 1
        assert metrics.counter(
            "checkpoint.recovered_stages"
        ).value == len(expected_durable)

    def test_recovered_sim_seconds_reported(
        self, fault_edges, fault_config, fresh_result
    ):
        plan = FaultPlan(events=(FaultEvent("crash", "factorization"),))
        metrics = MetricsRegistry()
        injector = FaultInjector(plan, metrics)
        checkpointed = CheckpointedEmbedder(
            OMeGaEmbedder(fault_config, metrics=metrics)
        )
        with pytest.raises(InjectedCrash):
            checkpointed.embed_with_checkpoints(
                fault_edges, 300, faults=injector
            )
        result = checkpointed.resume()
        recovered = metrics.counter(
            "checkpoint.recovered_sim_seconds"
        ).value
        assert 0.0 < recovered < result.sim_seconds
        # Recovered + recomputed partitions the uninterrupted total.
        assert result.sim_seconds == fresh_result.sim_seconds

    def test_multiple_crashes_resume_repeatedly(
        self, fault_edges, fault_config, fresh_result
    ):
        plan = FaultPlan(
            events=(
                FaultEvent("crash", "graph_read"),
                FaultEvent("crash", "propagation", phase="before_commit"),
            )
        )
        injector = FaultInjector(plan)
        checkpointed = CheckpointedEmbedder(OMeGaEmbedder(fault_config))
        with pytest.raises(InjectedCrash):
            checkpointed.embed_with_checkpoints(
                fault_edges, 300, faults=injector
            )
        with pytest.raises(InjectedCrash):
            checkpointed.resume(faults=injector)
        result = checkpointed.resume(faults=injector)
        assert np.array_equal(result.embedding, fresh_result.embedding)

    def test_resume_without_run_rejected(self, fault_config):
        checkpointed = CheckpointedEmbedder(OMeGaEmbedder(fault_config))
        with pytest.raises(RuntimeError, match="nothing to resume"):
            checkpointed.resume()

    def test_wal_commit_charges_persistence(self, fault_edges, fault_config):
        checkpointed = CheckpointedEmbedder(OMeGaEmbedder(fault_config))
        checkpointed.embed_with_checkpoints(fault_edges, 300)
        # One WAL record per stage, each with two fences, plus the final
        # shadow commit's two.
        assert checkpointed.domain.fences == 2 * len(PIPELINE_STAGES) + 2
        assert checkpointed.checkpoint_sim_seconds > 0


class TestFaultyStreamingRuns:
    def test_pm_degrade_slows_but_preserves_output(
        self, fault_edges, fault_config, fresh_result
    ):
        plan = FaultPlan(
            events=(FaultEvent("pm_degrade", "pm", factor=0.25),)
        )
        injector = FaultInjector(plan)
        embedder = OMeGaEmbedder(fault_config, faults=injector)
        degraded = embedder.embed_edges(fault_edges, 300)
        assert np.array_equal(degraded.embedding, fresh_result.embedding)
        assert degraded.sim_seconds > fresh_result.sim_seconds

    def test_transient_faults_retry_and_preserve_output(
        self, fault_edges, fault_config, fresh_result
    ):
        plan = FaultPlan(
            events=(FaultEvent("transient_load", ASL_LOAD_SITE, count=3),)
        )
        metrics = MetricsRegistry()
        injector = FaultInjector(plan, metrics)
        embedder = OMeGaEmbedder(
            fault_config, metrics=metrics, faults=injector
        )
        result = embedder.embed_edges(fault_edges, 300)
        assert np.array_equal(result.embedding, fresh_result.embedding)
        assert metrics.counter("asl.retries").value == 3
        assert result.sim_seconds > fresh_result.sim_seconds


@settings(max_examples=8, deadline=None)
@given(
    stage=st.sampled_from(PIPELINE_STAGES),
    phase=st.sampled_from(["after_commit", "before_commit"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_resume_equals_fresh_run_property(stage, phase, seed):
    """Resume after any single crash reproduces the fresh run exactly."""
    edges = chung_lu_edges(120, 700, seed=seed % 7)
    config = OMeGaConfig(n_threads=2, dim=8, seed=seed)
    fresh = OMeGaEmbedder(config).embed_edges(edges, 120)

    plan = FaultPlan(events=(FaultEvent("crash", stage, phase=phase),))
    injector = FaultInjector(plan)
    checkpointed = CheckpointedEmbedder(OMeGaEmbedder(config))
    with pytest.raises(InjectedCrash):
        checkpointed.embed_with_checkpoints(edges, 120, faults=injector)
    resumed = checkpointed.resume(faults=injector)
    assert np.array_equal(resumed.embedding, fresh.embedding)
    assert resumed.sim_seconds == fresh.sim_seconds
