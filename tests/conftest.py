"""Shared fixtures: small deterministic graphs and engine configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OMeGaConfig
from repro.formats import CSDBMatrix, CSRMatrix, edges_to_csdb, edges_to_csr
from repro.graphs import chung_lu_edges


#: The example graph of Fig. 5(a): 7 nodes, 11 undirected edges, chosen so
#: the degree sequence matches the paper's (one deg-4 node block, etc.).
PAPER_EDGES = np.array(
    [
        [0, 1],
        [0, 2],
        [0, 3],
        [0, 5],
        [1, 3],
        [1, 4],
        [1, 6],
        [2, 4],
        [2, 6],
        [3, 5],
        [4, 6],
    ],
    dtype=np.int64,
)


@pytest.fixture
def paper_edges() -> np.ndarray:
    """Edge list of the running example graph (|V|=7, |E|=11)."""
    return PAPER_EDGES.copy()


@pytest.fixture
def paper_csr(paper_edges) -> CSRMatrix:
    """CSR adjacency of the example graph."""
    return edges_to_csr(paper_edges, 7)


@pytest.fixture
def paper_csdb(paper_edges) -> CSDBMatrix:
    """CSDB adjacency of the example graph."""
    return edges_to_csdb(paper_edges, 7)


@pytest.fixture(scope="session")
def skewed_edges() -> np.ndarray:
    """A 600-node power-law graph (deterministic)."""
    return chung_lu_edges(600, 4000, gamma=2.2, seed=7)


@pytest.fixture(scope="session")
def skewed_csdb(skewed_edges) -> CSDBMatrix:
    """CSDB adjacency of the skewed test graph."""
    return edges_to_csdb(skewed_edges, 600)


@pytest.fixture(scope="session")
def skewed_csr(skewed_edges) -> CSRMatrix:
    """CSR adjacency of the skewed test graph."""
    return edges_to_csr(skewed_edges, 600)


@pytest.fixture
def small_config() -> OMeGaConfig:
    """A fast engine configuration for unit tests."""
    return OMeGaConfig(n_threads=4, dim=8)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test inputs."""
    return np.random.default_rng(42)
