"""Unit tests for the prefetcher autotuner and clustering evaluation."""

import numpy as np
import pytest

from repro.core import OMeGaConfig
from repro.core.tuning import tune_prefetcher
from repro.eval.clustering import (
    clustering_nmi,
    kmeans,
    normalized_mutual_information,
)
from repro.formats import edges_to_csdb
from repro.graphs import planted_partition_edges
from repro.prone import prone_embed
from repro.prone.model import ProNEParams


class TestTuner:
    @pytest.fixture(scope="class")
    def result(self, skewed_csdb=None):
        from repro.graphs import chung_lu_edges

        matrix = edges_to_csdb(chung_lu_edges(500, 4000, seed=3), 500)
        config = OMeGaConfig(n_threads=8, dim=8, sigma=0.01)
        return (
            tune_prefetcher(
                matrix,
                config,
                eta_grid=(0.005, 0.05),
                sigma_grid=(0.05, 0.2, 0.4),
            ),
            config,
        )

    def test_best_is_grid_minimum(self, result):
        tuned, _ = result
        assert tuned.sim_seconds == min(tuned.sweep.values())
        assert (tuned.eta, tuned.sigma) in tuned.sweep

    def test_improves_on_bad_baseline(self, result):
        tuned, _ = result
        # The baseline used sigma=0.01, far below the sweet spot.
        assert tuned.improvement > 0.0
        assert tuned.sim_seconds < tuned.baseline_seconds

    def test_sweep_covers_grid(self, result):
        tuned, _ = result
        assert len(tuned.sweep) == 2 * 3

    def test_config_applies_winner(self, result):
        tuned, config = result
        tuned_config = tuned.config(config)
        assert tuned_config.eta == tuned.eta
        assert tuned_config.sigma == tuned.sigma
        assert tuned_config.n_threads == config.n_threads

    def test_empty_grid_rejected(self):
        matrix = edges_to_csdb(np.array([[0, 1]]), 4)
        with pytest.raises(ValueError, match="non-empty"):
            tune_prefetcher(matrix, eta_grid=())


class TestKMeans:
    def test_separable_blobs(self, rng):
        blobs = np.vstack(
            [
                rng.normal((0, 0), 0.2, size=(40, 2)),
                rng.normal((5, 5), 0.2, size=(40, 2)),
                rng.normal((0, 5), 0.2, size=(40, 2)),
            ]
        )
        labels, centers = kmeans(blobs, 3, seed=0)
        truth = np.repeat([0, 1, 2], 40)
        assert normalized_mutual_information(labels, truth) > 0.95
        assert centers.shape == (3, 2)

    def test_k_one(self, rng):
        points = rng.standard_normal((20, 3))
        labels, centers = kmeans(points, 1, seed=0)
        assert np.all(labels == 0)
        assert np.allclose(centers[0], points.mean(axis=0))

    def test_deterministic(self, rng):
        points = rng.standard_normal((50, 4))
        a, _ = kmeans(points, 4, seed=7)
        b, _ = kmeans(points, 4, seed=7)
        assert np.array_equal(a, b)

    def test_invalid_k(self, rng):
        with pytest.raises(ValueError, match="k must"):
            kmeans(rng.standard_normal((5, 2)), 6)

    def test_invalid_points(self):
        with pytest.raises(ValueError, match="non-empty"):
            kmeans(np.empty((0, 2)), 1)


class TestNMI:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(
            1.0
        )

    def test_permuted_label_ids_still_perfect(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 3, 3])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self, rng):
        a = rng.integers(0, 4, size=3000)
        b = rng.integers(0, 4, size=3000)
        assert normalized_mutual_information(a, b) < 0.02

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, size=200)
        b = rng.integers(0, 5, size=200)
        assert normalized_mutual_information(
            a, b
        ) == pytest.approx(normalized_mutual_information(b, a))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths differ"):
            normalized_mutual_information([0, 1], [0])

    def test_single_cluster_each(self):
        assert normalized_mutual_information([0, 0], [1, 1]) == 1.0


class TestClusteringProbe:
    def test_embeddings_cluster_planted_communities(self):
        edges, labels = planted_partition_edges(
            400, 6000, n_communities=4, p_in=0.9, seed=6
        )
        emb = prone_embed(edges_to_csdb(edges, 400), ProNEParams(dim=16, order=8))
        nmi = clustering_nmi(emb, labels, seed=0)
        assert nmi > 0.5  # random clustering would give ~0
