"""Integration tests: telemetry through the pipeline, export and report.

The load-bearing assertion (ISSUE 1 acceptance): an instrumented
``OMeGaEmbedder.embed`` emits the five ``SPMM_CATEGORIES`` summary spans
and their simulated seconds agree with ``CostTrace.breakdown()`` to
1e-9 — both in memory and after a JSONL round trip.
"""

import numpy as np
import pytest

from repro.bench.harness import run_experiment, telemetry_session
from repro.cli import main
from repro.core import OMeGaConfig, OMeGaEmbedder, SpMMEngine
from repro.formats import edges_to_csdb
from repro.graphs import chung_lu_edges, save_edge_list
from repro.memsim import HeterogeneousAllocator, MemoryKind, paper_testbed
from repro.memsim.trace import SPMM_CATEGORIES, CostTrace
from repro.obs import (
    MetricsRegistry,
    SpanTracer,
    TelemetrySession,
    merged_cost_trace,
    read_jsonl,
    render_report,
    spmm_step_breakdown,
    split_records,
)


@pytest.fixture
def small_edges():
    return chung_lu_edges(300, 1500, seed=3)


def instrumented_embed(edges, n_nodes=300, **overrides):
    session = TelemetrySession(meta={"test": "integration"})
    config = OMeGaConfig(n_threads=4, dim=8, **overrides)
    embedder = OMeGaEmbedder(
        config, tracer=session.tracer, metrics=session.metrics
    )
    result = embedder.embed_edges(edges, n_nodes)
    session.add_cost_trace("embed", result.trace)
    return session, result


class TestEmbedderTelemetry:
    def test_spmm_category_spans_match_cost_trace(self, small_edges):
        session, result = instrumented_embed(small_edges)
        for category in SPMM_CATEGORIES:
            spans = session.tracer.find(category)
            assert len(spans) == 1, category
            assert spans[0].sim_seconds == pytest.approx(
                result.trace.seconds(category), abs=1e-9
            )

    def test_root_span_matches_sim_seconds(self, small_edges):
        session, result = instrumented_embed(small_edges)
        root = session.tracer.find("embed")[0]
        assert root.sim_seconds == pytest.approx(result.sim_seconds, abs=1e-9)
        assert root.attributes["n_spmm"] == result.n_spmm

    def test_pipeline_stage_spans_present(self, small_edges):
        session, _ = instrumented_embed(small_edges)
        names = {s.name for s in session.tracer.finished}
        for stage in (
            "graph_read", "factorization", "tsvd", "smf_matrix",
            "propagation", "laplacian", "chebyshev_filter", "densify",
            "spmm", "spmm_steps",
        ):
            assert stage in names, stage

    def test_stage_spans_partition_the_sim_time(self, small_edges):
        session, result = instrumented_embed(small_edges)
        tracer = session.tracer
        stages = ("graph_read", "factorization", "propagation")
        total = sum(tracer.find(s)[0].sim_seconds for s in stages)
        assert total == pytest.approx(result.sim_seconds, abs=1e-9)

    def test_wofp_counters_nonzero_with_prefetch(self, small_edges):
        session, _ = instrumented_embed(small_edges)
        assert session.metrics.value("wofp.hit_nnz") > 0
        assert session.metrics.value("wofp.miss_nnz") > 0
        assert session.metrics.value("wofp.pinned_bytes") > 0

    def test_wofp_counters_zero_without_prefetch(self, small_edges):
        session, _ = instrumented_embed(
            small_edges, prefetcher_enabled=False
        )
        assert session.metrics.value("wofp.hit_nnz") == 0.0
        assert session.metrics.family_total("wofp.plans") > 0  # disabled plans

    def test_asl_exposure_matches_stream_ledger(self, small_edges):
        session, result = instrumented_embed(small_edges)
        exposed = session.metrics.value("asl.exposed_seconds")
        assert exposed == pytest.approx(
            result.trace.seconds("stream_load"), abs=1e-9
        )
        assert session.metrics.value("asl.hidden_seconds") >= 0.0

    def test_eata_partition_gauges(self, small_edges):
        session, _ = instrumented_embed(small_edges)
        assert session.metrics.value("eata.partitions") == 4
        for thread in range(4):
            z = session.metrics.value("eata.partition.z_entropy", thread=thread)
            assert 0.0 <= z <= 1.0
        assert session.metrics.family_total("eata.allocations") > 0


class TestEngineTelemetry:
    def test_spmm_span_per_multiply(self, small_edges):
        tracer, metrics = SpanTracer(), MetricsRegistry()
        engine = SpMMEngine(
            OMeGaConfig(n_threads=4, dim=8), tracer=tracer, metrics=metrics
        )
        matrix = edges_to_csdb(small_edges, 300)
        dense = np.random.default_rng(0).standard_normal((300, 8))
        result = engine.multiply(matrix, dense)
        (span,) = tracer.find("spmm")
        assert span.sim_seconds == pytest.approx(result.sim_seconds, abs=1e-12)
        assert span.attributes["nnz"] == matrix.nnz
        assert metrics.value("spmm.calls") == 1
        assert metrics.value("spmm.nnz") == matrix.nnz


class TestCostTraceRoundTrip:
    def test_to_from_dict(self):
        trace = CostTrace()
        trace.charge("read_index", 1.25, nbytes=64.0)
        trace.charge("accumulate", 0.5)
        clone = CostTrace.from_dict(trace.to_dict())
        assert clone.breakdown() == trace.breakdown()
        assert clone.bytes_moved("read_index") == 64.0

    def test_merge_of_per_thread_ledgers_round_trips(self):
        a, b = CostTrace(), CostTrace()
        a.charge("x", 1.0, nbytes=10.0)
        b.charge("x", 2.0, nbytes=20.0)
        b.charge("y", 3.0)
        merged = CostTrace.from_dict(a.to_dict())
        merged.merge(CostTrace.from_dict(b.to_dict()))
        assert merged.seconds("x") == 3.0
        assert merged.bytes_moved("x") == 30.0
        assert merged.seconds("y") == 3.0


class TestExportAndReport:
    def test_jsonl_round_trip_preserves_breakdown(self, tmp_path, small_edges):
        session, result = instrumented_embed(small_edges)
        path = session.save(tmp_path / "t.jsonl")
        records = read_jsonl(path)
        groups = split_records(records)
        assert groups["meta"][0]["telemetry_version"] == 1
        assert groups["span"] and groups["metric"] and groups["cost_trace"]
        restored = merged_cost_trace(records)
        for category, seconds in result.trace.breakdown().items():
            assert restored.seconds(category) == pytest.approx(
                seconds, abs=1e-9
            )

    def test_spmm_step_breakdown_matches(self, tmp_path, small_edges):
        session, result = instrumented_embed(small_edges)
        path = session.save(tmp_path / "t.jsonl")
        breakdown = spmm_step_breakdown(read_jsonl(path))
        for category in SPMM_CATEGORIES:
            assert breakdown[category] == pytest.approx(
                result.trace.seconds(category), abs=1e-9
            )

    def test_render_report_contains_tables(self, tmp_path, small_edges):
        session, _ = instrumented_embed(small_edges)
        path = session.save(tmp_path / "t.jsonl")
        text = render_report(read_jsonl(path))
        assert "SpMM step breakdown" in text
        for category in SPMM_CATEGORIES:
            assert category in text
        assert "wofp.hit_nnz" in text
        assert "Pipeline spans" in text

    def test_span_only_records_fall_back(self):
        tracer = SpanTracer()
        for category in SPMM_CATEGORIES:
            tracer.record(category, sim_seconds=1.0)
        restored = merged_cost_trace(tracer.to_records())
        assert restored.total_seconds == pytest.approx(5.0)

    def test_empty_file_reports_gracefully(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "no spans" in render_report(read_jsonl(path))

    def test_invalid_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid telemetry"):
            read_jsonl(path)


class TestCliTelemetry:
    def test_embed_telemetry_and_report(self, tmp_path, capsys):
        graph = tmp_path / "graph.txt"
        save_edge_list(graph, chung_lu_edges(120, 600, seed=0))
        out = tmp_path / "t.jsonl"
        code = main(
            [
                "embed", str(graph), "--threads", "2", "--dim", "8",
                "--telemetry-out", str(out),
            ]
        )
        assert code == 0
        assert "telemetry written" in capsys.readouterr().out
        # Acceptance: report totals agree with the exported ledger.
        records = read_jsonl(out)
        breakdown = spmm_step_breakdown(records)
        (ledger,) = split_records(records)["cost_trace"]
        for category in SPMM_CATEGORIES:
            assert breakdown[category] == pytest.approx(
                ledger["seconds"][category], abs=1e-9
            )
        hit = sum(
            m["value"]
            for m in split_records(records)["metric"]
            if m["name"] == "wofp.hit_nnz"
        )
        assert hit > 0
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "SpMM step breakdown" in text
        assert "read_index" in text

    def test_spmm_telemetry(self, tmp_path, capsys):
        graph = tmp_path / "graph.txt"
        save_edge_list(graph, chung_lu_edges(120, 600, seed=0))
        out = tmp_path / "s.jsonl"
        code = main(
            ["spmm", str(graph), "--threads", "2", "--telemetry-out", str(out)]
        )
        assert code == 0
        names = {s["name"] for s in split_records(read_jsonl(out))["span"]}
        assert "spmm" in names


class TestHarnessTelemetry:
    def test_run_experiment_records_span_and_ledger(self, small_edges):
        session = telemetry_session(bench="unit")
        config = OMeGaConfig(n_threads=2, dim=8)
        matrix = edges_to_csdb(small_edges, 300)
        dense = np.random.default_rng(0).standard_normal((300, 8))
        engine = SpMMEngine(config)

        result = run_experiment(
            "one_spmm", engine.multiply, matrix, dense, session=session
        )
        (span,) = session.tracer.find("one_spmm")
        assert span.sim_seconds == pytest.approx(result.sim_seconds)
        assert session.cost_trace("one_spmm") is not None
        assert session.meta == {"bench": "unit"}

    def test_run_experiment_without_session_is_passthrough(self):
        assert run_experiment("noop", lambda: 42) == 42


class TestAllocatorMetrics:
    def test_allocation_metrics_flow(self):
        metrics = MetricsRegistry()
        allocator = HeterogeneousAllocator(paper_testbed(), metrics=metrics)
        array = np.zeros(1024, dtype=np.float64)
        handle = allocator.allocate(array, MemoryKind.DRAM, socket=0)
        assert metrics.value("mem.alloc.count", tier="dram", policy="local") == 1
        assert metrics.value("mem.alloc.bytes", tier="dram") == array.nbytes
        assert (
            metrics.value("mem.used_bytes", tier="dram", socket=0)
            == array.nbytes
        )
        allocator.free(handle)
        assert metrics.value("mem.free.count", tier="dram") == 1
        assert metrics.value("mem.used_bytes", tier="dram", socket=0) == 0
