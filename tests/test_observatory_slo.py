"""Declarative SLO evaluation with error-budget burn rates."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.observatory.slo import (
    SLOObjective,
    SLOSpec,
    evaluate_slo,
    render_slo,
)


def _serve_records(latencies, submitted, served, deadline=0, trips=0):
    registry = MetricsRegistry()
    hist = registry.histogram(
        "serve.latency", buckets=(1e-4, 1e-3, 1e-2), klass="interactive"
    )
    for value in latencies:
        hist.observe(value)
    registry.counter("serve.submitted").inc(submitted)
    registry.counter(
        "serve.responses", status="served", klass="interactive"
    ).inc(served)
    if deadline:
        registry.counter(
            "serve.responses", status="deadline_exceeded", klass="interactive"
        ).inc(deadline)
    if trips:
        registry.counter("serve.breaker.trips").inc(trips)
    return registry.to_records()


class TestObjectiveValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SLOObjective(name="x", kind="nope", target=1.0)

    def test_latency_needs_quantile(self):
        with pytest.raises(ValueError, match="q in"):
            SLOObjective(name="x", kind="latency_quantile", target=0.1)
        with pytest.raises(ValueError, match="q in"):
            SLOObjective(name="x", kind="latency_quantile", target=0.1, q=1.0)

    def test_fraction_targets_bounded(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            SLOObjective(name="x", kind="served_fraction", target=1.5)

    def test_status_fraction_needs_status(self):
        with pytest.raises(ValueError, match="status"):
            SLOObjective(name="x", kind="status_fraction", target=0.1)

    def test_negative_trips_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            SLOObjective(name="x", kind="breaker_trips", target=-1)


class TestSpecIO:
    def test_from_dict_and_roundtrip(self, tmp_path):
        spec = SLOSpec.from_dict(
            {
                "name": "s",
                "objectives": [
                    {"name": "p99", "kind": "latency_quantile",
                     "q": 0.99, "target": 0.002, "klass": "interactive"},
                    {"name": "served", "kind": "served_fraction",
                     "target": 0.9},
                ],
            }
        )
        path = spec.save(tmp_path / "slo.json")
        loaded = SLOSpec.load(path)
        assert loaded == spec

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="objectives"):
            SLOSpec.from_dict({"objectives": []})


class TestEvaluation:
    def test_latency_quantile_pass_and_fail(self):
        fast = _serve_records([5e-5] * 100, 100, 100)
        slow = _serve_records([5e-5] * 50 + [5e-3] * 50, 100, 100)
        spec = SLOSpec.from_dict(
            {"objectives": [{"name": "p99", "kind": "latency_quantile",
                             "q": 0.99, "target": 1e-3,
                             "klass": "interactive"}]}
        )
        ok = evaluate_slo(fast, spec)
        assert ok.ok and ok.results[0].burn_rate == 0.0
        bad = evaluate_slo(slow, spec)
        assert not bad.ok
        # Half the observations blow a 1% budget: 0.5 / 0.01 = 50x burn.
        assert bad.results[0].burn_rate == pytest.approx(50.0)
        assert [r.objective.name for r in bad.violations] == ["p99"]

    def test_served_fraction(self):
        records = _serve_records([1e-5] * 10, 100, 90, deadline=10)
        spec = SLOSpec.from_dict(
            {"objectives": [
                {"name": "served", "kind": "served_fraction", "target": 0.8},
            ]}
        )
        report = evaluate_slo(records, spec)
        result = report.results[0]
        assert result.passed and result.value == pytest.approx(0.9)
        # 10% unserved against a 20% budget: half the budget burned.
        assert result.burn_rate == pytest.approx(0.5)

    def test_status_fraction_violated(self):
        records = _serve_records([1e-5] * 10, 100, 60, deadline=40)
        spec = SLOSpec.from_dict(
            {"objectives": [
                {"name": "misses", "kind": "status_fraction",
                 "status": "deadline_exceeded", "target": 0.2},
            ]}
        )
        result = evaluate_slo(records, spec).results[0]
        assert not result.passed
        assert result.value == pytest.approx(0.4)
        assert result.burn_rate == pytest.approx(2.0)

    def test_breaker_trips(self):
        records = _serve_records([1e-5], 1, 1, trips=2)
        spec = SLOSpec.from_dict(
            {"objectives": [
                {"name": "b", "kind": "breaker_trips", "target": 3},
            ]}
        )
        result = evaluate_slo(records, spec).results[0]
        assert result.passed and result.burn_rate == pytest.approx(2 / 3)

    def test_no_data_passes_vacuously(self):
        spec = SLOSpec.from_dict(
            {"objectives": [
                {"name": "p99", "kind": "latency_quantile", "q": 0.99,
                 "target": 1e-3},
                {"name": "served", "kind": "served_fraction", "target": 0.9},
                {"name": "shed", "kind": "status_fraction",
                 "status": "shed", "target": 0.0},
            ]}
        )
        report = evaluate_slo([], spec)
        assert report.ok
        for result in report.results:
            assert math.isnan(result.value)
            assert result.burn_rate == 0.0

    def test_pass_flag_agrees_with_burn_rate_sign(self):
        """burn > 1 iff the bounded quantity breaches its budget, for the
        fraction/count kinds (latency is bucket-approximate)."""
        for served in (50, 85, 99):
            records = _serve_records(
                [1e-5] * 10, 100, served, deadline=100 - served
            )
            spec = SLOSpec.from_dict(
                {"objectives": [
                    {"name": "served", "kind": "served_fraction",
                     "target": 0.9},
                    {"name": "m", "kind": "status_fraction",
                     "status": "deadline_exceeded", "target": 0.10},
                ]}
            )
            for result in evaluate_slo(records, spec).results:
                assert result.passed == (result.burn_rate <= 1.0 + 1e-12)

    def test_render(self):
        records = _serve_records([5e-3] * 10, 10, 10)
        spec = SLOSpec.from_dict(
            {"name": "demo", "objectives": [
                {"name": "p99", "kind": "latency_quantile", "q": 0.9,
                 "target": 1e-3, "klass": "interactive"},
            ]}
        )
        text = render_slo(evaluate_slo(records, spec))
        assert "FAIL" in text and "VIOLATED" in text and "p99" in text

    def test_mismatched_buckets_rejected(self):
        a = _serve_records([1e-5], 1, 1)
        registry = MetricsRegistry()
        registry.histogram(
            "serve.latency", buckets=(5.0,), klass="batch"
        ).observe(1.0)
        records = a + registry.to_records()
        spec = SLOSpec.from_dict(
            {"objectives": [{"name": "p", "kind": "latency_quantile",
                             "q": 0.5, "target": 1.0}]}
        )
        with pytest.raises(ValueError, match="mismatched"):
            evaluate_slo(records, spec)
