"""``repro report`` renderers against adversarial telemetry inputs.

A telemetry file may be truncated, hand-edited, produced by an older
schema, or interleaved from multiple writers; every renderer must still
produce *something* rather than raise.
"""

import pytest

from repro.obs.report import (
    merged_cost_trace,
    render_report,
    render_report_file,
    split_records,
    spmm_step_breakdown,
)


class TestSplitRecords:
    def test_empty(self):
        groups = split_records([])
        assert groups["span"] == [] and groups["meta"] == []

    def test_unknown_types_bucketed(self):
        groups = split_records([{"type": "mystery"}, {}])
        assert groups["mystery"] == [{"type": "mystery"}]
        assert groups["unknown"] == [{}]


class TestRenderReportAdversarial:
    def test_empty_records(self):
        text = render_report([])
        assert "no spans" in text

    def test_meta_only(self):
        text = render_report([{"type": "meta", "graph": "LJ"}])
        assert "graph=LJ" in text
        assert "no spans" in text

    def test_manifest_only(self):
        text = render_report(
            [{"type": "manifest", "run_id": "abc", "git_sha": "s"}]
        )
        assert "manifest: run abc" in text
        assert "no spans" in text

    def test_span_missing_every_field(self):
        text = render_report([{"type": "span"}])
        assert "<unnamed>" in text

    def test_span_with_null_timings(self):
        records = [
            {"type": "span", "name": "op", "sim_seconds": None,
             "wall_seconds": None},
        ]
        assert "op" in render_report(records)

    def test_metric_records_missing_keys(self):
        records = [
            {"type": "metric", "kind": "counter"},  # no name/value
            {"type": "metric", "kind": "gauge", "name": "g", "value": None},
            {"type": "metric", "kind": "histogram", "name": "h",
             "count": 0, "sum": None, "min": None, "max": None},
            {"type": "metric"},  # no kind at all
        ]
        text = render_report(records)
        assert "<unnamed>" in text and "g" in text

    def test_mixed_schema_stream(self):
        records = [
            {"type": "meta", "telemetry_version": 1},
            {"type": "span", "name": "a", "sim_seconds": 1.0,
             "wall_seconds": 0.1, "span_id": 0, "parent_id": None,
             "depth": 0, "sim_start": 0.0},
            {"type": "span", "name": "b"},  # schema-less sibling
            {"type": "metric", "kind": "counter", "name": "c", "value": 2},
            {"type": "event", "name": "e"},
            {"type": "future_record_kind", "payload": [1, 2, 3]},
            {},
        ]
        text = render_report(records)
        assert "a" in text and "1 event(s)" in text

    def test_error_span_marked(self):
        records = [
            {"type": "span", "name": "boom", "status": "error",
             "sim_seconds": 0.0, "wall_seconds": 0.0},
        ]
        assert "boom !" in render_report(records)

    def test_cost_trace_fallback_from_spans(self):
        # Producers without a cost_trace record: leaf spans named after
        # the Algorithm 1 steps stand in.
        records = [
            {"type": "span", "name": "read_index", "sim_seconds": 2.0},
            {"type": "span", "name": "read_index"},  # missing timing
        ]
        trace = merged_cost_trace(records)
        assert trace.seconds("read_index") == pytest.approx(2.0)
        steps = spmm_step_breakdown(records)
        assert steps["read_index"] == pytest.approx(2.0)

    def test_render_file_roundtrip(self, tmp_path):
        import json

        path = tmp_path / "t.jsonl"
        rows = [
            {"type": "meta", "graph": "PK"},
            {"type": "span", "name": "op", "sim_seconds": 1.0,
             "wall_seconds": 0.0},
        ]
        path.write_text(
            "\n".join(json.dumps(r) for r in rows) + "\n", encoding="utf-8"
        )
        assert "op" in render_report_file(path)

    def test_invalid_jsonl_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            render_report_file(path)

    def test_hot_span_table_absent_without_self_time(self):
        records = [{"type": "span", "name": "zero"}]
        text = render_report(records)
        assert "Hot spans" not in text

    def test_hot_span_table_present_with_real_spans(self):
        records = [
            {"type": "span", "name": "hot", "span_id": 0, "parent_id": None,
             "sim_start": 0.0, "sim_seconds": 3.0, "wall_seconds": 0.0},
        ]
        text = render_report(records)
        assert "Hot spans" in text and "hot" in text
