"""Edge-path tests for the SpMM engine and embedding pipeline."""

import numpy as np
import pytest

from repro.core import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    SpMMEngine,
)
from repro.memsim import NumaTopology


class TestSingleSocketTopology:
    def test_no_remote_traffic_on_one_socket(self, skewed_csdb, rng):
        topology = NumaTopology(n_sockets=1, cores_per_socket=36)
        engine = SpMMEngine(
            OMeGaConfig(n_threads=8, dim=8, topology=topology)
        )
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))
        result = engine.multiply(skewed_csdb, dense, compute=False)
        # NaDP's merge fraction is 0 on one socket: no merge charge.
        assert result.trace.seconds("merge") == 0.0
        assert result.sim_seconds > 0

    def test_one_socket_vs_two_socket_contention(self, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))

        def run(n_sockets):
            topology = NumaTopology(
                n_sockets=n_sockets, cores_per_socket=36 // n_sockets
            )
            engine = SpMMEngine(
                OMeGaConfig(n_threads=16, dim=8, topology=topology)
            )
            return engine.multiply(
                skewed_csdb, dense, compute=False
            ).sim_seconds

        # Two sockets double the aggregate DIMM bandwidth: with the same
        # thread count, the two-socket run must not be slower than ~the
        # single-socket one (remote stitch costs a little).
        assert run(2) < 1.3 * run(1)


class TestStreamingPaths:
    def test_streaming_disabled_exposes_full_load(self, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))

        def run(streaming):
            engine = SpMMEngine(
                OMeGaConfig(
                    n_threads=4,
                    dim=8,
                    streaming_enabled=streaming,
                    capacity_scale=10**5,
                )
            )
            return engine.multiply(skewed_csdb, dense, compute=False)

        on = run(True)
        off = run(False)
        assert off.trace.seconds("stream_load") >= on.trace.seconds(
            "stream_load"
        )
        assert off.stream_plan is not None
        assert off.sim_seconds >= on.sim_seconds

    def test_pm_only_has_no_stream_plan(self, skewed_csdb, rng):
        engine = SpMMEngine(
            OMeGaConfig(
                n_threads=4,
                dim=8,
                memory_mode=MemoryMode.PM_ONLY,
                prefetcher_enabled=False,
            )
        )
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))
        assert engine.multiply(
            skewed_csdb, dense, compute=False
        ).stream_plan is None


class TestAllocatorEnginGuards:
    def test_natural_rr_with_prefetcher_enabled_is_safe(
        self, skewed_csdb, rng
    ):
        """Non-contiguous partitions silently skip prefetch planning."""
        engine = SpMMEngine(
            OMeGaConfig(
                n_threads=4,
                dim=8,
                allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
                prefetcher_enabled=True,
            )
        )
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))
        result = engine.multiply(skewed_csdb, dense)
        assert result.mean_hit_fraction == 0.0
        assert np.allclose(result.output, skewed_csdb.spmm(dense))

    def test_kernel_slowdown_composes_with_modes(self, skewed_csdb, rng):
        dense = rng.standard_normal((skewed_csdb.n_cols, 8))
        for mode in MemoryMode:
            base = SpMMEngine(
                OMeGaConfig(
                    n_threads=4,
                    dim=8,
                    memory_mode=mode,
                    prefetcher_enabled=False,
                )
            ).multiply(skewed_csdb, dense, compute=False)
            slow = SpMMEngine(
                OMeGaConfig(
                    n_threads=4,
                    dim=8,
                    memory_mode=mode,
                    prefetcher_enabled=False,
                    kernel_slowdown=2.0,
                )
            ).multiply(skewed_csdb, dense, compute=False)
            assert slow.sim_seconds > base.sim_seconds


class TestConfigSurface:
    def test_with_overrides_round_trip(self):
        config = OMeGaConfig(n_threads=8)
        other = config.with_overrides(dim=64, prefetcher_enabled=False)
        assert other.dim == 64
        assert not other.prefetcher_enabled
        assert other.n_threads == 8
        assert config.dim == 32  # original untouched

    def test_factory_configs(self):
        from repro.core import omega_config, omega_dram_config, omega_pm_config

        assert omega_config().memory_mode is MemoryMode.HETEROGENEOUS
        assert omega_dram_config().memory_mode is MemoryMode.DRAM_ONLY
        assert not omega_dram_config().streaming_enabled
        pm = omega_pm_config()
        assert pm.memory_mode is MemoryMode.PM_ONLY
        assert not pm.prefetcher_enabled

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError, match="n_threads"):
            OMeGaConfig(n_threads=0)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError, match="dram_headroom"):
            OMeGaConfig(dram_headroom=0.0)
