"""Property-based tests for the evaluation and baseline utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FeatureCache, belady_hit_rate
from repro.eval.clustering import kmeans, normalized_mutual_information


class TestNMIProperties:
    @given(
        st.lists(st.integers(0, 5), min_size=2, max_size=150),
        st.lists(st.integers(0, 5), min_size=2, max_size=150),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        n = min(len(a), len(b))
        a, b = np.array(a[:n]), np.array(b[:n])
        nmi = normalized_mutual_information(a, b)
        assert 0.0 <= nmi <= 1.0
        assert nmi == np.float64(
            normalized_mutual_information(b, a)
        ) or abs(nmi - normalized_mutual_information(b, a)) < 1e-9

    @given(st.lists(st.integers(0, 5), min_size=2, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_self_nmi_is_one(self, labels):
        labels = np.array(labels)
        assert normalized_mutual_information(labels, labels) > 1.0 - 1e-9

    @given(
        st.lists(st.integers(0, 5), min_size=2, max_size=100),
        st.permutations(list(range(6))),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariant_under_label_renaming(self, labels, permutation):
        labels = np.array(labels)
        renamed = np.array([permutation[x] for x in labels])
        assert normalized_mutual_information(labels, renamed) > 1.0 - 1e-9


class TestKMeansProperties:
    @given(st.integers(1, 5), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_labels_within_k(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.standard_normal((max(k, 10), 3))
        labels, centers = kmeans(points, k, seed=seed)
        assert labels.min() >= 0 and labels.max() < k
        assert centers.shape == (k, 3)

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_assignment_is_nearest_center(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.standard_normal((30, 2))
        labels, centers = kmeans(points, 3, seed=seed)
        distances = np.linalg.norm(
            points[:, None, :] - centers[None, :, :], axis=2
        )
        assert np.array_equal(labels, np.argmin(distances, axis=1))


class TestCacheProperties:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=300),
        st.integers(1, 40),
    )
    @settings(max_examples=50, deadline=None)
    def test_belady_dominates_lru(self, sequence, capacity):
        sequence = np.array(sequence)
        lru = FeatureCache(capacity)
        lru.access_many(sequence)
        assert belady_hit_rate(sequence, capacity) >= lru.hit_rate - 1e-12

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_infinite_capacity_misses_once_per_key(self, sequence):
        sequence = np.array(sequence)
        distinct = len(np.unique(sequence))
        hit_rate = belady_hit_rate(sequence, capacity=1000)
        assert hit_rate == (len(sequence) - distinct) / len(sequence)

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=100),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_belady_monotone_in_capacity(self, sequence, capacity):
        sequence = np.array(sequence)
        assert belady_hit_rate(sequence, capacity + 1) >= belady_hit_rate(
            sequence, capacity
        ) - 1e-12
