"""Tail-latency forensics: causal trees, blame attribution, exemplars.

The load-bearing property: for every request the server resolves —
across seeds, with and without an active fault plan — the forensic
tree reconstructed *purely from the live stream* carries blame that
sums exactly (1e-9 relative) to the request's simulated latency, and
the per-category fractions sum to 1.  Everything else (reservoir
bounds, incident joins, the CLI renderings, the diff/trend plumbing)
hangs off that invariant.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core import OMeGaConfig, OMeGaEmbedder
from repro.faults import FaultInjector, FaultPlan
from repro.graphs import chung_lu_edges
from repro.obs.forensics import (
    BLAME_CATEGORIES,
    SUM_REL_TOL,
    ExemplarReservoir,
    blame_fractions,
    build_tree,
    fold_stream,
    render_waterfall,
)
from repro.obs.live import TelemetryStream, load_records
from repro.obs.metrics import MetricsRegistry
from repro.serve import EmbeddingServer, RequestTrace, ServePolicy
from repro.serve.backend import EmbeddingBackend

N_NODES = 64
DIM = 8


@pytest.fixture(scope="module")
def edges():
    return chung_lu_edges(N_NODES, 900, seed=3)


def _run_server(edges, stream_path, trace_seed, fault_seed=None, load=1.2):
    """One seeded serve replay with a live stream; returns the report."""
    metrics = MetricsRegistry()
    embedder = OMeGaEmbedder(
        OMeGaConfig(n_threads=2, dim=DIM), metrics=metrics
    )
    injector = None
    if fault_seed is not None:
        plan = FaultPlan.random_serve(seed=fault_seed, n_events=5)
        injector = FaultInjector(plan, metrics)
    backend = EmbeddingBackend(
        embedder, edges, N_NODES, faults=injector, metrics=metrics
    )
    backend.warm_up()
    per_node = backend.compute_cost(1)
    with TelemetryStream(stream_path, flush_every=1) as stream:
        server = EmbeddingServer(
            backend,
            ServePolicy.calibrated(per_node * 8.5),
            metrics=metrics,
            faults=injector,
            stream=stream,
        )
        report = server.run_trace(
            RequestTrace.synthesize(
                seed=trace_seed,
                n_requests=80,
                per_node_cost_s=per_node,
                load=load,
            )
        )
    assert metrics.value("serve.unhandled_exceptions") == 0
    return report, metrics


class TestBlameSumInvariant:
    @pytest.mark.parametrize("trace_seed", [3, 5, 11])
    @pytest.mark.parametrize("fault_seed", [None, 7])
    def test_blame_sums_to_latency_for_every_request(
        self, tmp_path, edges, trace_seed, fault_seed
    ):
        path = tmp_path / "serve.live.jsonl"
        report, _ = _run_server(edges, path, trace_seed, fault_seed)
        forensics = fold_stream(load_records(path), worst_k=8)
        # Every submitted request left a tree on the stream.
        assert forensics.n_requests == report.submitted
        assert forensics.verify() == []
        # Cross-check against the server's own latency accounting, not
        # just the tree's root attribute.
        latencies = {
            r.trace_id: r.latency_s
            for r in report.responses
            if r.latency_s is not None
        }
        for trace_id, latency in latencies.items():
            summary = forensics.summaries[trace_id]
            assert math.isclose(
                sum(summary["blame"].values()),
                latency,
                rel_tol=SUM_REL_TOL,
                abs_tol=1e-15,
            )
            assert all(
                category in BLAME_CATEGORIES
                for category in summary["blame"]
            )

    def test_fractions_sum_to_one(self, tmp_path, edges):
        path = tmp_path / "serve.live.jsonl"
        _run_server(edges, path, trace_seed=5, fault_seed=7)
        forensics = fold_stream(load_records(path), worst_k=8)
        checked = 0
        for tree in forensics.trees.values():
            fractions = blame_fractions(tree.blame)
            if not fractions:
                continue
            assert math.isclose(sum(fractions.values()), 1.0, rel_tol=1e-9)
            checked += 1
        assert checked > 0
        for fractions in forensics.fractions().values():
            assert math.isclose(sum(fractions.values()), 1.0, rel_tol=1e-9)

    def test_slowest_requests_reconstruct_full_trees(self, tmp_path, edges):
        path = tmp_path / "serve.live.jsonl"
        report, _ = _run_server(edges, path, trace_seed=3, fault_seed=7)
        forensics = fold_stream(load_records(path), worst_k=16)
        completed = sorted(
            (r for r in report.responses if r.latency_s is not None),
            key=lambda r: r.latency_s,
            reverse=True,
        )
        for response in completed[: max(1, len(completed) // 100)]:
            tree = forensics.find(response.trace_id)
            assert tree is not None
            assert tree.root.children, "tail tree must carry causal nodes"
            assert math.isclose(
                sum(tree.blame.values()),
                response.latency_s,
                rel_tol=SUM_REL_TOL,
                abs_tol=1e-15,
            )

    def test_blame_counters_match_stream_attribution(self, tmp_path, edges):
        """The no-stream path (serve.blame_seconds counters) agrees with
        the stream fold — what `repro diff --attribution` gates."""
        path = tmp_path / "serve.live.jsonl"
        _, metrics = _run_server(edges, path, trace_seed=5, fault_seed=7)
        forensics = fold_stream(load_records(path))
        for klass, blame in forensics.attribution.items():
            for category, seconds in blame.items():
                counter = metrics.value(
                    "serve.blame_seconds", klass=klass, category=category
                )
                assert math.isclose(
                    counter, seconds, rel_tol=1e-9, abs_tol=1e-12
                )


class TestServeRequestEnrichment:
    def test_records_carry_queue_exec_and_rung(self, tmp_path, edges):
        path = tmp_path / "serve.live.jsonl"
        _run_server(edges, path, trace_seed=5)
        served = [
            r
            for r in load_records(path)
            if r.get("type") == "serve_request" and r.get("status") == "served"
        ]
        assert served
        for record in served:
            assert record["rung"] in ("full", "propagation_only", "stale")
            total = record["queue_wait_s"] + record["exec_s"]
            assert math.isclose(
                total, record["latency_s"], rel_tol=1e-9, abs_tol=1e-15
            )

    def test_old_records_without_breakdown_still_fold(self):
        # A pre-forensics stream has serve_request records but no
        # forensic spans: the fold degrades to an empty report instead
        # of failing.
        records = [
            {"type": "stream_meta", "pid": 1},
            {
                "type": "serve_request",
                "status": "served",
                "klass": "interactive",
                "latency_s": 0.01,
            },
        ]
        forensics = fold_stream(records)
        assert forensics.n_requests == 0
        assert forensics.verify() == []


class TestIncidentLinkage:
    def test_shard_incident_joins_overlapping_requests(self, tmp_path, edges):
        from repro.faults import FaultEvent
        from repro.serve.sharded import ShardedEmbeddingBackend
        from repro.shard.store import ShardPolicy
        from repro.shard.supervisor import SupervisorPolicy

        metrics = MetricsRegistry()
        embedder = OMeGaEmbedder(
            OMeGaConfig(n_threads=2, dim=DIM), metrics=metrics
        )
        plan = FaultPlan(
            events=(FaultEvent(kind="shard_crash", site="shard.0", count=3),)
        )
        injector = FaultInjector(plan, metrics)
        path = tmp_path / "serve.live.jsonl"
        with ShardedEmbeddingBackend(
            embedder,
            edges,
            N_NODES,
            shard_policy=ShardPolicy(
                n_shards=2, hedge_enabled=True, lookup_deadline_s=0.2
            ),
            supervisor_policy=SupervisorPolicy(),
            faults=injector,
            metrics=metrics,
        ) as backend:
            backend.warm_up()
            per_node = backend.compute_cost(1)
            with TelemetryStream(path, flush_every=1) as stream:
                # The server propagates its stream into the sharded
                # store, so shard_event incidents land next to the
                # forensic spans they explain.
                server = EmbeddingServer(
                    backend,
                    ServePolicy.calibrated(per_node * 8.5),
                    metrics=metrics,
                    faults=injector,
                    stream=stream,
                )
                report = server.run_trace(
                    RequestTrace.synthesize(
                        seed=11,
                        n_requests=80,
                        per_node_cost_s=per_node,
                        load=1.1,
                    )
                )
        forensics = fold_stream(load_records(path), worst_k=8)
        assert forensics.verify() == []
        assert forensics.n_requests == report.submitted
        assert forensics.incidents, "shard crash left no incident record"
        # At least one request's deadline window (or lookup seq) overlaps
        # the incident, and joined trees render the linkage.
        overlapping = [
            s for s in forensics.summaries.values() if s.get("incidents")
        ]
        assert overlapping
        joined = [t for t in forensics.trees.values() if t.incidents]
        if joined:
            rendered = render_waterfall(joined[0])
            assert "!! incident:" in rendered


class TestExemplarReservoir:
    def test_worst_k_keeps_slowest(self):
        reservoir = ExemplarReservoir(worst_k=3, sample_k=0, seed=0)
        for i in range(20):
            reservoir.offer(f"req-{i:03d}", "interactive", float(i))
        worst = reservoir.worst()
        assert worst[:3] == ["req-019", "req-018", "req-017"]

    def test_per_class_heaps_are_independent(self):
        reservoir = ExemplarReservoir(worst_k=2, sample_k=0, seed=0)
        for i in range(10):
            reservoir.offer(f"i-{i}", "interactive", float(i))
            reservoir.offer(f"b-{i}", "batch", float(10 - i))
        assert set(reservoir.worst("interactive")) == {"i-9", "i-8"}
        assert set(reservoir.worst("batch")) == {"b-0", "b-1"}

    def test_uniform_sample_is_seeded(self):
        def sample(seed):
            reservoir = ExemplarReservoir(worst_k=0, sample_k=4, seed=seed)
            for i in range(50):
                reservoir.offer(f"req-{i}", "interactive", float(i % 7))
            return reservoir.sampled()

        assert sample(1) == sample(1)
        assert sample(1) != sample(2)

    def test_retained_is_bounded(self):
        reservoir = ExemplarReservoir(worst_k=4, sample_k=4, seed=0)
        for i in range(500):
            reservoir.offer(f"req-{i}", "interactive", float(i))
        assert len(reservoir.retained()) <= 8
        assert reservoir.offers == 500


class TestTreeAssembly:
    def test_orphan_spans_graft_to_root(self):
        spans = [
            {
                "type": "forensic_span",
                "trace_id": "t1",
                "uid": "a",
                "parent_uid": None,
                "name": "request",
                "category": None,
                "sim_start": 0.0,
                "sim_seconds": 1.0,
                "attributes": {"klass": "interactive", "status": "served",
                               "blame": {"kernel": 1.0}},
            },
            {
                "type": "forensic_span",
                "trace_id": "t1",
                "uid": "b",
                "parent_uid": "missing",  # writer of the parent died
                "name": "kernel",
                "category": "kernel",
                "sim_start": 0.0,
                "sim_seconds": 1.0,
                "attributes": {},
            },
        ]
        tree = build_tree(spans)
        assert tree is not None
        assert [c.name for c in tree.root.children] == ["kernel"]

    def test_no_root_no_tree(self):
        spans = [
            {
                "type": "forensic_span",
                "trace_id": "t1",
                "uid": "b",
                "parent_uid": "missing",
                "name": "kernel",
                "category": "kernel",
                "sim_start": 0.0,
                "sim_seconds": 1.0,
                "attributes": {},
            }
        ]
        assert build_tree(spans) is None

    def test_partition_spans_graft_under_kernel_node(self):
        from repro.obs.forensics import graft_partition_spans
        from repro.obs.live import TraceContext, partition_span_payload

        spans = [
            {
                "type": "forensic_span",
                "trace_id": "req-42",
                "uid": "a",
                "parent_uid": None,
                "name": "request",
                "category": None,
                "sim_start": 0.0,
                "sim_seconds": 1.0,
                "attributes": {"klass": "batch", "status": "served",
                               "blame": {"kernel": 1.0}},
            },
            {
                "type": "forensic_span",
                "trace_id": "req-42",
                "uid": "b",
                "parent_uid": "a",
                "name": "kernel",
                "category": "kernel",
                "sim_start": 0.0,
                "sim_seconds": 1.0,
                "attributes": {},
            },
        ]
        tree = build_tree(spans)
        ctx = TraceContext(trace_id="run-1", parent_span_id="s0")
        records = [
            partition_span_payload(
                ctx,
                row_start=0,
                row_end=32,
                nnz=100,
                kernel_wall_s=0.01,
                scatter_wall_s=0.002,
                request_trace_id="req-42",
            ),
            # A partition executed for a *different* request must not
            # graft onto this tree.
            partition_span_payload(
                ctx,
                row_start=32,
                row_end=64,
                nnz=90,
                kernel_wall_s=0.01,
                scatter_wall_s=0.002,
                request_trace_id="req-other",
            ),
        ]
        assert graft_partition_spans(tree, records) == 1
        kernel = next(n for n in tree.nodes() if n.name == "kernel")
        assert [c.name for c in kernel.children] == ["partition:0"]
        # Grafted worker spans are wall-clock annotations: zero sim
        # seconds, so the blame-sum invariant is untouched.
        assert kernel.children[0].sim_seconds == 0.0


class TestCli:
    def _make_stream(self, tmp_path, edges):
        path = tmp_path / "serve.live.jsonl"
        report, _ = _run_server(edges, path, trace_seed=5, fault_seed=7)
        return path, report

    def test_why_worst_renders_waterfalls(self, tmp_path, edges, capsys):
        from repro.cli import main

        path, _ = self._make_stream(tmp_path, edges)
        assert main(["why", str(path), "--worst", "2"]) == 0
        out = capsys.readouterr().out
        assert "blame:" in out
        assert "queue" in out or "kernel" in out

    def test_why_by_trace_id(self, tmp_path, edges, capsys):
        from repro.cli import main

        path, report = self._make_stream(tmp_path, edges)
        served = next(
            r for r in report.responses if r.latency_s is not None
        )
        assert main(["why", str(path), served.trace_id]) == 0
        assert served.trace_id in capsys.readouterr().out

    def test_why_unknown_trace_exits(self, tmp_path, edges):
        from repro.cli import main

        path, _ = self._make_stream(tmp_path, edges)
        with pytest.raises(SystemExit):
            main(["why", str(path), "req-nope-000001"])

    def test_attribute_table_and_check(self, tmp_path, edges, capsys):
        from repro.cli import main

        path, _ = self._make_stream(tmp_path, edges)
        assert main(["attribute", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "tail-latency blame" in out

    def test_attribute_json_payload(self, tmp_path, edges, capsys):
        from repro.cli import main

        path, _ = self._make_stream(tmp_path, edges)
        assert main(["attribute", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert payload["n_requests"] > 0
        for fractions in payload["fractions"].values():
            assert math.isclose(sum(fractions.values()), 1.0, rel_tol=1e-9)


class TestObservatoryPlumbing:
    def _blame_records(self, queue, kernel):
        return [
            {
                "type": "metric",
                "kind": "counter",
                "name": "serve.blame_seconds",
                "labels": {"klass": "interactive", "category": "queue"},
                "value": queue,
            },
            {
                "type": "metric",
                "kind": "counter",
                "name": "serve.blame_seconds",
                "labels": {"klass": "interactive", "category": "kernel"},
                "value": kernel,
            },
        ]

    def test_diff_gates_attribution_shift(self):
        from repro.obs.observatory.diff import diff_runs

        # Same totals, shifted mix: only the attribution group sees it.
        report = diff_runs(
            self._blame_records(queue=8.0, kernel=2.0),
            self._blame_records(queue=9.5, kernel=0.5),
            threshold=0.05,
            include_attribution=True,
        )
        regressed = {r.name for r in report.regressions}
        assert "interactive/queue" in regressed

    def test_diff_attribution_off_by_default(self):
        from repro.obs.observatory.diff import diff_runs

        report = diff_runs(
            self._blame_records(queue=8.0, kernel=2.0),
            self._blame_records(queue=9.5, kernel=0.5),
            threshold=0.05,
        )
        assert not any(r.group == "attribution" for r in report.rows)

    def test_trend_extracts_attribution_series(self):
        from repro.obs.observatory.trend import trajectory_series

        points = [
            {"stages": {"serve.p99_latency": 0.01},
             "attribution": {"interactive/queue": 0.8}},
            {"stages": {"serve.p99_latency": 0.012},
             "attribution": {"interactive/queue": 0.9}},
        ]
        series = trajectory_series(points)
        assert series["attribution.interactive/queue"] == [0.8, 0.9]
