"""Wall-clock perf-gate arm: noise bands, modes, baseline handling."""

from __future__ import annotations

import pytest

from repro.obs.observatory import BaselineStore
from repro.obs.observatory import wallgate
from repro.obs.observatory.wallgate import (
    WallProbe,
    WallRun,
    compare_wall,
    render_wall,
    run_wall_gate,
)


def _run(median: float, spread: float = 0.0) -> WallRun:
    samples = [median - spread, median, median + spread]
    return WallRun(
        probes=[WallProbe("wall.spmm_kernel", samples)],
        backend="simulated",
        n_workers=2,
        k=3,
    )


class TestProbeStats:
    def test_median_and_rel_mad(self):
        probe = WallProbe("p", [1.0, 2.0, 4.0])
        assert probe.median == 2.0
        assert probe.rel_mad == pytest.approx(0.5)  # MAD=1.0 over median 2

    def test_zero_median_is_safe(self):
        assert WallProbe("p", [0.0, 0.0]).rel_mad == 0.0


class TestCompare:
    def test_within_threshold_band_ok(self):
        baseline = _run(1.0).payload()
        verdicts = compare_wall(_run(1.2), baseline, threshold=0.25)
        assert not verdicts[0].regressed
        assert verdicts[0].band == 0.25

    def test_beyond_band_regressed(self):
        baseline = _run(1.0).payload()
        verdicts = compare_wall(_run(1.5), baseline, threshold=0.25)
        assert verdicts[0].regressed
        assert verdicts[0].ratio == pytest.approx(0.5)

    def test_noisy_baseline_widens_band(self):
        # rel MAD 0.2 -> band = 4 * 0.2 = 0.8, so a 1.5x median is fine.
        baseline = _run(1.0, spread=0.2).payload()
        verdicts = compare_wall(
            _run(1.5), baseline, threshold=0.25, band_multiplier=4.0
        )
        assert verdicts[0].band == pytest.approx(0.8)
        assert not verdicts[0].regressed

    def test_missing_baseline_probe_never_regresses(self):
        verdicts = compare_wall(_run(9.9), {}, threshold=0.25)
        assert verdicts[0].baseline_median is None
        assert not verdicts[0].regressed


class TestGateModes:
    @pytest.fixture
    def store(self, tmp_path):
        return BaselineStore(tmp_path)

    @pytest.fixture
    def fake_suite(self, monkeypatch):
        def install(median: float):
            monkeypatch.setattr(
                wallgate,
                "run_wall_suite",
                lambda k, backend, n_workers: _run(median),
            )

        return install

    def test_first_run_pins_baseline(self, store, fake_suite):
        fake_suite(1.0)
        report = run_wall_gate(store=store, mode="report")
        assert report.baseline_updated
        assert store.resolve(wallgate.WALL_BASELINE_NAME) is not None

    def test_report_mode_never_fails(self, store, fake_suite):
        fake_suite(1.0)
        run_wall_gate(store=store, mode="report")
        fake_suite(10.0)
        report = run_wall_gate(store=store, mode="report")
        assert report.regressions and report.ok

    def test_gate_mode_fails_beyond_band(self, store, fake_suite):
        fake_suite(1.0)
        run_wall_gate(store=store, mode="report")
        fake_suite(10.0)
        report = run_wall_gate(store=store, mode="gate")
        assert report.regressions and not report.ok
        assert "REGRESSED" in render_wall(report)

    def test_gate_mode_passes_within_band(self, store, fake_suite):
        fake_suite(1.0)
        run_wall_gate(store=store, mode="report")
        fake_suite(1.1)
        report = run_wall_gate(store=store, mode="gate")
        assert report.ok and not report.regressions
        assert "within noise band" in render_wall(report)

    def test_baseline_backend_mismatch_ignored(self, store, fake_suite):
        fake_suite(1.0)
        run_wall_gate(store=store, mode="report", backend="simulated")
        fake_suite(10.0)
        # Different worker count -> stored baseline is not comparable;
        # the run re-pins instead of flagging a bogus regression.
        report = run_wall_gate(
            store=store, mode="gate", backend="simulated", n_workers=4
        )
        assert report.ok and report.baseline_updated

    def test_invalid_mode_rejected(self, store):
        with pytest.raises(ValueError, match="mode"):
            run_wall_gate(store=store, mode="enforce")

    def test_render_includes_noise_band(self, store, fake_suite):
        fake_suite(1.0)
        report = run_wall_gate(store=store, mode="report")
        text = render_wall(report)
        assert "noise band" in text and "report-only" in text


class TestRealSuiteSmoke:
    def test_small_suite_produces_positive_medians(self, monkeypatch):
        monkeypatch.setattr(wallgate, "WALL_SCALE", 7)
        run = wallgate.run_wall_suite(k=2, backend="simulated")
        assert {p.name for p in run.probes} == {
            "wall.spmm_kernel",
            "wall.engine_dispatch",
        }
        assert all(p.median > 0.0 for p in run.probes)
        assert all(len(p.samples) == 2 for p in run.probes)
