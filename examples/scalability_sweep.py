"""Scalability sweep: billion-node ambitions on a laptop (Fig. 17 style).

Generates R-MAT graphs of growing size, embeds each through the full
OMeGa pipeline, and reports simulated runtimes plus the Eq. 9 streaming
plan the engine would use when DRAM gets tight.

Run:  python examples/scalability_sweep.py
"""

import numpy as np

from repro import OMeGaConfig, OMeGaEmbedder, SpMMEngine, rmat_edges
from repro.formats import edges_to_csdb


def size_sweep() -> None:
    print("R-MAT size sweep (30 simulated threads, d=32):")
    print(f"{'#nodes':>10} {'#edges':>10} {'SpMM ms':>10} {'ns/nnz':>8}")
    for scale in range(10, 19, 2):
        n_nodes = 1 << scale
        edges = rmat_edges(scale, edge_factor=12, seed=0)
        csdb = edges_to_csdb(edges, n_nodes)
        dense = np.random.default_rng(0).standard_normal((n_nodes, 32))
        engine = SpMMEngine(OMeGaConfig(n_threads=30, dim=32))
        seconds = engine.multiply(csdb, dense, compute=False).sim_seconds
        print(
            f"{n_nodes:>10,} {csdb.nnz:>10,} {seconds * 1e3:>10.3f}"
            f" {seconds / csdb.nnz * 1e9:>8.2f}"
        )


def thread_sweep() -> None:
    print("\nThread sweep on one R-MAT graph (end-to-end embedding):")
    edges = rmat_edges(13, edge_factor=12, seed=3)
    for threads in (2, 4, 8, 16, 30):
        config = OMeGaConfig(n_threads=threads, dim=16)
        result = OMeGaEmbedder(config).embed_edges(edges, 1 << 13)
        print(
            f"  {threads:>3} threads: {result.sim_seconds * 1e3:8.2f} ms"
            f" simulated ({result.n_spmm} SpMM ops)"
        )


def capacity_pressure() -> None:
    print("\nCapacity pressure: the same graph with shrinking DRAM:")
    edges = rmat_edges(13, edge_factor=12, seed=3)
    csdb = edges_to_csdb(edges, 1 << 13)
    dense = np.random.default_rng(0).standard_normal((1 << 13, 32))
    for capacity_scale in (1, 8000, 10000, 10**5):
        engine = SpMMEngine(
            OMeGaConfig(n_threads=16, dim=32, capacity_scale=capacity_scale)
        )
        result = engine.multiply(csdb, dense, compute=False)
        plan = result.stream_plan
        print(
            f"  DRAM/{capacity_scale:>7}: ASL splits the dense operand into"
            f" n={plan.n_partitions:>2} batches"
            f" ({plan.batch_bytes / 1024:8.1f} KiB each),"
            f" SpMM {result.sim_seconds * 1e3:7.3f} ms"
        )


if __name__ == "__main__":
    size_sweep()
    thread_sweep()
    capacity_pressure()
