"""Crash-safe embedding checkpoints on App-direct PM.

The paper (§II-B) uses PM in App-directed mode, where applications get
byte-addressable persistence through flush/fence ordering.  This example
persists embeddings with the shadow-commit protocol and shows that an
injected crash mid-checkpoint never loses the previous version — the
practical payoff of App-direct mode that Memory Mode cannot offer.

Run:  python examples/crash_safe_checkpointing.py
"""

import numpy as np

from repro import OMeGaConfig, OMeGaEmbedder, load_dataset
from repro.memsim import CheckpointedEmbedder, CrashInjected


def main() -> None:
    dataset = load_dataset("PK", scale=2048)
    embedder = OMeGaEmbedder(
        OMeGaConfig(n_threads=8, dim=16, capacity_scale=dataset.scale)
    )
    checkpointed = CheckpointedEmbedder(embedder)

    # First run commits durably.
    result, checkpoint_seconds = checkpointed.embed_and_checkpoint(
        dataset.edges, dataset.n_nodes
    )
    print(
        f"1. Embedded {dataset.n_nodes:,} nodes in"
        f" {result.sim_seconds * 1e3:.2f} ms simulated;"
        f" durable checkpoint took {checkpoint_seconds * 1e6:.1f} us"
        f" ({checkpointed.domain.fences} fences,"
        f" {checkpointed.domain.durable_bytes / 1024:.0f} KiB flushed)"
    )

    # Second run crashes mid-checkpoint (power failure injected between
    # the shadow flush and the commit-record flip).
    try:
        checkpointed.embed_and_checkpoint(
            dataset.edges, dataset.n_nodes, crash=True
        )
    except CrashInjected:
        print("2. Crash injected during the second checkpoint!")

    recovered = checkpointed.recover_embedding()
    intact = np.array_equal(recovered, result.embedding)
    print(
        f"3. After restart the store recovers checkpoint"
        f" #{checkpointed.store.committed_sequence} — previous embedding"
        f" {'intact' if intact else 'LOST'}"
    )
    assert intact


if __name__ == "__main__":
    main()
