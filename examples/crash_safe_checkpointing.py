"""Crash-safe embedding checkpoints and stage-granular recovery.

The paper (§II-B) uses PM in App-directed mode, where applications get
byte-addressable persistence through flush/fence ordering.  This example
shows both recovery granularities built on that discipline:

1. *whole-run shadow commits* — an injected crash mid-checkpoint never
   loses the previous version, and the computed result survives in
   memory so only the commit needs retrying;
2. *stage-granular WAL checkpoints* — a seeded fault plan crashes the
   pipeline right after factorization; ``resume()`` recovers the durable
   stages, redoes only the propagation, and the final embedding is
   bit-identical to an uninterrupted run.

Run:  python examples/crash_safe_checkpointing.py
"""

import numpy as np

from repro import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    OMeGaConfig,
    OMeGaEmbedder,
    load_dataset,
)
from repro.memsim import CheckpointedEmbedder, CrashInjected
from repro.obs import MetricsRegistry


def main() -> None:
    dataset = load_dataset("PK", scale=2048)
    config = OMeGaConfig(n_threads=8, dim=16, capacity_scale=dataset.scale)
    checkpointed = CheckpointedEmbedder(OMeGaEmbedder(config))

    # -- whole-run shadow commits ------------------------------------------

    result, checkpoint_seconds = checkpointed.embed_and_checkpoint(
        dataset.edges, dataset.n_nodes
    )
    print(
        f"1. Embedded {dataset.n_nodes:,} nodes in"
        f" {result.sim_seconds * 1e3:.2f} ms simulated;"
        f" durable checkpoint took {checkpoint_seconds * 1e6:.1f} us"
        f" ({checkpointed.domain.fences} fences,"
        f" {checkpointed.domain.durable_bytes / 1024:.0f} KiB flushed)"
    )

    # A crash between the shadow flush and the commit-record flip loses
    # neither the previous durable version nor the computed result.
    try:
        checkpointed.embed_and_checkpoint(
            dataset.edges, dataset.n_nodes, crash=True
        )
    except CrashInjected:
        print("2. Crash injected during the second checkpoint!")

    recovered = checkpointed.recover_embedding()
    intact = np.array_equal(recovered, result.embedding)
    print(
        f"3. After restart the store recovers checkpoint"
        f" #{checkpointed.store.committed_sequence} — previous embedding"
        f" {'intact' if intact else 'LOST'}"
    )
    assert intact

    # The second run's result survived the crash in memory, so only the
    # commit is retried — no re-embedding.
    retried, retry_seconds = checkpointed.retry_checkpoint()
    print(
        f"4. Retried the failed commit alone in"
        f" {retry_seconds * 1e6:.1f} us — no recompute"
        f" (now at checkpoint #{checkpointed.store.committed_sequence})"
    )

    # -- stage-granular WAL checkpoints ------------------------------------

    plan = FaultPlan(
        events=(FaultEvent("crash", "factorization"),), seed=11
    )
    metrics = MetricsRegistry()
    embedder = OMeGaEmbedder(config, metrics=metrics)
    staged = CheckpointedEmbedder(embedder)
    injector = FaultInjector(plan, metrics)
    try:
        staged.embed_with_checkpoints(
            dataset.edges, dataset.n_nodes, faults=injector
        )
    except InjectedCrash as crash:
        print(
            f"5. Fault plan crashed the pipeline after {crash.site!r};"
            f" durable stages: {staged.wal.stages}"
        )

    resumed = staged.resume(faults=injector)
    saved = metrics.counter("checkpoint.recovered_sim_seconds").value
    identical = np.array_equal(resumed.embedding, result.embedding)
    print(
        f"6. Resume skipped"
        f" {metrics.counter('checkpoint.recovered_stages').value:.0f}"
        f" stages ({saved * 1e3:.2f} ms of simulated work not redone);"
        f" final embedding"
        f" {'bit-identical' if identical else 'DIFFERS'} to the"
        " uninterrupted run"
    )
    assert identical


if __name__ == "__main__":
    main()
