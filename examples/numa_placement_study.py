"""NUMA placement study: why NaDP's 'global sequential read, local write'.

Reproduces the reasoning of §III-D interactively:

1. probes the simulated PM like the paper probes with FIO/MLC (Fig. 9),
2. runs the same SpMM under NaDP, the OS Interleaved policy and the OS
   Local (first-touch) policy, and
3. shows the per-thread time distributions, exposing the remote-write
   penalty the OS policies pay.

Run:  python examples/numa_placement_study.py
"""

import numpy as np

from repro import OMeGaConfig, PlacementScheme, SpMMEngine, load_dataset
from repro.memsim import pm_spec, probe_bandwidth
from repro.memsim.probe import peak_bandwidth_summary


def probe_section() -> None:
    print("1. PM characterization (simulated FIO sweep, 28 threads)")
    results = {
        (r.op.value, r.pattern.value, r.locality.value): r.bandwidth_gib_s
        for r in probe_bandwidth(pm_spec(), thread_counts=(28,))
    }
    for key, bandwidth in sorted(results.items()):
        print(f"   {'-'.join(key):22s} {bandwidth:7.2f} GiB/s")
    summary = peak_bandwidth_summary(pm_spec())
    print(
        "   => sequential reads are locality-insensitive "
        f"(remote/local = {summary['seq_remote_read_over_seq_local_read']:.2f}),"
        " but local writes beat remote by "
        f"{summary['seq_local_write_over_seq_remote_write']:.2f}x —"
        " hence: global sequential read, local write."
    )


def placement_section() -> None:
    dataset = load_dataset("OR")
    dense = np.random.default_rng(0).standard_normal((dataset.n_nodes, 32))
    print(
        f"\n2. One SpMM on the Com-Orkut analogue"
        f" ({dataset.n_edges:,} edges, 30 threads)"
    )
    baseline = None
    for scheme in (
        PlacementScheme.NADP,
        PlacementScheme.INTERLEAVE,
        PlacementScheme.LOCAL,
    ):
        config = OMeGaConfig(
            n_threads=30,
            dim=32,
            capacity_scale=dataset.scale,
            placement=scheme,
        )
        result = SpMMEngine(config).multiply(
            dataset.adjacency_csdb(), dense, compute=False
        )
        stats = result.thread_stats
        if baseline is None:
            baseline = result.sim_seconds
        print(
            f"   {scheme.value:10s} {result.sim_seconds * 1e3:8.3f} ms"
            f" ({result.sim_seconds / baseline:4.2f}x)"
            f"  thread std {stats.std * 1e3:6.3f} ms,"
            f" p99 {stats.p99 * 1e3:7.3f} ms"
        )
    print(
        "   => NaDP keeps dense gathers and result writes socket-local;"
        " the OS policies pay scattered cross-socket traffic."
    )


if __name__ == "__main__":
    probe_section()
    placement_section()
