"""End-to-end workflow on your own graph file.

Shows the full library surface a downstream user touches: parse a SNAP
edge list, build + persist the CSDB matrix, run cost-accounted operators
(SpMM / SDDMM / transpose), embed with a chosen spectral filter, and
evaluate held-out link prediction — everything through the public API.

Run:  python examples/custom_graph_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import OMeGaConfig, OMeGaEmbedder
from repro.core import OperatorSuite
from repro.eval import (
    link_prediction_auc,
    sample_negative_edges,
    train_test_edge_split,
)
from repro.formats import edges_to_csdb, load_csdb, save_csdb
from repro.graphs import load_edge_list, rmat_edges, save_edge_list
from repro.prone.model import ProNEParams


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="omega-demo-"))

    # 1. Pretend this R-MAT file is the user's own graph.
    graph_file = workdir / "my_graph.txt"
    save_edge_list(graph_file, rmat_edges(12, edge_factor=10, seed=9),
                   header="demo graph")
    edges, n_nodes = load_edge_list(graph_file)
    print(f"1. Parsed {graph_file.name}: {n_nodes:,} nodes, {len(edges):,} edges")

    # 2. Build the CSDB matrix once and persist it.
    matrix = edges_to_csdb(edges, n_nodes)
    matrix_file = workdir / "my_graph.csdb.npz"
    save_csdb(matrix_file, matrix)
    matrix = load_csdb(matrix_file)
    print(
        f"2. CSDB: {matrix.nnz:,} nnz in {matrix.n_blocks} degree blocks,"
        f" index = {matrix.index_bytes():,} B"
        f" (CSR would need {8 * (n_nodes + 1):,} B of row pointers alone)"
    )

    # 3. Cost-accounted operators.
    suite = OperatorSuite(OMeGaConfig(n_threads=16, dim=16))
    dense = np.random.default_rng(0).standard_normal((n_nodes, 16))
    spmm = suite.spmm(matrix, dense)
    sddmm = suite.sddmm(matrix, spmm.output, dense)
    transpose = suite.transpose(matrix)
    print(
        "3. Operators (simulated): "
        f"SpMM {spmm.sim_seconds * 1e3:.3f} ms,"
        f" SDDMM {sddmm.sim_seconds * 1e3:.3f} ms,"
        f" transpose {transpose.sim_seconds * 1e3:.3f} ms"
    )

    # 4. Embed with a non-default spectral filter.
    train, test = train_test_edge_split(edges, test_fraction=0.1, seed=0)
    embedder = OMeGaEmbedder(
        OMeGaConfig(n_threads=16, dim=32),
        params=ProNEParams(dim=32, order=8, spectral_filter="heat"),
    )
    result = embedder.embed_edges(train, n_nodes)
    print(
        f"4. Embedded with the heat-kernel filter in"
        f" {result.sim_seconds * 1e3:.1f} ms simulated"
        f" ({result.n_spmm} SpMM ops)"
    )

    # 5. Evaluate.
    negatives = sample_negative_edges(edges, n_nodes, len(test), seed=0)
    auc = link_prediction_auc(result.embedding, test, negatives)
    print(f"5. Held-out link prediction AUC = {auc:.3f}")
    print(f"\nArtifacts left in {workdir}")


if __name__ == "__main__":
    main()
