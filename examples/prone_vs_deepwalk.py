"""ProNE vs DeepWalk: the paper's motivation, measured.

The introduction motivates matrix-factorization embedding by DeepWalk's
cost ("months ... for a graph with 100M nodes").  This example embeds the
same planted-community graph with both our from-scratch DeepWalk/SGNS
baseline and OMeGa's ProNE pipeline, comparing wall time, simulated cost
and downstream classification quality.

Run:  python examples/prone_vs_deepwalk.py
"""

import time

import numpy as np

from repro import OMeGaConfig, OMeGaEmbedder
from repro.baselines.deepwalk import DeepWalkEmbedder, DeepWalkParams
from repro.eval import node_classification_accuracy
from repro.formats import edges_to_csr
from repro.graphs import planted_partition_edges


def main() -> None:
    edges, labels = planted_partition_edges(
        1200, 18_000, n_communities=5, p_in=0.85, seed=3
    )
    print(f"Graph: 1,200 nodes, {len(edges):,} edges, 5 planted communities\n")

    # DeepWalk (real training, modest budget).
    start = time.perf_counter()
    deepwalk = DeepWalkEmbedder(
        DeepWalkParams(dim=32, walks_per_node=6, walk_length=20, epochs=3)
    )
    dw_embedding = deepwalk.embed(edges_to_csr(edges, 1200))
    dw_wall = time.perf_counter() - start
    dw_accuracy = node_classification_accuracy(dw_embedding, labels, seed=0)
    dw_macs = deepwalk.training_cost_macs(edges_to_csr(edges, 1200))

    # ProNE via OMeGa.
    start = time.perf_counter()
    result = OMeGaEmbedder(OMeGaConfig(n_threads=16, dim=32)).embed_edges(
        edges, 1200
    )
    prone_wall = time.perf_counter() - start
    prone_accuracy = node_classification_accuracy(
        result.embedding, labels, seed=0
    )

    print(f"{'':14s}{'wall time':>12s}{'accuracy':>10s}{'work':>22s}")
    print(
        f"{'DeepWalk':14s}{dw_wall:>10.2f} s{dw_accuracy:>10.3f}"
        f"{dw_macs / 1e9:>18.2f} GMAC"
    )
    print(
        f"{'ProNE/OMeGa':14s}{prone_wall:>10.2f} s{prone_accuracy:>10.3f}"
        f"{result.n_spmm:>16d} SpMM"
    )
    print(
        f"\nProNE matches DeepWalk's quality"
        f" ({prone_accuracy:.3f} vs {dw_accuracy:.3f})"
        f" at {dw_wall / max(prone_wall, 1e-9):.1f}x less wall time —"
        " the gap the paper's introduction quotes grows with graph size,"
        " which is why OMeGa builds on the MF approach."
    )


if __name__ == "__main__":
    main()
