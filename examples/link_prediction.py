"""Link prediction on a social-network analogue (the paper's motivating task).

Twitter's "who to follow" and Alibaba's recommendations — the paper's
Section I examples — are link-prediction problems over huge graphs.  This
example holds out 15% of edges, embeds the remaining graph with OMeGa,
and evaluates AUC against sampled non-edges, while also reporting the
classification quality on a planted-community graph.

Run:  python examples/link_prediction.py
"""

import numpy as np

from repro import OMeGaConfig, OMeGaEmbedder
from repro.eval import (
    link_prediction_auc,
    node_classification_accuracy,
    sample_negative_edges,
    train_test_edge_split,
)
from repro.graphs import load_dataset, planted_partition_edges


def link_prediction_demo() -> None:
    dataset = load_dataset("LJ")
    train_edges, test_edges = train_test_edge_split(
        dataset.edges, test_fraction=0.15, seed=0
    )
    print(
        f"soc-LiveJournal analogue: {dataset.n_nodes:,} nodes;"
        f" training on {len(train_edges):,} edges,"
        f" predicting {len(test_edges):,} held-out edges"
    )
    config = OMeGaConfig(n_threads=16, dim=32, capacity_scale=dataset.scale)
    result = OMeGaEmbedder(config).embed_edges(train_edges, dataset.n_nodes)
    negatives = sample_negative_edges(
        dataset.edges, dataset.n_nodes, len(test_edges), seed=0
    )
    auc = link_prediction_auc(result.embedding, test_edges, negatives)
    print(
        f"  embedded in {result.sim_seconds * 1e3:.1f} ms (simulated);"
        f" link-prediction AUC = {auc:.3f}"
    )


def classification_demo() -> None:
    edges, labels = planted_partition_edges(
        2000, 30_000, n_communities=6, p_in=0.85, seed=2
    )
    print(
        f"\nPlanted-community graph: 2,000 nodes, {len(edges):,} edges,"
        " 6 communities"
    )
    config = OMeGaConfig(n_threads=16, dim=32)
    result = OMeGaEmbedder(config).embed_edges(edges, 2000)
    accuracy = node_classification_accuracy(result.embedding, labels, seed=0)
    chance = np.mean(labels == np.bincount(labels).argmax())
    print(
        f"  node-classification accuracy = {accuracy:.3f}"
        f" (majority-class baseline {chance:.3f})"
    )


if __name__ == "__main__":
    link_prediction_demo()
    classification_demo()
