"""Quickstart: embed a graph on simulated heterogeneous memory.

Loads the scaled soc-Pokec analogue, runs the full OMeGa pipeline (EaTA +
WoFP + NaDP + ASL on DRAM+PM), and compares its simulated runtime against
the DRAM-only ideal and the PM-only worst case.

Run:  python examples/quickstart.py
"""

from repro import MemoryMode, OMeGaConfig, OMeGaEmbedder, load_dataset


def main() -> None:
    dataset = load_dataset("PK")
    print(
        f"Graph: {dataset.paper.full_name} analogue — "
        f"{dataset.n_nodes:,} nodes, {dataset.n_edges:,} edges "
        f"(1/{dataset.scale} of the original)"
    )

    arms = {
        "OMeGa (DRAM+PM)": {},
        "OMeGa-DRAM (ideal)": dict(
            memory_mode=MemoryMode.DRAM_ONLY, streaming_enabled=False
        ),
        "OMeGa-PM (worst)": dict(
            memory_mode=MemoryMode.PM_ONLY,
            prefetcher_enabled=False,
            streaming_enabled=False,
        ),
    }
    times = {}
    embedding = None
    for name, overrides in arms.items():
        config = OMeGaConfig(
            n_threads=16, dim=32, capacity_scale=dataset.scale, **overrides
        )
        result = OMeGaEmbedder(config).embed_dataset(dataset)
        times[name] = result.sim_seconds
        embedding = result.embedding
        print(
            f"  {name:22s} simulated {result.sim_seconds * 1e3:9.2f} ms"
            f"  ({result.n_spmm} SpMM ops, "
            f"{result.spmm_fraction * 100:.0f}% of time in SpMM)"
        )

    omega = times["OMeGa (DRAM+PM)"]
    dram = times["OMeGa-DRAM (ideal)"]
    pm = times["OMeGa-PM (worst)"]
    print(
        f"\nOMeGa narrows the PM/DRAM gap from {pm / dram:.0f}x"
        f" to {omega / dram:.2f}x while keeping DRAM-sized capacity needs"
        " on the cheap tier."
    )
    print(f"Embedding shape: {embedding.shape}; first row: {embedding[0][:4]} ...")


if __name__ == "__main__":
    main()
