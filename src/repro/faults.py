"""Deterministic fault injection for the simulated pipeline.

The paper's App-direct mode (§II-B) exists to survive power loss, and
tiered-storage embedding systems treat device stalls and transient
transfer failures as first-class events.  This module supplies the
injection side of that story: a :class:`FaultPlan` is a declarative,
JSON-serializable list of fault events — crash points at pipeline stage
boundaries, transient streaming-load errors, PM bandwidth degradation
and PM tier-capacity loss — and a :class:`FaultInjector` is the runtime
the instrumented components consult.

Everything is deterministic: a plan is either written out event by
event or generated from a seed (:meth:`FaultPlan.random`), so any
chaos run can be replayed exactly.  Components react as follows:

- ``crash`` — :class:`~repro.memsim.persistence.CheckpointedEmbedder`
  raises :class:`InjectedCrash` at the named stage boundary (after or,
  with ``phase="before_commit"``, during that stage's WAL commit);
- ``transient_load`` — :class:`repro.core.asl.StreamingLoader` retries
  with exponential backoff, charging every retry to the simulated
  clock, and raises :class:`RetryExhaustedError` once the policy's
  budget is spent;
- ``pm_degrade`` — the SpMM engine derates the PM streaming bandwidth
  by the event's factor for the rest of the run;
- ``tier_loss`` — the embedder re-places hot structures per the NaDP
  fallback order (local DRAM → remote DRAM → re-plan ASL with more
  partitions) instead of aborting.

Every injected event is counted in the ``faults.injected`` metric
family, labelled by kind.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # import deferred: obs -> memsim -> persistence -> faults
    from repro.obs.metrics import MetricsRegistry

#: Recognised pipeline fault kinds (the set :meth:`FaultPlan.random`
#: draws from, kept stable so seeded plans replay bit-identically).
FAULT_KINDS = ("crash", "transient_load", "pm_degrade", "tier_loss")
#: Serving-layer fault kinds (:mod:`repro.serve`): a ``backend_stall``
#: freezes one embed/stream backend call for ``seconds`` of simulated
#: time; a ``request_burst`` injects ``count`` duplicate arrivals at the
#: admission queue, stressing the shedding path.
SERVE_FAULT_KINDS = ("backend_stall", "request_burst")
#: Shard-store fault kinds (:mod:`repro.shard`): a ``shard_crash`` hard
#: kills one shard process, a ``shard_hang`` freezes it for ``seconds``
#: of wall time (the process stops heartbeating *and* serving), and a
#: ``heartbeat_loss`` mutes the heartbeat while the shard keeps serving
#: (exercising the supervisor's false-positive restart path).  For these
#: kinds ``site`` names the target shard (``"shard.<i>"``) and ``count``
#: is the 1-based scatter-gather lookup sequence number at which the
#: event fires, so a seeded chaos run kills a shard at a deterministic
#: point mid-serve.
SHARD_FAULT_KINDS = ("shard_crash", "shard_hang", "heartbeat_loss")
#: Checkpoint-media fault kinds (:mod:`repro.shard`): the simulated PM
#: device returns bad data — a ``checkpoint_corrupt`` flips bytes inside
#: a shard's newest durable checkpoint record (its CRC no longer
#: matches), a ``checkpoint_torn`` truncates the record's payload (a
#: torn write).  Recovery must *verify* what it reads: the shard walks
#: back to the newest checkpoint whose CRC holds and quarantines the
#: damaged ones.  Like the shard kinds, ``site`` is ``"shard.<i>"`` and
#: ``count`` is the 1-based lookup sequence number at which the media
#: damage lands.
CHECKPOINT_FAULT_KINDS = ("checkpoint_corrupt", "checkpoint_torn")
#: Every shard-site kind (fires on lookup sequence numbers).
SHARD_SITE_KINDS = SHARD_FAULT_KINDS + CHECKPOINT_FAULT_KINDS
#: Every kind a :class:`FaultEvent` accepts.
ALL_FAULT_KINDS = (
    FAULT_KINDS + SERVE_FAULT_KINDS + SHARD_FAULT_KINDS + CHECKPOINT_FAULT_KINDS
)
#: Crash phases relative to a stage's WAL commit.
CRASH_PHASES = ("after_commit", "before_commit")
#: Default injection site of transient streaming-load failures.
ASL_LOAD_SITE = "asl.load"
#: Default injection site of serving-backend stalls.
BACKEND_SITE = "serve.backend"
#: Default injection site of request bursts.
ARRIVAL_SITE = "serve.arrivals"


class FaultError(RuntimeError):
    """Base class of every injected-fault exception."""


class InjectedCrash(FaultError):
    """Simulated power loss at a pipeline stage boundary."""

    def __init__(self, site: str, phase: str = "after_commit") -> None:
        super().__init__(f"crash injected at {site!r} ({phase})")
        self.site = site
        self.phase = phase


class TransientLoadError(FaultError):
    """One retryable streaming-load failure (a device stall)."""


class RetryExhaustedError(FaultError):
    """A transient fault outlived the retry policy's budget."""

    def __init__(self, site: str, attempts: int) -> None:
        super().__init__(
            f"transient faults at {site!r} exhausted {attempts} attempts"
        )
        self.site = site
        self.attempts = attempts


class BackendStallError(FaultError):
    """A serving-backend call stalled past the caller's stall budget."""

    def __init__(self, site: str, seconds: float) -> None:
        super().__init__(
            f"backend call at {site!r} stalled; abandoned after"
            f" {seconds:.3f}s"
        )
        self.site = site
        self.seconds = seconds


@dataclass(frozen=True)
class FaultEvent:
    """One declarative fault.

    Attributes:
        kind: one of :data:`ALL_FAULT_KINDS`.
        site: where the event fires — a pipeline stage name for
            ``crash``/``tier_loss``, :data:`ASL_LOAD_SITE` for
            ``transient_load``, ``"pm"`` for ``pm_degrade``,
            :data:`BACKEND_SITE` for ``backend_stall``,
            :data:`ARRIVAL_SITE` for ``request_burst``.
        count: how many failures a ``transient_load``/``backend_stall``
            event injects (consecutive attempts that fail), how many
            duplicate arrivals a ``request_burst`` adds, or — for the
            shard kinds — the 1-based lookup sequence number at which
            the fault fires.
        factor: bandwidth multiplier of a ``pm_degrade`` event
            (0 < factor <= 1; 0.5 halves the PM streaming bandwidth).
        phase: when a ``crash`` fires relative to the stage's WAL
            commit (:data:`CRASH_PHASES`).
        seconds: simulated duration of a ``backend_stall`` (how long a
            stalled call hangs before the caller's stall budget cuts it
            off); unused by the other kinds.
    """

    kind: str
    site: str
    count: int = 1
    factor: float = 1.0
    phase: str = "after_commit"
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {ALL_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        if self.phase not in CRASH_PHASES:
            raise ValueError(
                f"phase must be one of {CRASH_PHASES}, got {self.phase!r}"
            )
        if self.seconds < 0.0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")
        if self.kind == "backend_stall" and self.seconds == 0.0:
            raise ValueError("backend_stall events need seconds > 0")
        if self.kind == "shard_hang" and self.seconds == 0.0:
            raise ValueError("shard_hang events need seconds > 0")
        if self.kind in SHARD_SITE_KINDS and not self.site.startswith(
            "shard."
        ):
            raise ValueError(
                f"{self.kind} events target a 'shard.<i>' site,"
                f" got {self.site!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        payload = {
            "kind": self.kind,
            "site": self.site,
            "count": self.count,
            "factor": self.factor,
            "phase": self.phase,
        }
        if self.seconds:
            payload["seconds"] = self.seconds
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            kind=payload["kind"],
            site=payload["site"],
            count=int(payload.get("count", 1)),
            factor=float(payload.get("factor", 1.0)),
            phase=payload.get("phase", "after_commit"),
            seconds=float(payload.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable set of fault events.

    Plans compare equal when their events match, so a seeded plan can be
    asserted deterministic; ``seed`` records provenance only.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def random(
        cls,
        seed: int,
        stages: Iterable[str] = ("graph_read", "factorization", "propagation"),
        n_events: int = 3,
        max_transient: int = 2,
    ) -> "FaultPlan":
        """Seeded plan generator for chaos sweeps.

        Draws ``n_events`` events uniformly over the four kinds; crash
        and tier-loss sites come from ``stages``, transient counts from
        ``[1, max_transient]``, degradation factors from [0.25, 0.95].
        The same seed always yields the same plan.
        """
        import numpy as np

        stages = tuple(stages)
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(n_events):
            kind = FAULT_KINDS[int(rng.integers(len(FAULT_KINDS)))]
            if kind == "crash":
                events.append(
                    FaultEvent(
                        kind,
                        stages[int(rng.integers(len(stages)))],
                        phase=CRASH_PHASES[int(rng.integers(2))],
                    )
                )
            elif kind == "transient_load":
                events.append(
                    FaultEvent(
                        kind,
                        ASL_LOAD_SITE,
                        count=int(rng.integers(1, max_transient + 1)),
                    )
                )
            elif kind == "pm_degrade":
                events.append(
                    FaultEvent(
                        kind, "pm", factor=float(rng.uniform(0.25, 0.95))
                    )
                )
            else:
                events.append(
                    FaultEvent(kind, stages[int(rng.integers(len(stages)))])
                )
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def random_serve(
        cls,
        seed: int,
        n_events: int = 4,
        max_stall_calls: int = 8,
        stall_seconds: tuple[float, float] = (0.05, 0.5),
        max_burst: int = 12,
    ) -> "FaultPlan":
        """Seeded serving-chaos plan: stalls, bursts and PM derating.

        Draws ``n_events`` events over ``backend_stall`` /
        ``request_burst`` / ``pm_degrade`` (stall-biased, since stalls
        are what trip the circuit breaker).  The same seed always yields
        the same plan, so a ``serve-sim`` chaos run replays exactly.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        kinds = ("backend_stall", "backend_stall", "request_burst", "pm_degrade")
        events = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            if kind == "backend_stall":
                events.append(
                    FaultEvent(
                        kind,
                        BACKEND_SITE,
                        count=int(rng.integers(1, max_stall_calls + 1)),
                        seconds=float(rng.uniform(*stall_seconds)),
                    )
                )
            elif kind == "request_burst":
                events.append(
                    FaultEvent(
                        kind,
                        ARRIVAL_SITE,
                        count=int(rng.integers(2, max_burst + 1)),
                    )
                )
            else:
                events.append(
                    FaultEvent(
                        kind, "pm", factor=float(rng.uniform(0.25, 0.95))
                    )
                )
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def random_shard(
        cls,
        seed: int,
        n_shards: int = 4,
        n_events: int = 2,
        max_lookup: int = 40,
        hang_seconds: tuple[float, float] = (0.5, 2.0),
    ) -> "FaultPlan":
        """Seeded shard-chaos plan: crashes, hangs and heartbeat loss.

        Draws ``n_events`` events over the shard kinds (crash-biased —
        a dead shard is the recovery path worth exercising most), each
        targeting a uniform shard and firing at a uniform lookup
        sequence number in ``[1, max_lookup]``.  The same seed always
        yields the same plan, so a shard-kill chaos run replays exactly.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        kinds = ("shard_crash", "shard_crash", "shard_hang", "heartbeat_loss")
        events = []
        for _ in range(n_events):
            kind = kinds[int(rng.integers(len(kinds)))]
            site = f"shard.{int(rng.integers(n_shards))}"
            at = int(rng.integers(1, max_lookup + 1))
            if kind == "shard_hang":
                events.append(
                    FaultEvent(
                        kind,
                        site,
                        count=at,
                        seconds=float(rng.uniform(*hang_seconds)),
                    )
                )
            else:
                events.append(FaultEvent(kind, site, count=at))
        return cls(events=tuple(events), seed=seed)

    @classmethod
    def random_resilience(
        cls,
        seed: int,
        scenario: str,
        n_shards: int = 4,
        max_lookup: int = 30,
    ) -> "FaultPlan":
        """Seeded online-resilience plan for one chaos-matrix scenario.

        Scenarios (the CI chaos-matrix axes):

        - ``"promotion"`` — primary kills only (``shard_crash``), so a
          replica-backed fleet must fail over by promotion;
        - ``"reshard"`` — a kill plus a hang, landing while the
          supervisor is splitting/merging ranges under load imbalance;
        - ``"corruption"`` — checkpoint media damage
          (``checkpoint_corrupt`` / ``checkpoint_torn``) followed by a
          kill of the same shard, forcing verified walk-back recovery.

        The same ``(seed, scenario)`` always yields the same plan.
        """
        import numpy as np

        scenarios = ("promotion", "reshard", "corruption")
        if scenario not in scenarios:
            raise ValueError(
                f"scenario must be one of {scenarios}, got {scenario!r}"
            )
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        if scenario == "promotion":
            for _ in range(2):
                site = f"shard.{int(rng.integers(n_shards))}"
                at = int(rng.integers(2, max_lookup + 1))
                events.append(FaultEvent("shard_crash", site, count=at))
        elif scenario == "reshard":
            site = f"shard.{int(rng.integers(n_shards))}"
            events.append(
                FaultEvent(
                    "shard_crash",
                    site,
                    count=int(rng.integers(2, max_lookup + 1)),
                )
            )
            events.append(
                FaultEvent(
                    "shard_hang",
                    f"shard.{int(rng.integers(n_shards))}",
                    count=int(rng.integers(2, max_lookup + 1)),
                    seconds=float(rng.uniform(0.5, 1.5)),
                )
            )
        else:  # corruption
            shard = int(rng.integers(n_shards))
            damage = CHECKPOINT_FAULT_KINDS[int(rng.integers(2))]
            at = int(rng.integers(2, max(3, max_lookup // 2)))
            events.append(FaultEvent(damage, f"shard.{shard}", count=at))
            events.append(
                FaultEvent(
                    "shard_crash",
                    f"shard.{shard}",
                    count=int(rng.integers(at + 1, max_lookup + 2)),
                )
            )
        return cls(events=tuple(events), seed=seed)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            events=tuple(
                FaultEvent.from_dict(e) for e in payload.get("events", [])
            ),
            seed=payload.get("seed"),
        )

    def save(self, path: str | Path) -> Path:
        """Write the plan as JSON (the CLI's ``--faults`` format)."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class FaultInjector:
    """Stateful runtime consuming a :class:`FaultPlan`.

    Each event fires at most ``count`` times (once for crashes and tier
    losses); consumed events never re-fire, so a resumed run does not
    replay the crash that interrupted it.  All injections are counted
    in ``faults.injected`` (labelled by kind) on the supplied registry.
    """

    def __init__(
        self, plan: FaultPlan, metrics: "MetricsRegistry | None" = None
    ) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.plan = plan
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._remaining: list[list] = [
            [event, event.count] for event in plan.events
        ]

    def _consume(self, kind: str, site: str, n: int = 1) -> FaultEvent | None:
        for entry in self._remaining:
            event, remaining = entry
            if event.kind == kind and event.site == site and remaining >= n:
                entry[1] = remaining - n
                self.metrics.counter("faults.injected", kind=kind).inc(n)
                return event
        return None

    # -- per-kind queries the instrumented components call -----------------

    def should_crash(self, site: str, phase: str = "after_commit") -> bool:
        """Consume a crash event at a stage boundary, if one is armed."""
        for entry in self._remaining:
            event, remaining = entry
            if (
                event.kind == "crash"
                and event.site == site
                and event.phase == phase
                and remaining > 0
            ):
                entry[1] = remaining - 1
                self.metrics.counter("faults.injected", kind="crash").inc()
                return True
        return False

    def take_transient_failure(self, site: str = ASL_LOAD_SITE) -> bool:
        """Consume one transient failure at a load site, if armed."""
        return self._consume("transient_load", site) is not None

    def pm_derate(self) -> float:
        """Product of every armed PM-degradation factor (1.0 = healthy).

        Degradation events stay active once triggered — a slow DIMM does
        not recover — so this does not consume them, but the first call
        counts each event's injection.
        """
        factor = 1.0
        for entry in self._remaining:
            event, remaining = entry
            if event.kind == "pm_degrade":
                if remaining > 0:
                    entry[1] = 0
                    self.metrics.counter(
                        "faults.injected", kind="pm_degrade"
                    ).inc()
                factor *= event.factor
        return factor

    def tier_loss(self, site: str) -> FaultEvent | None:
        """Consume a PM tier-capacity-loss event at a stage start."""
        return self._consume("tier_loss", site)

    def take_backend_stall(self, site: str = BACKEND_SITE) -> FaultEvent | None:
        """Consume one stalled backend call at a serving site, if armed."""
        return self._consume("backend_stall", site)

    def take_request_burst(self, site: str = ARRIVAL_SITE) -> FaultEvent | None:
        """Consume one request-burst event at the admission queue.

        A burst fires once; its ``count`` is the number of duplicate
        requests it injects, so the whole event is drained in one take.
        """
        for entry in self._remaining:
            event, remaining = entry
            if (
                event.kind == "request_burst"
                and event.site == site
                and remaining > 0
            ):
                entry[1] = 0
                self.metrics.counter(
                    "faults.injected", kind="request_burst"
                ).inc()
                return event
        return None

    def take_shard_fault(self, site: str, seq: int) -> FaultEvent | None:
        """Consume one armed shard fault at ``site`` due by lookup ``seq``.

        Shard events (including the checkpoint-media kinds) interpret
        ``count`` as the 1-based scatter-gather lookup sequence number
        at which they fire; each event fires exactly once, at the first
        lookup whose sequence reaches it.  Call repeatedly to drain
        multiple events due at the same sequence number.
        """
        for entry in self._remaining:
            event, remaining = entry
            if (
                event.kind in SHARD_SITE_KINDS
                and event.site == site
                and remaining > 0
                and seq >= event.count
            ):
                entry[1] = 0
                self.metrics.counter(
                    "faults.injected", kind=event.kind
                ).inc()
                return event
        return None

    @property
    def pending(self) -> int:
        """Total injections still armed."""
        return sum(remaining for _, remaining in self._remaining)
