"""repro.shard — fault-tolerant multi-process sharded embedding store.

The embedding table is partitioned into entropy-aware contiguous
ranges, each served by a real shard process over shared memory and
journaled into a WAL checkpoint store; a supervisor restarts crashed or
hung shards from their checkpoints with bounded staleness, and the
scatter-gather front hedges failed shards through replicas and the
stale-checkpoint tier instead of failing whole requests.
"""

from repro.shard.errors import (
    PartialResultError,
    ShardCrashError,
    ShardError,
    ShardHungError,
    ShardTimeoutError,
)
from repro.shard.ranges import (
    ShardRoutingTable,
    entropy_aware_node_ranges,
    uniform_node_ranges,
)
from repro.shard.store import (
    STATUS_FRESH,
    STATUS_MISSING,
    STATUS_REPLICA,
    STATUS_STALE,
    EmbeddingShardManager,
    ShardHost,
    ShardLookupResult,
    ShardPolicy,
)
from repro.shard.supervisor import (
    DEFAULT_RESTART_BACKOFF,
    Incident,
    ShardSupervisor,
    SupervisorPolicy,
)

__all__ = [
    "DEFAULT_RESTART_BACKOFF",
    "EmbeddingShardManager",
    "Incident",
    "PartialResultError",
    "STATUS_FRESH",
    "STATUS_MISSING",
    "STATUS_REPLICA",
    "STATUS_STALE",
    "ShardCrashError",
    "ShardError",
    "ShardHost",
    "ShardHungError",
    "ShardLookupResult",
    "ShardPolicy",
    "ShardRoutingTable",
    "ShardSupervisor",
    "ShardTimeoutError",
    "SupervisorPolicy",
    "entropy_aware_node_ranges",
    "uniform_node_ranges",
]
