"""repro.shard — fault-tolerant multi-process sharded embedding store.

The embedding table is partitioned into entropy-aware contiguous
ranges (or a consistent-hash ring), each served by a real shard process
over shared memory and journaled into a CRC-checksummed WAL checkpoint
store; a supervisor promotes warm replicas or restarts crashed shards
from their newest *verified* checkpoint, re-checkpoints stale shards in
the background to bound staleness, elastically splits hot shards
online, and the scatter-gather front hedges failed shards through
replicas and the stale-checkpoint tier instead of failing whole
requests.
"""

from repro.shard.errors import (
    CheckpointCorruptionError,
    PartialResultError,
    ShardCrashError,
    ShardError,
    ShardHungError,
    ShardTimeoutError,
)
from repro.shard.ranges import (
    HashRoutingTable,
    ShardRoutingTable,
    entropy_aware_node_ranges,
    uniform_node_ranges,
)
from repro.shard.refresh import BackgroundCheckpointer
from repro.shard.store import (
    STATUS_FRESH,
    STATUS_MISSING,
    STATUS_REPLICA,
    STATUS_STALE,
    EmbeddingShardManager,
    ShardHost,
    ShardLookupResult,
    ShardPolicy,
)
from repro.shard.supervisor import (
    DEFAULT_RESTART_BACKOFF,
    Incident,
    ShardSupervisor,
    SupervisorPolicy,
)

__all__ = [
    "BackgroundCheckpointer",
    "CheckpointCorruptionError",
    "DEFAULT_RESTART_BACKOFF",
    "EmbeddingShardManager",
    "HashRoutingTable",
    "Incident",
    "PartialResultError",
    "STATUS_FRESH",
    "STATUS_MISSING",
    "STATUS_REPLICA",
    "STATUS_STALE",
    "ShardCrashError",
    "ShardError",
    "ShardHost",
    "ShardHungError",
    "ShardLookupResult",
    "ShardPolicy",
    "ShardRoutingTable",
    "ShardSupervisor",
    "ShardTimeoutError",
    "SupervisorPolicy",
    "entropy_aware_node_ranges",
    "uniform_node_ranges",
]
