"""Entropy-aware shard ranges and the scatter-gather routing table.

The embedding table is split into contiguous *node-id* ranges (routing
stays an O(log N) binary search) whose boundaries come from the same
EaTA time model the SpMM allocator uses
(:class:`~repro.core.eata.EntropyAwareAllocator`): each node's expected
lookup cost is its degree derated by the Eq. 5 bandwidth-degradation
factor ``g(z)`` plus a constant per-row term, and the prefix sums of
that proxy are split into equal quantiles.  Hot, scattered regions of
the graph therefore land on smaller shards, equalizing per-shard load
the way EaTA equalizes per-thread completion times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


def entropy_aware_node_ranges(
    degrees: np.ndarray,
    n_shards: int,
    beta: float = 0.41,
    row_overhead_nnz: float = 2.0,
) -> list[tuple[int, int]]:
    """Contiguous node ranges equalizing the EaTA cost proxy.

    Args:
        degrees: per-node degree (natural node-id order).
        n_shards: number of shards to cut.
        beta: random/sequential bandwidth ratio of Eq. 5.
        row_overhead_nnz: constant per-row cost term.

    Returns exactly ``n_shards`` half-open ``(start, end)`` ranges
    covering ``[0, len(degrees))``; trailing shards may be empty on
    degenerate inputs.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    degrees = np.asarray(degrees, dtype=np.float64)
    n_nodes = len(degrees)
    if n_nodes == 0:
        return [(0, 0)] * n_shards
    total = float(degrees.sum())
    log_v = float(np.log(max(n_nodes, 2)))
    w_nominal = max(total / n_shards, 1.0)
    # Each node's normalized-entropy window under a nominal shard load,
    # exactly as EntropyAwareAllocator.allocate estimates it per row.
    z = np.log(np.maximum(w_nominal / np.maximum(degrees, 1.0), 1.0))
    z = np.minimum(z / log_v, 1.0)
    g = 1.0 - z + beta * z
    proxy = degrees / g + row_overhead_nnz
    prefix = np.concatenate([[0.0], np.cumsum(proxy)])
    targets = np.linspace(0.0, prefix[-1], n_shards + 1)
    ranges: list[tuple[int, int]] = []
    start = 0
    for shard in range(n_shards):
        if shard == n_shards - 1:
            end = n_nodes
        else:
            end = int(np.searchsorted(prefix, targets[shard + 1], side="left"))
            end = min(max(end, start), n_nodes)
        ranges.append((start, end))
        start = end
    return ranges


def uniform_node_ranges(n_nodes: int, n_shards: int) -> list[tuple[int, int]]:
    """Plain equal-row ranges (the RR baseline; no degree information)."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    bounds = np.linspace(0, n_nodes, n_shards + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1])) for i in range(n_shards)
    ]


@dataclass(frozen=True)
class ShardRoutingTable:
    """Maps node ids onto contiguous shard ranges.

    Immutable and JSON-serializable, so the table travels with run
    manifests and fault plans; lookups are vectorized binary searches.
    """

    ranges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        ranges = tuple((int(a), int(b)) for a, b in self.ranges)
        if not ranges:
            raise ValueError("routing table needs at least one range")
        cursor = 0
        for index, (start, end) in enumerate(ranges):
            if start != cursor or end < start:
                raise ValueError(
                    f"ranges must be contiguous from 0; range {index}"
                    f" is [{start}, {end}) after cursor {cursor}"
                )
            cursor = end
        object.__setattr__(self, "ranges", ranges)

    @property
    def n_shards(self) -> int:
        return len(self.ranges)

    @property
    def n_nodes(self) -> int:
        return self.ranges[-1][1]

    def shard_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Owning shard of every node id (vectorized)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if len(node_ids) and (
            node_ids.min() < 0 or node_ids.max() >= self.n_nodes
        ):
            raise ValueError(
                f"node ids outside [0, {self.n_nodes}):"
                f" [{node_ids.min()}, {node_ids.max()}]"
            )
        boundaries = np.asarray(
            [end for _, end in self.ranges], dtype=np.int64
        )
        return np.searchsorted(boundaries, node_ids, side="right")

    def split(
        self, node_ids: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Group a lookup by shard: ``{shard: (positions, node_ids)}``.

        ``positions`` index back into the original request order, so
        gathered rows scatter straight into the caller's output buffer.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        owners = self.shard_of(node_ids)
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for shard in np.unique(owners):
            mask = owners == shard
            out[int(shard)] = (np.flatnonzero(mask), node_ids[mask])
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {"ranges": [list(r) for r in self.ranges]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardRoutingTable":
        """Rebuild a table from :meth:`to_dict` output."""
        return cls(
            ranges=tuple(tuple(r) for r in payload.get("ranges", []))
        )
