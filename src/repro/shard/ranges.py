"""Entropy-aware shard ranges and the scatter-gather routing table.

The embedding table is split into contiguous *node-id* ranges (routing
stays an O(log N) binary search) whose boundaries come from the same
EaTA time model the SpMM allocator uses
(:class:`~repro.core.eata.EntropyAwareAllocator`): each node's expected
lookup cost is its degree derated by the Eq. 5 bandwidth-degradation
factor ``g(z)`` plus a constant per-row term, and the prefix sums of
that proxy are split into equal quantiles.  Hot, scattered regions of
the graph therefore land on smaller shards, equalizing per-shard load
the way EaTA equalizes per-thread completion times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np


def entropy_aware_node_ranges(
    degrees: np.ndarray,
    n_shards: int,
    beta: float = 0.41,
    row_overhead_nnz: float = 2.0,
) -> list[tuple[int, int]]:
    """Contiguous node ranges equalizing the EaTA cost proxy.

    Args:
        degrees: per-node degree (natural node-id order).
        n_shards: number of shards to cut.
        beta: random/sequential bandwidth ratio of Eq. 5.
        row_overhead_nnz: constant per-row cost term.

    Returns exactly ``n_shards`` half-open ``(start, end)`` ranges
    covering ``[0, len(degrees))``; trailing shards may be empty on
    degenerate inputs.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta}")
    degrees = np.asarray(degrees, dtype=np.float64)
    n_nodes = len(degrees)
    if n_nodes == 0:
        return [(0, 0)] * n_shards
    total = float(degrees.sum())
    log_v = float(np.log(max(n_nodes, 2)))
    w_nominal = max(total / n_shards, 1.0)
    # Each node's normalized-entropy window under a nominal shard load,
    # exactly as EntropyAwareAllocator.allocate estimates it per row.
    z = np.log(np.maximum(w_nominal / np.maximum(degrees, 1.0), 1.0))
    z = np.minimum(z / log_v, 1.0)
    g = 1.0 - z + beta * z
    proxy = degrees / g + row_overhead_nnz
    prefix = np.concatenate([[0.0], np.cumsum(proxy)])
    targets = np.linspace(0.0, prefix[-1], n_shards + 1)
    ranges: list[tuple[int, int]] = []
    start = 0
    for shard in range(n_shards):
        if shard == n_shards - 1:
            end = n_nodes
        else:
            end = int(np.searchsorted(prefix, targets[shard + 1], side="left"))
            end = min(max(end, start), n_nodes)
        ranges.append((start, end))
        start = end
    return ranges


def uniform_node_ranges(n_nodes: int, n_shards: int) -> list[tuple[int, int]]:
    """Plain equal-row ranges (the RR baseline; no degree information)."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    bounds = np.linspace(0, n_nodes, n_shards + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1])) for i in range(n_shards)
    ]


@dataclass(frozen=True)
class ShardRoutingTable:
    """Maps node ids onto contiguous shard ranges.

    Immutable and JSON-serializable, so the table travels with run
    manifests and fault plans; lookups are vectorized binary searches.
    """

    ranges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        ranges = tuple((int(a), int(b)) for a, b in self.ranges)
        if not ranges:
            raise ValueError("routing table needs at least one range")
        cursor = 0
        for index, (start, end) in enumerate(ranges):
            if start != cursor or end < start:
                raise ValueError(
                    f"ranges must be contiguous from 0; range {index}"
                    f" is [{start}, {end}) after cursor {cursor}"
                )
            cursor = end
        object.__setattr__(self, "ranges", ranges)

    @property
    def n_shards(self) -> int:
        return len(self.ranges)

    @property
    def n_nodes(self) -> int:
        return self.ranges[-1][1]

    def shard_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Owning shard of every node id (vectorized)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if len(node_ids) and (
            node_ids.min() < 0 or node_ids.max() >= self.n_nodes
        ):
            raise ValueError(
                f"node ids outside [0, {self.n_nodes}):"
                f" [{node_ids.min()}, {node_ids.max()}]"
            )
        boundaries = np.asarray(
            [end for _, end in self.ranges], dtype=np.int64
        )
        return np.searchsorted(boundaries, node_ids, side="right")

    def split(
        self, node_ids: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Group a lookup by shard: ``{shard: (positions, node_ids)}``.

        ``positions`` index back into the original request order, so
        gathered rows scatter straight into the caller's output buffer.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        owners = self.shard_of(node_ids)
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for shard in np.unique(owners):
            mask = owners == shard
            out[int(shard)] = (np.flatnonzero(mask), node_ids[mask])
        return out

    def range_summaries(self) -> list[list[int]]:
        """Display form of per-shard ownership: ``[[start, end], ...]``."""
        return [list(r) for r in self.ranges]

    def split_range(
        self, shard: int, at: int
    ) -> "ShardRoutingTable":
        """A new table with ``shard``'s range cut at ``at`` (two shards)."""
        start, end = self.ranges[shard]
        if not start < at < end:
            raise ValueError(f"split point {at} outside ({start}, {end})")
        ranges = list(self.ranges)
        ranges[shard : shard + 1] = [(start, at), (at, end)]
        return ShardRoutingTable(ranges=tuple(ranges))

    def merge_ranges(self, shard: int) -> "ShardRoutingTable":
        """A new table with ``shard`` and ``shard + 1`` fused into one."""
        if shard + 1 >= self.n_shards:
            raise ValueError(f"shard {shard} has no right neighbour")
        ranges = list(self.ranges)
        ranges[shard : shard + 2] = [
            (self.ranges[shard][0], self.ranges[shard + 1][1])
        ]
        return ShardRoutingTable(ranges=tuple(ranges))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {"kind": "range", "ranges": [list(r) for r in self.ranges]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardRoutingTable":
        """Rebuild a table from :meth:`to_dict` output."""
        return cls(
            ranges=tuple(tuple(r) for r in payload.get("ranges", []))
        )


def _splitmix64(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mix (splitmix64 finalizer), vectorized."""
    with np.errstate(over="ignore"):
        z = values.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


@dataclass(frozen=True)
class HashRoutingTable:
    """Consistent-hash routing: node ids onto a virtual-node ring.

    The alternative to contiguous ranges: each shard owns ``vnodes``
    points on a 64-bit ring, and a node id belongs to the shard owning
    the first ring point at or after its hash.  Ownership is scattered
    — immune to contiguous hot ranges — and adding or removing a shard
    moves only ~``1/n_shards`` of the keys, which is the property
    elastic membership wants.  Same protocol surface as
    :class:`ShardRoutingTable` (``shard_of`` / ``split`` /
    ``range_summaries`` / ``to_dict``), so the store can swap either in.
    """

    n_nodes: int
    n_shards: int
    vnodes: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {self.n_nodes}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        # Double-mixed so ring points never coincide with key hashes
        # (both start from small integers; one shared round would pin
        # node i to vnode i and collapse the ring back to ranges).
        seed_mix = (self.seed * 0x51_7C_C1B7_2722_0A95) & 0xFFFF_FFFF_FFFF_FFFF
        points = _splitmix64(
            _splitmix64(
                np.arange(self.n_shards * self.vnodes, dtype=np.uint64)
                + np.uint64(seed_mix)
            )
        )
        order = np.argsort(points, kind="stable")
        object.__setattr__(self, "_ring_points", points[order])
        object.__setattr__(
            self,
            "_ring_owners",
            (
                np.arange(self.n_shards * self.vnodes, dtype=np.int64)
                // self.vnodes
            )[order],
        )

    def shard_of(self, node_ids: np.ndarray) -> np.ndarray:
        """Owning shard of every node id (vectorized ring walk)."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if len(node_ids) and (
            node_ids.min() < 0 or node_ids.max() >= self.n_nodes
        ):
            raise ValueError(
                f"node ids outside [0, {self.n_nodes}):"
                f" [{node_ids.min()}, {node_ids.max()}]"
            )
        hashes = _splitmix64(node_ids.astype(np.uint64))
        ring = getattr(self, "_ring_points")
        owners = getattr(self, "_ring_owners")
        slots = np.searchsorted(ring, hashes, side="left") % len(ring)
        return owners[slots]

    def split(
        self, node_ids: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Group a lookup by shard: ``{shard: (positions, node_ids)}``."""
        node_ids = np.asarray(node_ids, dtype=np.int64)
        owners = self.shard_of(node_ids)
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for shard in np.unique(owners):
            mask = owners == shard
            out[int(shard)] = (np.flatnonzero(mask), node_ids[mask])
        return out

    def members(self, shard: int) -> np.ndarray:
        """Sorted node ids a shard owns (materialized ownership)."""
        all_ids = np.arange(self.n_nodes, dtype=np.int64)
        return all_ids[self.shard_of(all_ids) == shard]

    def range_summaries(self) -> list[list[int]]:
        """Display form: each shard's ``[min_id, max_id + 1]`` envelope."""
        out: list[list[int]] = []
        for shard in range(self.n_shards):
            ids = self.members(shard)
            if len(ids):
                out.append([int(ids[0]), int(ids[-1]) + 1])
            else:
                out.append([0, 0])
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "kind": "hash",
            "n_nodes": self.n_nodes,
            "n_shards": self.n_shards,
            "vnodes": self.vnodes,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "HashRoutingTable":
        """Rebuild a table from :meth:`to_dict` output."""
        return cls(
            n_nodes=int(payload["n_nodes"]),
            n_shards=int(payload["n_shards"]),
            vnodes=int(payload.get("vnodes", 64)),
            seed=int(payload.get("seed", 0)),
        )
