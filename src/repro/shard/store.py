"""Multi-process sharded embedding store with hedged scatter-gather.

The embedding table is partitioned into contiguous node ranges (EaTA
entropy-aware by default, :mod:`repro.shard.ranges`), each owned by a
:class:`ShardHost`: a real OS process serving lookups from a
shared-memory segment, heartbeating through a shared counter, and
journaling its rows into a WAL-style
:class:`~repro.memsim.persistence.StageCheckpointStore` on a simulated
PM persistence domain.

:class:`EmbeddingShardManager` keeps the authoritative table, routes
lookups through a :class:`~repro.shard.ranges.ShardRoutingTable`, and
scatter-gathers with a hedging ladder per shard::

    primary process -> replica process -> stale checkpoint tier -> miss

Every rung is typed: a dead primary raises
:class:`~repro.shard.errors.ShardCrashError` internally, the checkpoint
tier marks its rows stale (bounded staleness = authoritative version
minus checkpoint version), and only when every rung fails does
:class:`~repro.shard.errors.PartialResultError` escape to the caller —
carrying exactly which node ranges went unserved so the serving ladder
can degrade per shard rather than per table.

Deterministic chaos: :meth:`EmbeddingShardManager.lookup` numbers every
scatter-gather call and offers that sequence number to a
:class:`~repro.faults.FaultInjector`, so a seeded
:meth:`~repro.faults.FaultPlan.random_shard` plan kills, hangs, or mutes
exactly the same shard at exactly the same lookup on every run.

Simulated vs wall time: process death, heartbeats, and deadlines are
*wall-clock* mechanics (they exercise real crash recovery); the cost a
lookup reports (``sim_seconds``) is charged on the simulated cost model
— DRAM random reads for fresh rows, PM random reads plus a hedge
penalty for checkpoint-tier rows — so serve-level SLO math stays in the
paper's device terms.
"""

from __future__ import annotations

import os
import queue as queue_module
import secrets
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.faults import FaultEvent, FaultInjector
from repro.formats.csdb import (
    SharedArraySpec,
    attach_shared_array,
    create_shared_array,
    unlink_segment,
)
from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    Locality,
    Operation,
    dram_spec,
    pm_spec,
)
from repro.memsim.persistence import PersistenceDomain, StageCheckpointStore
from repro.obs.metrics import MetricsRegistry
from repro.parallel.shared import _mp_context
from repro.shard.errors import (
    CheckpointCorruptionError,
    PartialResultError,
    ShardCrashError,
    ShardTimeoutError,
)
from repro.shard.process import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    shard_main,
)
from repro.shard.ranges import (
    HashRoutingTable,
    ShardRoutingTable,
    entropy_aware_node_ranges,
    uniform_node_ranges,
)

#: How rows were sourced for one shard of a scatter-gather.
STATUS_FRESH = "fresh"
STATUS_REPLICA = "replica"
STATUS_STALE = "stale"
STATUS_MISSING = "missing"

#: Poll granularity while waiting on a shard ack (fast crash detection).
_POLL_S = 0.02


@dataclass(frozen=True)
class ShardPolicy:
    """Configuration of the sharded store.

    Attributes:
        n_shards: shard (process) count.
        n_replicas: extra lookup processes per shard sharing its
            segment; the first hedge target, and the promotion pool the
            supervisor fails over to on primary death.
        partition: ``"entropy"`` (EaTA cost-proxy quantiles),
            ``"uniform"`` (equal rows), or ``"hash"`` (consistent-hash
            ring; shards own scattered node-id sets).
        beta: EaTA bandwidth-degradation ratio for entropy partitioning.
        lookup_deadline_s: wall-clock deadline of one per-shard call.
            Must sit below injected hang durations for deterministic
            hedging, and far above a healthy roundtrip.
        hedge_enabled: when False, shard failures propagate instead of
            hedging (the unsupervised benchmark arm).
        hedge_sim_penalty_s: simulated seconds charged per hedged shard
            (the abandoned primary read plus coordination).
        heartbeat_interval_s: idle heartbeat period of shard processes.
        checkpoint_interval: background checkpoint cadence in lookups
            (staggered per shard); 0 disables cadence-driven refresh.
        staleness_bound: refresh a shard as soon as
            ``table_version - checkpoint_version`` reaches this bound;
            0 disables the bound trigger.
    """

    n_shards: int = 4
    n_replicas: int = 0
    partition: str = "entropy"
    beta: float = 0.41
    lookup_deadline_s: float = 0.25
    hedge_enabled: bool = True
    hedge_sim_penalty_s: float = 5e-4
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S
    checkpoint_interval: int = 0
    staleness_bound: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_replicas < 0:
            raise ValueError(
                f"n_replicas must be >= 0, got {self.n_replicas}"
            )
        if self.partition not in ("entropy", "uniform", "hash"):
            raise ValueError(
                f"partition must be 'entropy', 'uniform' or 'hash',"
                f" got {self.partition!r}"
            )
        if self.lookup_deadline_s <= 0:
            raise ValueError(
                f"lookup_deadline_s must be > 0, got {self.lookup_deadline_s}"
            )
        if self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be >= 0,"
                f" got {self.checkpoint_interval}"
            )
        if self.staleness_bound < 0:
            raise ValueError(
                f"staleness_bound must be >= 0, got {self.staleness_bound}"
            )

    @property
    def refresh_enabled(self) -> bool:
        """Whether any background-refresh trigger is configured."""
        return self.checkpoint_interval > 0 or self.staleness_bound > 0


@dataclass(frozen=True)
class ShardLookupResult:
    """Outcome of one scatter-gather lookup.

    Attributes:
        rows: gathered embedding rows, request order.
        stale_rows: rows served from a stale source (checkpoint tier or
            a restarted shard that has not caught up).
        stale_ranges: ``(shard_id, row_start, row_end)`` node ranges the
            stale rows came from.
        statuses: per-shard source, ``{shard_id: STATUS_*}``.
        sim_seconds: simulated cost of the gather.
        seq: this lookup's 1-based sequence number (the coordinate
            shard fault plans fire on).
        shard_details: per-shard cost itemization for forensics — one
            ``{shard, status, rows, sim_seconds, hedge_penalty_s,
            stale}`` dict per gathered shard, whose ``sim_seconds``
            sum exactly to :attr:`sim_seconds`.
        refresh_sim_seconds: background-checkpointer seconds billed
            during this lookup's refresh tick.  Off the request clock
            by design; forensics records it as overlap, not latency.
    """

    rows: np.ndarray
    stale_rows: int
    stale_ranges: tuple[tuple[int, int, int], ...]
    statuses: dict[int, str]
    sim_seconds: float
    seq: int
    shard_details: tuple[dict, ...] = ()
    refresh_sim_seconds: float = 0.0


class _ShardWorker:
    """Owner-side handle of one shard process (primary or replica).

    ``row_start`` is the worker's index base: an int offset for
    contiguous ranges, or the shard's sorted owned-id array for
    consistent-hash ownership (the process maps via searchsorted).
    """

    __slots__ = ("process", "jobs", "results", "heartbeat", "next_req")

    def __init__(self, ctx, spec, shard_id, row_start, version, interval_s):
        self.jobs = ctx.Queue()
        self.results = ctx.Queue()
        self.heartbeat = ctx.Value("Q", 0, lock=True)
        self.next_req = 0
        self.process = ctx.Process(
            target=shard_main,
            args=(
                shard_id,
                spec,
                row_start,
                version,
                self.jobs,
                self.results,
                self.heartbeat,
                interval_s,
            ),
            daemon=True,
        )
        self.process.start()

    def stop(self, timeout: float = 2.0) -> None:
        if self.process.is_alive():
            try:
                self.jobs.put(None)
            except ValueError:  # pragma: no cover - queue already closed
                pass
            self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        for channel in (self.jobs, self.results):
            channel.close()
            channel.join_thread()


class ShardHost:
    """Owner side of one shard: segment, processes, WAL checkpoints.

    The host keeps the shard's rows in a named shared-memory segment
    served by a primary process (plus optional replicas).  Durability is
    modelled honestly: a restart never trusts the segment — it rebuilds
    the rows from the last WAL checkpoint, so anything written after
    that checkpoint comes back *stale* until :meth:`catch_up` replays it
    from the manager's authoritative copy.
    """

    def __init__(
        self,
        shard_id: int,
        rows: np.ndarray,
        row_start: int,
        policy: ShardPolicy,
        ctx=None,
        domain: PersistenceDomain | None = None,
        node_ids: np.ndarray | None = None,
    ) -> None:
        self.shard_id = shard_id
        if node_ids is not None:
            self.node_ids: np.ndarray | None = np.sort(
                np.asarray(node_ids, dtype=np.int64)
            )
            if len(self.node_ids) != len(rows):
                raise ValueError(
                    f"{len(self.node_ids)} node ids for {len(rows)} rows"
                )
            self.row_start = int(self.node_ids[0]) if len(self.node_ids) else 0
            self.row_end = (
                int(self.node_ids[-1]) + 1 if len(self.node_ids) else 0
            )
        else:
            self.node_ids = None
            self.row_start = row_start
            self.row_end = row_start + len(rows)
        self.policy = policy
        self.version = 0
        self.checkpoint_version: int | None = None
        self.generation = 0
        self.restarts = 0
        self.promotions = 0
        self.quarantined = 0
        self.abandoned = False
        self.recovery_sim_seconds = 0.0
        #: Called with (shard_id, sequence, reason) when a damaged
        #: checkpoint record is quarantined (set by the manager).
        self.on_quarantine: Callable[[int, int, str], None] | None = None
        self._ctx = ctx if ctx is not None else _mp_context()
        token = secrets.token_hex(4)
        self._name = f"shard-{os.getpid()}-{token}-{shard_id}"
        self.spec = create_shared_array(np.asarray(rows, dtype=np.float64), self._name)
        self._view, self._segment = attach_shared_array(self.spec)
        domain = domain if domain is not None else PersistenceDomain(device=pm_spec())
        self.domain = domain
        self.checkpoints = StageCheckpointStore(domain)
        self._workers: list[_ShardWorker] = []
        self._closed = False

    def _index_base(self):
        """What workers use to map global node ids to local slots."""
        return self.node_ids if self.node_ids is not None else self.row_start

    def _local(self, node_ids: np.ndarray) -> np.ndarray:
        """Owner-side global-id → local-slot mapping."""
        ids = np.asarray(node_ids, dtype=np.int64)
        if self.node_ids is None:
            return ids - self.row_start
        return np.searchsorted(self.node_ids, ids)

    @property
    def n_rows(self) -> int:
        return len(self._view)

    # -- lifecycle -------------------------------------------------------

    def start(self, checkpoint: bool = True) -> None:
        """Spawn the primary (+replicas) and cut the genesis checkpoint."""
        if self._workers:
            raise RuntimeError(f"shard {self.shard_id} already started")
        if checkpoint:
            self.checkpoint()
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        self._workers = [
            self._spawn_worker() for _ in range(1 + self.policy.n_replicas)
        ]

    def _spawn_worker(self) -> _ShardWorker:
        return _ShardWorker(
            self._ctx,
            self.spec,
            self.shard_id,
            self._index_base(),
            self.version,
            self.policy.heartbeat_interval_s,
        )

    def close(self) -> None:
        """Stop every process and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        self._workers = []
        del self._view
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - exported view
            pass
        unlink_segment(self._name)

    def __enter__(self) -> "ShardHost":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- liveness --------------------------------------------------------

    @property
    def workers(self) -> list[_ShardWorker]:
        return self._workers

    def alive(self, replica: int = 0) -> bool:
        """Whether worker ``replica`` (0 = primary) is running."""
        if replica >= len(self._workers):
            return False
        return self._workers[replica].process.is_alive()

    def heartbeat_value(self, replica: int = 0) -> int:
        return int(self._workers[replica].heartbeat.value)

    # -- durability ------------------------------------------------------

    def checkpoint(self, crash: bool = False) -> int:
        """Durably journal the shard's current rows.

        Follows the WAL discipline of
        :class:`~repro.memsim.persistence.StageCheckpointStore`: with
        ``crash=True`` the record is lost
        (:class:`~repro.memsim.persistence.CrashInjected` propagates)
        but every earlier checkpoint stays durable.
        """
        sequence = self.checkpoints.append(
            f"shard-{self.shard_id}",
            {"rows": np.array(self._view, copy=True)},
            {
                "version": self.version,
                "row_start": self.row_start,
                "row_end": self.row_end,
                "n_rows": self.n_rows,
            },
            crash=crash,
        )
        self.checkpoint_version = self.version
        return sequence

    def last_verified_record(self):
        """Newest checkpoint whose CRC verifies, quarantining bad ones.

        Recovery never trusts the simulated PM media: records are
        walked newest-to-oldest, each verified against its commit-time
        checksum; damaged records (``checkpoint_corrupt`` /
        ``checkpoint_torn`` faults) are quarantined — dropped from the
        log and reported via :attr:`on_quarantine` — instead of being
        served or crashing the shard.

        Raises:
            CheckpointCorruptionError: every record failed verification.
            ShardCrashError: the log is empty.
        """
        records = self.checkpoints.records
        if not records:
            raise ShardCrashError(self.shard_id, "no checkpoint to restore")
        for record in reversed(records):
            if self.checkpoints.verify(record):
                if self.checkpoint_version is not None:
                    # Walk-back may land on an older checkpoint: the
                    # staleness bound must report the truth.
                    self.checkpoint_version = int(record.meta["version"])
                return record
            self.checkpoints.quarantine(record)
            self.quarantined += 1
            if self.on_quarantine is not None:
                self.on_quarantine(
                    self.shard_id, record.sequence, "crc_mismatch"
                )
        raise CheckpointCorruptionError(self.shard_id, self.quarantined)

    def recover_rows(self, node_ids: np.ndarray) -> tuple[np.ndarray, int]:
        """Stale-tier read from the newest *verified* checkpoint.

        Works with the shard's processes dead — this is the hedge of
        last resort.  Returns the rows and the checkpoint's version.
        """
        record = self.last_verified_record()
        ids = self._local(node_ids)
        return (
            np.array(record.arrays["rows"][ids], copy=True),
            int(record.meta["version"]),
        )

    # -- mutation --------------------------------------------------------

    def write_rows(self, node_ids: np.ndarray, rows: np.ndarray, version: int) -> None:
        """Write-through update of live rows (not yet durable)."""
        self._view[self._local(node_ids)] = rows
        self.version = version
        self._broadcast_version()

    def _broadcast_version(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                worker.next_req += 1
                worker.jobs.put(("version", worker.next_req, self.version))

    # -- recovery --------------------------------------------------------

    def _bill_recovery_read(self, nbytes: float) -> None:
        """Charge a PM sequential read to the recovery sim-clock bill."""
        self.recovery_sim_seconds += self.domain.cost_model.access_time(
            self.domain.device,
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            float(nbytes),
        )

    def _retire_worker(self, worker: _ShardWorker) -> None:
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=2.0)
        for channel in (worker.jobs, worker.results):
            channel.close()
            channel.join_thread()

    def restart(self) -> int:
        """Replace dead/hung processes, restoring rows from the WAL.

        Process memory (and, as modelled, the segment contents) died
        with the shard, so the segment is rebuilt from the newest
        *verified* checkpoint — the shard comes back at that record's
        version, and the staleness it reopens with is returned
        (``lost_versions = version_before_crash - checkpoint_version``).
        The full WAL replay (a PM sequential read of the shard's rows)
        is billed to :attr:`recovery_sim_seconds` — the downtime the
        promotion path avoids.
        """
        for worker in self._workers:
            self._retire_worker(worker)
        record = self.last_verified_record()
        lost = self.version - int(record.meta["version"])
        self._view[:] = record.arrays["rows"]
        self._bill_recovery_read(record.arrays["rows"].nbytes)
        self.version = int(record.meta["version"])
        self.checkpoint_version = self.version
        self.generation += 1
        self.restarts += 1
        self._spawn_workers()
        return lost

    def has_fresh_replica(self) -> bool:
        """Whether a live replica could take over without WAL replay.

        Replicas share the primary's segment and receive every version
        broadcast, so a live replica is exactly as fresh as the owner's
        view — the promotion precondition.
        """
        return any(
            worker.process.is_alive() for worker in self._workers[1:]
        )

    def promote_replica(self) -> int:
        """Fail over to a live replica without touching the WAL.

        The first live replica becomes the primary; the dead (or stuck)
        old primary is retired and a fresh replacement replica is
        spawned, restoring the replica budget.  No rows are lost
        (``lost_versions == 0`` by construction: the replica serves the
        same shared segment at the same version) and no checkpoint is
        read — only a coordination penalty is billed to
        :attr:`recovery_sim_seconds`, which is what makes failover
        sub-checkpoint-interval.

        Returns the worker index that was promoted.

        Raises:
            ShardCrashError: no live replica to promote.
        """
        candidate = next(
            (
                idx
                for idx in range(1, len(self._workers))
                if self._workers[idx].process.is_alive()
            ),
            None,
        )
        if candidate is None:
            raise ShardCrashError(self.shard_id, "no live replica to promote")
        replica = self._workers[candidate]
        retired = [
            worker
            for idx, worker in enumerate(self._workers)
            if idx != candidate
        ]
        standbys = [w for w in retired[1:] if w.process.is_alive()]
        for worker in retired:
            if worker not in standbys:
                self._retire_worker(worker)
        self._workers = [replica, *standbys, self._spawn_worker()]
        self.recovery_sim_seconds += self.policy.hedge_sim_penalty_s
        self.generation += 1
        self.promotions += 1
        return candidate

    def catch_up(self, rows: np.ndarray, version: int) -> None:
        """Replay the authoritative rows and re-checkpoint.

        After this the shard is bit-identical to a fresh load of the
        manager's table at ``version``.
        """
        self._view[:] = rows
        self.version = version
        self._broadcast_version()
        self.checkpoint()

    # -- fault injection -------------------------------------------------

    def inject_crash(self) -> None:
        """Kill the primary deterministically (joined before return)."""
        worker = self._workers[0]
        if worker.process.is_alive():
            worker.jobs.put(("crash",))
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - slow exit
                worker.process.terminate()
                worker.process.join(timeout=5.0)

    def inject_hang(self, seconds: float) -> None:
        """Queue a sleep on the primary (next lookup hits the deadline)."""
        worker = self._workers[0]
        if worker.process.is_alive():
            worker.jobs.put(("hang", float(seconds)))

    def inject_mute(self) -> None:
        """Stop the primary's heartbeat while it keeps serving."""
        worker = self._workers[0]
        if worker.process.is_alive():
            worker.jobs.put(("mute",))

    def inject_checkpoint_fault(self, kind: str) -> bool:
        """Damage the newest WAL record (``checkpoint_corrupt``/``_torn``).

        Models the simulated PM device returning bad data: the payload
        is mutated while the commit-time CRC is left in place, so
        verification fails and recovery must walk back.  Returns whether
        a record was actually damaged.
        """
        mode = "corrupt" if kind == "checkpoint_corrupt" else "torn"
        return self.checkpoints.damage_last(mode) is not None

    # -- lookups ---------------------------------------------------------

    def lookup(
        self,
        node_ids: np.ndarray,
        deadline_s: float | None = None,
        replica: int = 0,
    ) -> tuple[np.ndarray, int]:
        """One live lookup against worker ``replica``.

        Raises:
            ShardCrashError: the worker is (or dies) unresponsive.
            ShardTimeoutError: no ack within ``deadline_s``.
        """
        deadline_s = (
            self.policy.lookup_deadline_s if deadline_s is None else deadline_s
        )
        if replica >= len(self._workers):
            raise ShardCrashError(self.shard_id, f"no worker {replica}")
        worker = self._workers[replica]
        if not worker.process.is_alive():
            raise ShardCrashError(
                self.shard_id, f"worker {replica} dead (exit {worker.process.exitcode})"
            )
        worker.next_req += 1
        req_id = worker.next_req
        worker.jobs.put(("lookup", req_id, np.asarray(node_ids, dtype=np.int64)))
        deadline_at = time.monotonic() + deadline_s
        while True:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise ShardTimeoutError(self.shard_id, deadline_s)
            try:
                message = worker.results.get(timeout=min(_POLL_S, remaining))
            except queue_module.Empty:
                if not worker.process.is_alive():
                    raise ShardCrashError(
                        self.shard_id,
                        f"worker {replica} died mid-call"
                        f" (exit {worker.process.exitcode})",
                    ) from None
                continue
            status, rid, payload, version = message
            if rid != req_id:
                # A stale ack from a call that already timed out.
                continue
            if status != "ok":
                raise ShardCrashError(self.shard_id, str(payload))
            return payload, int(version)


class EmbeddingShardManager:
    """Scatter-gather front of the sharded store.

    Owns the authoritative embedding table, the routing table, and one
    :class:`ShardHost` per range.  ``lookup`` is the hot path:
    fault-plan injection, per-shard deadlines, the hedging ladder, and
    staleness accounting all live here.

    Args:
        embeddings: the authoritative ``(n_nodes, dim)`` table.
        degrees: per-node degrees for entropy-aware partitioning
            (``None`` falls back to uniform ranges).
        policy: store configuration.
        faults: deterministic shard-fault plan injector.
        metrics: registry for ``shard.*`` counters (own one if omitted).
        stream: optional live telemetry stream; shard incidents are
            emitted as ``shard_event`` records.
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        degrees: np.ndarray | None = None,
        policy: ShardPolicy = ShardPolicy(),
        faults: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        stream=None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.table = np.ascontiguousarray(embeddings, dtype=np.float64)
        if self.table.ndim != 2:
            raise ValueError(
                f"embeddings must be 2-D, got shape {self.table.shape}"
            )
        self.policy = policy
        self.faults = faults
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stream = stream
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._dram = dram_spec()
        self._pm = pm_spec()
        n_nodes = len(self.table)
        self.degrees = (
            np.asarray(degrees, dtype=np.float64)[:n_nodes]
            if degrees is not None
            else None
        )
        if policy.partition == "hash":
            self.routing: ShardRoutingTable | HashRoutingTable = (
                HashRoutingTable(n_nodes=n_nodes, n_shards=policy.n_shards)
            )
        elif policy.partition == "entropy" and self.degrees is not None:
            self.routing = ShardRoutingTable(
                ranges=tuple(
                    entropy_aware_node_ranges(
                        self.degrees, policy.n_shards, beta=policy.beta
                    )
                )
            )
        else:
            self.routing = ShardRoutingTable(
                ranges=tuple(uniform_node_ranges(n_nodes, policy.n_shards))
            )
        self.version = 0
        self.lookup_seq = 0
        self.hosts: list[ShardHost] = []
        self.rows_served: list[int] = [0] * self.routing.n_shards
        self.on_failure: Callable[[int, Exception], None] | None = None
        self.refresher = None
        #: Bumped on every finished reshard (routing-table swap), so
        #: observers (the supervisor's heartbeat map) can invalidate
        #: shard-id-keyed state.
        self.reshard_epoch = 0
        self._migration: dict[str, Any] | None = None
        self._ctx = _mp_context()
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def _new_host(
        self,
        shard_id: int,
        row_start: int,
        row_end: int,
        node_ids: np.ndarray | None = None,
    ) -> ShardHost:
        rows = (
            self.table[node_ids]
            if node_ids is not None
            else self.table[row_start:row_end]
        )
        host = ShardHost(
            shard_id,
            rows,
            row_start,
            self.policy,
            ctx=self._ctx,
            node_ids=node_ids,
        )
        host.version = self.version
        host.on_quarantine = self._note_quarantine
        return host

    def _note_quarantine(self, shard_id: int, sequence: int, reason: str) -> None:
        self.metrics.counter(
            "shard.corrupt_checkpoints", shard=str(shard_id)
        ).inc()
        self._emit({"type": "shard_event", "event": "checkpoint_quarantined",
                    "shard": shard_id, "sequence": sequence,
                    "reason": reason})

    def start(self) -> "EmbeddingShardManager":
        """Spawn every shard and cut genesis checkpoints."""
        if self._started:
            return self
        try:
            if isinstance(self.routing, HashRoutingTable):
                for shard_id in range(self.routing.n_shards):
                    members = self.routing.members(shard_id)
                    host = self._new_host(shard_id, 0, 0, node_ids=members)
                    self.hosts.append(host)
                    host.start()
            else:
                for shard_id, (row_start, row_end) in enumerate(
                    self.routing.ranges
                ):
                    host = self._new_host(shard_id, row_start, row_end)
                    self.hosts.append(host)
                    host.start()
        except BaseException:
            self.close()
            raise
        if self.policy.refresh_enabled:
            from repro.shard.refresh import BackgroundCheckpointer

            self.refresher = BackgroundCheckpointer(self)
        self._started = True
        self._emit({"type": "shard_event", "event": "started",
                    "n_shards": self.routing.n_shards,
                    "partition": self.policy.partition,
                    "ranges": self.routing.range_summaries()})
        return self

    def close(self) -> None:
        """Stop every shard process and unlink segments (idempotent)."""
        first: BaseException | None = None
        pending = (
            list(self._migration["hosts"]) if self._migration is not None else []
        )
        self._migration = None
        for host in [*self.hosts, *pending]:
            try:
                host.close()
            except BaseException as exc:  # noqa: BLE001 - best effort
                if first is None:
                    first = exc
        self.hosts = []
        self._started = False
        if first is not None:
            raise first

    def __enter__(self) -> "EmbeddingShardManager":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- telemetry -------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        if self.stream is not None:
            self.stream.emit(record)

    # -- mutation --------------------------------------------------------

    def rows_for(self, host: ShardHost) -> np.ndarray:
        """The authoritative table slice a host owns, in host order."""
        if host.node_ids is not None:
            return self.table[host.node_ids]
        return self.table[host.row_start : host.row_end]

    def apply_update(self, node_ids: np.ndarray, rows: np.ndarray) -> int:
        """Update rows in the authoritative table and write through.

        Bumps the table version; the write is live in every shard
        segment but *not yet durable* — rows updated after a shard's
        last checkpoint are exactly what a crash loses.  During an
        online reshard the write is dual-routed: the migrating range's
        old host *and* its replacement hosts both apply it, so the
        atomic table swap loses nothing.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        self.table[node_ids] = rows
        self.version += 1
        for shard, (_, ids) in self.routing.split(node_ids).items():
            host = self.hosts[shard]
            host.write_rows(ids, self.table[ids], self.version)
        if self._migration is not None:
            for host in self._migration["hosts"]:
                mask = (
                    np.isin(node_ids, host.node_ids)
                    if host.node_ids is not None
                    else (node_ids >= host.row_start)
                    & (node_ids < host.row_end)
                )
                ids = node_ids[mask]
                if len(ids):
                    host.write_rows(ids, self.table[ids], self.version)
        for host in self.hosts:
            # Every shard advances to the table version, even untouched
            # ones — staleness is measured against the whole table, and
            # the workers' ack watermark must move with it or untouched
            # shards would read as stale.
            if host.version != self.version:
                host.version = self.version
                host._broadcast_version()
        if self._migration is not None:
            for host in self._migration["hosts"]:
                if host.version != self.version:
                    host.version = self.version
                    host._broadcast_version()
        return self.version

    def checkpoint_all(self) -> None:
        """Cut a durable checkpoint on every shard."""
        for host in self.hosts:
            host.checkpoint()

    def catch_up(self, shard_id: int) -> None:
        """Replay authoritative rows into one shard and re-checkpoint."""
        host = self.hosts[shard_id]
        host.catch_up(self.rows_for(host), self.version)
        self._emit({"type": "shard_event", "event": "caught_up",
                    "shard": shard_id, "version": self.version})

    # -- elastic reshard -------------------------------------------------

    @property
    def migrating(self) -> bool:
        """Whether an online split/merge is in flight."""
        return self._migration is not None

    def load_imbalance(self) -> float:
        """Max served-rows share over mean share (1.0 = perfectly even)."""
        served = np.asarray(self.rows_served, dtype=np.float64)
        if served.sum() == 0:
            return 1.0
        mean = served.mean()
        return float(served.max() / mean) if mean > 0 else 1.0

    def _require_range_routing(self, op: str) -> ShardRoutingTable:
        if not isinstance(self.routing, ShardRoutingTable):
            raise ValueError(
                f"online {op} needs contiguous-range routing; the"
                " consistent-hash table rebalances by construction"
            )
        return self.routing

    def _split_point(self, row_start: int, row_end: int) -> int:
        """Degree-mass midpoint of a range (row midpoint without degrees)."""
        if self.degrees is not None and row_end - row_start > 1:
            mass = np.cumsum(self.degrees[row_start:row_end] + 1.0)
            at = row_start + int(np.searchsorted(mass, mass[-1] / 2.0)) + 1
            return min(max(at, row_start + 1), row_end - 1)
        return (row_start + row_end) // 2

    def begin_split(self, shard_id: int, at: int | None = None) -> None:
        """Start migrating one hot shard's range onto two new hosts.

        The protocol is dual-route: until :meth:`finish_migration`
        swaps the routing table, reads keep hitting the old host while
        writes land on *both* the old host and the warming replacements
        — so the swap is atomic and lossless.  ``at`` overrides the
        degree-mass split point.
        """
        routing = self._require_range_routing("split")
        if self._migration is not None:
            raise RuntimeError("a reshard migration is already in flight")
        row_start, row_end = routing.ranges[shard_id]
        if row_end - row_start < 2:
            raise ValueError(
                f"shard {shard_id} range [{row_start}, {row_end}) is too"
                " small to split"
            )
        at = self._split_point(row_start, row_end) if at is None else int(at)
        if not row_start < at < row_end:
            raise ValueError(
                f"split point {at} outside ({row_start}, {row_end})"
            )
        hosts = []
        try:
            for lo, hi in ((row_start, at), (at, row_end)):
                host = self._new_host(-1, lo, hi)
                hosts.append(host)
                host.start()
        except BaseException:
            for host in hosts:
                host.close()
            raise
        self._migration = {
            "kind": "split",
            "old": [shard_id],
            "hosts": hosts,
            "since_seq": self.lookup_seq,
        }
        self._emit({"type": "shard_event", "event": "reshard_begun",
                    "kind": "split", "shard": shard_id,
                    "ranges": [[row_start, at], [at, row_end]],
                    "seq": self.lookup_seq})

    def begin_merge(self, shard_id: int) -> None:
        """Start merging two adjacent cold shards onto one new host.

        Merges ``shard_id`` with ``shard_id + 1`` under the same
        dual-route discipline as :meth:`begin_split`.
        """
        routing = self._require_range_routing("merge")
        if self._migration is not None:
            raise RuntimeError("a reshard migration is already in flight")
        if shard_id + 1 >= routing.n_shards:
            raise ValueError(
                f"shard {shard_id} has no right neighbour to merge with"
            )
        row_start = routing.ranges[shard_id][0]
        row_end = routing.ranges[shard_id + 1][1]
        host = self._new_host(-1, row_start, row_end)
        try:
            host.start()
        except BaseException:
            host.close()
            raise
        self._migration = {
            "kind": "merge",
            "old": [shard_id, shard_id + 1],
            "hosts": [host],
            "since_seq": self.lookup_seq,
        }
        self._emit({"type": "shard_event", "event": "reshard_begun",
                    "kind": "merge", "shard": shard_id,
                    "ranges": [[row_start, row_end]],
                    "seq": self.lookup_seq})

    def migration_ready(self) -> bool:
        """Whether every warming host is live and has heartbeaten."""
        if self._migration is None:
            return False
        return all(
            host.alive() and host.heartbeat_value() > 0
            for host in self._migration["hosts"]
        )

    def maybe_advance_migration(self) -> bool:
        """Finish the in-flight migration once the new hosts are warm."""
        if self._migration is None or not self.migration_ready():
            return False
        self.finish_migration()
        return True

    def finish_migration(self) -> None:
        """Atomically swap the routing table and drain the old hosts.

        The new hosts carried every dual-routed write, so the swap
        changes *where* rows are served from, never their values; the
        drained hosts close after the swap, and served-row accounting is
        re-based onto the new shard ids.
        """
        if self._migration is None:
            raise RuntimeError("no reshard migration in flight")
        migration = self._migration
        routing = self._require_range_routing("reshard")
        old_ids = migration["old"]
        new_hosts = migration["hosts"]
        first_old = old_ids[0]
        ranges = list(routing.ranges)
        ranges[first_old : old_ids[-1] + 1] = [
            (host.row_start, host.row_end) for host in new_hosts
        ]
        drained = self.hosts[first_old : old_ids[-1] + 1]
        hosts = list(self.hosts)
        hosts[first_old : old_ids[-1] + 1] = new_hosts
        served = list(self.rows_served)
        moved = sum(served[i] for i in old_ids)
        served[first_old : old_ids[-1] + 1] = [
            moved // len(new_hosts)
        ] * len(new_hosts)
        # The swap itself: routing, hosts, and accounting move together.
        self.routing = ShardRoutingTable(ranges=tuple(ranges))
        self.hosts = hosts
        self.rows_served = served
        for shard_id, host in enumerate(self.hosts):
            host.shard_id = shard_id
        self._migration = None
        self.reshard_epoch += 1
        self.metrics.counter("shard.resharded_ranges").inc(len(new_hosts))
        self._emit({"type": "shard_event", "event": "resharded",
                    "kind": migration["kind"],
                    "n_shards": self.routing.n_shards,
                    "ranges": self.routing.range_summaries(),
                    "seq": self.lookup_seq})
        for host in drained:
            host.close()

    # -- fault application ----------------------------------------------

    def _apply_shard_faults(self, seq: int) -> None:
        if self.faults is None:
            return
        for shard_id, host in enumerate(self.hosts):
            while True:
                # Drain every event due at this sequence number, so
                # combined faults (e.g. a hang plus a heartbeat loss on
                # the same shard) land in one sweep.
                event: FaultEvent | None = self.faults.take_shard_fault(
                    f"shard.{shard_id}", seq
                )
                if event is None:
                    break
                if event.kind == "shard_crash":
                    host.inject_crash()
                elif event.kind == "shard_hang":
                    host.inject_hang(event.seconds)
                elif event.kind == "heartbeat_loss":
                    host.inject_mute()
                else:  # checkpoint_corrupt / checkpoint_torn
                    host.inject_checkpoint_fault(event.kind)
                self._emit({"type": "shard_event", "event": "fault_injected",
                            "kind": event.kind, "shard": shard_id,
                            "seq": seq})

    # -- the hot path ----------------------------------------------------

    def lookup(self, node_ids: np.ndarray) -> ShardLookupResult:
        """Scatter-gather one batch of rows across the shards.

        Applies any due shard faults first (so the fault's lookup
        sequence is the lookup that observes it), then walks the
        hedging ladder per shard.  With hedging disabled, the first
        shard failure propagates as-is.

        Raises:
            PartialResultError: hedging enabled but some shard had
                neither a live worker nor a durable checkpoint.
            ShardError: hedging disabled and a shard failed.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        self.lookup_seq += 1
        seq = self.lookup_seq
        self._apply_shard_faults(seq)
        refresh_sim_seconds = 0.0
        if self.refresher is not None:
            # Background maintenance rides the request loop: due shards
            # re-checkpoint (staggered, billed to the sim clock) before
            # this gather observes their staleness.
            refresh_before = self.refresher.sim_refresh_seconds
            self.refresher.tick(seq)
            refresh_sim_seconds = (
                self.refresher.sim_refresh_seconds - refresh_before
            )
        dim = self.table.shape[1]
        out = np.empty((len(node_ids), dim), dtype=np.float64)
        statuses: dict[int, str] = {}
        stale_rows = 0
        stale_ranges: list[tuple[int, int, int]] = []
        missing_ranges: list[tuple[int, int, int]] = []
        shard_details: list[dict] = []
        sim_seconds = 0.0
        self.metrics.counter("shard.lookups").inc()
        for shard_id, (positions, ids) in self.routing.split(node_ids).items():
            host = self.hosts[shard_id]
            self.rows_served[shard_id] += int(ids.size)
            nbytes = float(ids.size * dim * 8)
            rows, status, version = self._gather_one(host, ids)
            if rows is None:
                statuses[shard_id] = STATUS_MISSING
                missing_ranges.append(
                    (shard_id, int(ids.min()), int(ids.max()) + 1)
                )
                continue
            out[positions] = rows
            statuses[shard_id] = status
            if status == STATUS_STALE or version < self.version:
                stale = int(ids.size)
                stale_rows += stale
                stale_ranges.append(
                    (shard_id, int(ids.min()), int(ids.max()) + 1)
                )
                self.metrics.counter("shard.stale_rows").inc(stale)
                shard_cost = self.cost_model.access_time(
                    self._pm,
                    Operation.READ,
                    AccessPattern.RANDOM,
                    Locality.LOCAL,
                    nbytes,
                )
                penalty = (
                    self.policy.hedge_sim_penalty_s
                    if status == STATUS_STALE
                    else 0.0
                )
                shard_cost += penalty
                shard_details.append(
                    {
                        "shard": shard_id,
                        "status": status,
                        "rows": int(ids.size),
                        "sim_seconds": shard_cost,
                        "hedge_penalty_s": penalty,
                        "stale": True,
                    }
                )
            else:
                shard_cost = self.cost_model.access_time(
                    self._dram,
                    Operation.READ,
                    AccessPattern.RANDOM,
                    Locality.LOCAL,
                    nbytes,
                )
                shard_details.append(
                    {
                        "shard": shard_id,
                        "status": status,
                        "rows": int(ids.size),
                        "sim_seconds": shard_cost,
                        "hedge_penalty_s": 0.0,
                        "stale": False,
                    }
                )
            sim_seconds += shard_cost
        if missing_ranges:
            self._emit({"type": "shard_event", "event": "partial",
                        "seq": seq,
                        "missing": [list(r) for r in missing_ranges]})
            raise PartialResultError(
                tuple(missing_ranges), tuple(stale_ranges)
            )
        return ShardLookupResult(
            rows=out,
            stale_rows=stale_rows,
            stale_ranges=tuple(stale_ranges),
            statuses=statuses,
            sim_seconds=sim_seconds,
            seq=seq,
            shard_details=tuple(shard_details),
            refresh_sim_seconds=refresh_sim_seconds,
        )

    def _gather_one(
        self, host: ShardHost, ids: np.ndarray
    ) -> tuple[np.ndarray | None, str, int]:
        """The hedging ladder for one shard's slice of a lookup."""
        if host.abandoned:
            # Short-circuit: an abandoned shard is a settled fact, not a
            # fresh failure — go straight to the stale-checkpoint rung
            # without failure counters, supervisor callbacks, or
            # per-request hedge events (the one-time ``shard_abandoned``
            # record already told the live bus).
            if not self.policy.hedge_enabled:
                raise ShardCrashError(host.shard_id, "shard abandoned")
            self.metrics.counter(
                "shard.abandoned_reads", shard=str(host.shard_id)
            ).inc()
            try:
                rows, _ = host.recover_rows(ids)
                return rows, STATUS_STALE, host.checkpoint_version or 0
            except ShardCrashError:
                return None, STATUS_MISSING, -1
        primary_error: Exception | None = None
        try:
            rows, version = host.lookup(ids)
            return rows, STATUS_FRESH, version
        except (ShardCrashError, ShardTimeoutError) as exc:
            primary_error = exc
            self.metrics.counter(
                "shard.failures",
                shard=str(host.shard_id),
                kind=type(exc).__name__,
            ).inc()
            if self.on_failure is not None:
                self.on_failure(host.shard_id, exc)
            if not self.policy.hedge_enabled:
                raise
        # Hedge 1: replicas share the segment, so they are fresh.
        for replica in range(1, 1 + self.policy.n_replicas):
            try:
                rows, version = host.lookup(ids, replica=replica)
                self.metrics.counter(
                    "shard.hedged", target="replica"
                ).inc()
                return rows, STATUS_REPLICA, version
            except (ShardCrashError, ShardTimeoutError):
                continue
        # Hedge 2: the stale checkpoint tier.
        try:
            rows, _ = host.recover_rows(ids)
            self.metrics.counter("shard.hedged", target="checkpoint").inc()
            self._emit({"type": "shard_event", "event": "hedged",
                        "shard": host.shard_id, "target": "checkpoint"})
            return rows, STATUS_STALE, host.checkpoint_version or 0
        except ShardCrashError:
            # No live worker and no verified checkpoint: a genuine miss.
            del primary_error
            return None, STATUS_MISSING, -1
