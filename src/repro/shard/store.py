"""Multi-process sharded embedding store with hedged scatter-gather.

The embedding table is partitioned into contiguous node ranges (EaTA
entropy-aware by default, :mod:`repro.shard.ranges`), each owned by a
:class:`ShardHost`: a real OS process serving lookups from a
shared-memory segment, heartbeating through a shared counter, and
journaling its rows into a WAL-style
:class:`~repro.memsim.persistence.StageCheckpointStore` on a simulated
PM persistence domain.

:class:`EmbeddingShardManager` keeps the authoritative table, routes
lookups through a :class:`~repro.shard.ranges.ShardRoutingTable`, and
scatter-gathers with a hedging ladder per shard::

    primary process -> replica process -> stale checkpoint tier -> miss

Every rung is typed: a dead primary raises
:class:`~repro.shard.errors.ShardCrashError` internally, the checkpoint
tier marks its rows stale (bounded staleness = authoritative version
minus checkpoint version), and only when every rung fails does
:class:`~repro.shard.errors.PartialResultError` escape to the caller —
carrying exactly which node ranges went unserved so the serving ladder
can degrade per shard rather than per table.

Deterministic chaos: :meth:`EmbeddingShardManager.lookup` numbers every
scatter-gather call and offers that sequence number to a
:class:`~repro.faults.FaultInjector`, so a seeded
:meth:`~repro.faults.FaultPlan.random_shard` plan kills, hangs, or mutes
exactly the same shard at exactly the same lookup on every run.

Simulated vs wall time: process death, heartbeats, and deadlines are
*wall-clock* mechanics (they exercise real crash recovery); the cost a
lookup reports (``sim_seconds``) is charged on the simulated cost model
— DRAM random reads for fresh rows, PM random reads plus a hedge
penalty for checkpoint-tier rows — so serve-level SLO math stays in the
paper's device terms.
"""

from __future__ import annotations

import os
import queue as queue_module
import secrets
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.faults import FaultEvent, FaultInjector
from repro.formats.csdb import (
    SharedArraySpec,
    attach_shared_array,
    create_shared_array,
    unlink_segment,
)
from repro.memsim.costmodel import CostModel
from repro.memsim.devices import (
    AccessPattern,
    Locality,
    Operation,
    dram_spec,
    pm_spec,
)
from repro.memsim.persistence import PersistenceDomain, StageCheckpointStore
from repro.obs.metrics import MetricsRegistry
from repro.parallel.shared import _mp_context
from repro.shard.errors import (
    PartialResultError,
    ShardCrashError,
    ShardTimeoutError,
)
from repro.shard.process import (
    DEFAULT_HEARTBEAT_INTERVAL_S,
    shard_main,
)
from repro.shard.ranges import (
    ShardRoutingTable,
    entropy_aware_node_ranges,
    uniform_node_ranges,
)

#: How rows were sourced for one shard of a scatter-gather.
STATUS_FRESH = "fresh"
STATUS_REPLICA = "replica"
STATUS_STALE = "stale"
STATUS_MISSING = "missing"

#: Poll granularity while waiting on a shard ack (fast crash detection).
_POLL_S = 0.02


@dataclass(frozen=True)
class ShardPolicy:
    """Configuration of the sharded store.

    Attributes:
        n_shards: shard (process) count.
        n_replicas: extra lookup processes per shard sharing its
            segment; the first hedge target.
        partition: ``"entropy"`` (EaTA cost-proxy quantiles) or
            ``"uniform"`` (equal rows).
        beta: EaTA bandwidth-degradation ratio for entropy partitioning.
        lookup_deadline_s: wall-clock deadline of one per-shard call.
            Must sit below injected hang durations for deterministic
            hedging, and far above a healthy roundtrip.
        hedge_enabled: when False, shard failures propagate instead of
            hedging (the unsupervised benchmark arm).
        hedge_sim_penalty_s: simulated seconds charged per hedged shard
            (the abandoned primary read plus coordination).
        heartbeat_interval_s: idle heartbeat period of shard processes.
    """

    n_shards: int = 4
    n_replicas: int = 0
    partition: str = "entropy"
    beta: float = 0.41
    lookup_deadline_s: float = 0.25
    hedge_enabled: bool = True
    hedge_sim_penalty_s: float = 5e-4
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.n_replicas < 0:
            raise ValueError(
                f"n_replicas must be >= 0, got {self.n_replicas}"
            )
        if self.partition not in ("entropy", "uniform"):
            raise ValueError(
                f"partition must be 'entropy' or 'uniform',"
                f" got {self.partition!r}"
            )
        if self.lookup_deadline_s <= 0:
            raise ValueError(
                f"lookup_deadline_s must be > 0, got {self.lookup_deadline_s}"
            )


@dataclass(frozen=True)
class ShardLookupResult:
    """Outcome of one scatter-gather lookup.

    Attributes:
        rows: gathered embedding rows, request order.
        stale_rows: rows served from a stale source (checkpoint tier or
            a restarted shard that has not caught up).
        stale_ranges: ``(shard_id, row_start, row_end)`` node ranges the
            stale rows came from.
        statuses: per-shard source, ``{shard_id: STATUS_*}``.
        sim_seconds: simulated cost of the gather.
        seq: this lookup's 1-based sequence number (the coordinate
            shard fault plans fire on).
    """

    rows: np.ndarray
    stale_rows: int
    stale_ranges: tuple[tuple[int, int, int], ...]
    statuses: dict[int, str]
    sim_seconds: float
    seq: int


class _ShardWorker:
    """Owner-side handle of one shard process (primary or replica)."""

    __slots__ = ("process", "jobs", "results", "heartbeat", "next_req")

    def __init__(self, ctx, spec, shard_id, row_start, version, interval_s):
        self.jobs = ctx.Queue()
        self.results = ctx.Queue()
        self.heartbeat = ctx.Value("Q", 0, lock=True)
        self.next_req = 0
        self.process = ctx.Process(
            target=shard_main,
            args=(
                shard_id,
                spec,
                row_start,
                version,
                self.jobs,
                self.results,
                self.heartbeat,
                interval_s,
            ),
            daemon=True,
        )
        self.process.start()

    def stop(self, timeout: float = 2.0) -> None:
        if self.process.is_alive():
            try:
                self.jobs.put(None)
            except ValueError:  # pragma: no cover - queue already closed
                pass
            self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=timeout)
        for channel in (self.jobs, self.results):
            channel.close()
            channel.join_thread()


class ShardHost:
    """Owner side of one shard: segment, processes, WAL checkpoints.

    The host keeps the shard's rows in a named shared-memory segment
    served by a primary process (plus optional replicas).  Durability is
    modelled honestly: a restart never trusts the segment — it rebuilds
    the rows from the last WAL checkpoint, so anything written after
    that checkpoint comes back *stale* until :meth:`catch_up` replays it
    from the manager's authoritative copy.
    """

    def __init__(
        self,
        shard_id: int,
        rows: np.ndarray,
        row_start: int,
        policy: ShardPolicy,
        ctx=None,
        domain: PersistenceDomain | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.row_start = row_start
        self.row_end = row_start + len(rows)
        self.policy = policy
        self.version = 0
        self.checkpoint_version: int | None = None
        self.generation = 0
        self.restarts = 0
        self.abandoned = False
        self._ctx = ctx if ctx is not None else _mp_context()
        token = secrets.token_hex(4)
        self._name = f"shard-{os.getpid()}-{token}-{shard_id}"
        self.spec = create_shared_array(np.asarray(rows, dtype=np.float64), self._name)
        self._view, self._segment = attach_shared_array(self.spec)
        domain = domain if domain is not None else PersistenceDomain(device=pm_spec())
        self.domain = domain
        self.checkpoints = StageCheckpointStore(domain)
        self._workers: list[_ShardWorker] = []
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def start(self, checkpoint: bool = True) -> None:
        """Spawn the primary (+replicas) and cut the genesis checkpoint."""
        if self._workers:
            raise RuntimeError(f"shard {self.shard_id} already started")
        if checkpoint:
            self.checkpoint()
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        self._workers = [
            _ShardWorker(
                self._ctx,
                self.spec,
                self.shard_id,
                self.row_start,
                self.version,
                self.policy.heartbeat_interval_s,
            )
            for _ in range(1 + self.policy.n_replicas)
        ]

    def close(self) -> None:
        """Stop every process and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        self._workers = []
        del self._view
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - exported view
            pass
        unlink_segment(self._name)

    def __enter__(self) -> "ShardHost":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- liveness --------------------------------------------------------

    @property
    def workers(self) -> list[_ShardWorker]:
        return self._workers

    def alive(self, replica: int = 0) -> bool:
        """Whether worker ``replica`` (0 = primary) is running."""
        if replica >= len(self._workers):
            return False
        return self._workers[replica].process.is_alive()

    def heartbeat_value(self, replica: int = 0) -> int:
        return int(self._workers[replica].heartbeat.value)

    # -- durability ------------------------------------------------------

    def checkpoint(self, crash: bool = False) -> int:
        """Durably journal the shard's current rows.

        Follows the WAL discipline of
        :class:`~repro.memsim.persistence.StageCheckpointStore`: with
        ``crash=True`` the record is lost
        (:class:`~repro.memsim.persistence.CrashInjected` propagates)
        but every earlier checkpoint stays durable.
        """
        sequence = self.checkpoints.append(
            f"shard-{self.shard_id}",
            {"rows": np.array(self._view, copy=True)},
            {
                "version": self.version,
                "row_start": self.row_start,
                "row_end": self.row_end,
            },
            crash=crash,
        )
        self.checkpoint_version = self.version
        return sequence

    def recover_rows(self, node_ids: np.ndarray) -> tuple[np.ndarray, int]:
        """Stale-tier read straight from the last durable checkpoint.

        Works with the shard's processes dead — this is the hedge of
        last resort.  Returns the rows and the checkpoint's version.
        """
        record = self.checkpoints.last()
        if record is None:
            raise ShardCrashError(self.shard_id, "no durable checkpoint")
        ids = np.asarray(node_ids, dtype=np.int64) - self.row_start
        return (
            np.array(record.arrays["rows"][ids], copy=True),
            int(record.meta["version"]),
        )

    # -- mutation --------------------------------------------------------

    def write_rows(self, node_ids: np.ndarray, rows: np.ndarray, version: int) -> None:
        """Write-through update of live rows (not yet durable)."""
        ids = np.asarray(node_ids, dtype=np.int64) - self.row_start
        self._view[ids] = rows
        self.version = version
        self._broadcast_version()

    def _broadcast_version(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                worker.next_req += 1
                worker.jobs.put(("version", worker.next_req, self.version))

    # -- recovery --------------------------------------------------------

    def restart(self) -> int:
        """Replace dead/hung processes, restoring rows from the WAL.

        Process memory (and, as modelled, the segment contents) died
        with the shard, so the segment is rebuilt from the last durable
        checkpoint — the shard comes back at ``checkpoint_version``,
        and the staleness it reopens with is returned
        (``lost_versions = version_before_crash - checkpoint_version``).
        """
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            for channel in (worker.jobs, worker.results):
                channel.close()
                channel.join_thread()
        record = self.checkpoints.last()
        if record is None:
            raise ShardCrashError(self.shard_id, "no checkpoint to restart from")
        lost = self.version - int(record.meta["version"])
        self._view[:] = record.arrays["rows"]
        self.version = int(record.meta["version"])
        self.generation += 1
        self.restarts += 1
        self._spawn_workers()
        return lost

    def catch_up(self, rows: np.ndarray, version: int) -> None:
        """Replay the authoritative rows and re-checkpoint.

        After this the shard is bit-identical to a fresh load of the
        manager's table at ``version``.
        """
        self._view[:] = rows
        self.version = version
        self._broadcast_version()
        self.checkpoint()

    # -- fault injection -------------------------------------------------

    def inject_crash(self) -> None:
        """Kill the primary deterministically (joined before return)."""
        worker = self._workers[0]
        if worker.process.is_alive():
            worker.jobs.put(("crash",))
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - slow exit
                worker.process.terminate()
                worker.process.join(timeout=5.0)

    def inject_hang(self, seconds: float) -> None:
        """Queue a sleep on the primary (next lookup hits the deadline)."""
        worker = self._workers[0]
        if worker.process.is_alive():
            worker.jobs.put(("hang", float(seconds)))

    def inject_mute(self) -> None:
        """Stop the primary's heartbeat while it keeps serving."""
        worker = self._workers[0]
        if worker.process.is_alive():
            worker.jobs.put(("mute",))

    # -- lookups ---------------------------------------------------------

    def lookup(
        self,
        node_ids: np.ndarray,
        deadline_s: float | None = None,
        replica: int = 0,
    ) -> tuple[np.ndarray, int]:
        """One live lookup against worker ``replica``.

        Raises:
            ShardCrashError: the worker is (or dies) unresponsive.
            ShardTimeoutError: no ack within ``deadline_s``.
        """
        deadline_s = (
            self.policy.lookup_deadline_s if deadline_s is None else deadline_s
        )
        if replica >= len(self._workers):
            raise ShardCrashError(self.shard_id, f"no worker {replica}")
        worker = self._workers[replica]
        if not worker.process.is_alive():
            raise ShardCrashError(
                self.shard_id, f"worker {replica} dead (exit {worker.process.exitcode})"
            )
        worker.next_req += 1
        req_id = worker.next_req
        worker.jobs.put(("lookup", req_id, np.asarray(node_ids, dtype=np.int64)))
        deadline_at = time.monotonic() + deadline_s
        while True:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                raise ShardTimeoutError(self.shard_id, deadline_s)
            try:
                message = worker.results.get(timeout=min(_POLL_S, remaining))
            except queue_module.Empty:
                if not worker.process.is_alive():
                    raise ShardCrashError(
                        self.shard_id,
                        f"worker {replica} died mid-call"
                        f" (exit {worker.process.exitcode})",
                    ) from None
                continue
            status, rid, payload, version = message
            if rid != req_id:
                # A stale ack from a call that already timed out.
                continue
            if status != "ok":
                raise ShardCrashError(self.shard_id, str(payload))
            return payload, int(version)


class EmbeddingShardManager:
    """Scatter-gather front of the sharded store.

    Owns the authoritative embedding table, the routing table, and one
    :class:`ShardHost` per range.  ``lookup`` is the hot path:
    fault-plan injection, per-shard deadlines, the hedging ladder, and
    staleness accounting all live here.

    Args:
        embeddings: the authoritative ``(n_nodes, dim)`` table.
        degrees: per-node degrees for entropy-aware partitioning
            (``None`` falls back to uniform ranges).
        policy: store configuration.
        faults: deterministic shard-fault plan injector.
        metrics: registry for ``shard.*`` counters (own one if omitted).
        stream: optional live telemetry stream; shard incidents are
            emitted as ``shard_event`` records.
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        degrees: np.ndarray | None = None,
        policy: ShardPolicy = ShardPolicy(),
        faults: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        stream=None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.table = np.ascontiguousarray(embeddings, dtype=np.float64)
        if self.table.ndim != 2:
            raise ValueError(
                f"embeddings must be 2-D, got shape {self.table.shape}"
            )
        self.policy = policy
        self.faults = faults
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stream = stream
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self._dram = dram_spec()
        self._pm = pm_spec()
        n_nodes = len(self.table)
        if policy.partition == "entropy" and degrees is not None:
            ranges = entropy_aware_node_ranges(
                np.asarray(degrees, dtype=np.float64)[:n_nodes],
                policy.n_shards,
                beta=policy.beta,
            )
        else:
            ranges = uniform_node_ranges(n_nodes, policy.n_shards)
        self.routing = ShardRoutingTable(ranges=tuple(ranges))
        self.version = 0
        self.lookup_seq = 0
        self.hosts: list[ShardHost] = []
        self.on_failure: Callable[[int, Exception], None] | None = None
        self._ctx = _mp_context()
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "EmbeddingShardManager":
        """Spawn every shard and cut genesis checkpoints."""
        if self._started:
            return self
        try:
            for shard_id, (row_start, row_end) in enumerate(self.routing.ranges):
                host = ShardHost(
                    shard_id,
                    self.table[row_start:row_end],
                    row_start,
                    self.policy,
                    ctx=self._ctx,
                )
                self.hosts.append(host)
                host.start()
        except BaseException:
            self.close()
            raise
        self._started = True
        self._emit({"type": "shard_event", "event": "started",
                    "n_shards": self.routing.n_shards,
                    "ranges": [list(r) for r in self.routing.ranges]})
        return self

    def close(self) -> None:
        """Stop every shard process and unlink segments (idempotent)."""
        first: BaseException | None = None
        for host in self.hosts:
            try:
                host.close()
            except BaseException as exc:  # noqa: BLE001 - best effort
                if first is None:
                    first = exc
        self.hosts = []
        self._started = False
        if first is not None:
            raise first

    def __enter__(self) -> "EmbeddingShardManager":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- telemetry -------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        if self.stream is not None:
            self.stream.emit(record)

    # -- mutation --------------------------------------------------------

    def apply_update(self, node_ids: np.ndarray, rows: np.ndarray) -> int:
        """Update rows in the authoritative table and write through.

        Bumps the table version; the write is live in every shard
        segment but *not yet durable* — rows updated after a shard's
        last checkpoint are exactly what a crash loses.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        self.table[node_ids] = rows
        self.version += 1
        for shard, (_, ids) in self.routing.split(node_ids).items():
            host = self.hosts[shard]
            host.write_rows(ids, self.table[ids], self.version)
        for host in self.hosts:
            # Every shard advances to the table version, even untouched
            # ones — staleness is measured against the whole table.
            if host.version != self.version:
                host.version = self.version
        return self.version

    def checkpoint_all(self) -> None:
        """Cut a durable checkpoint on every shard."""
        for host in self.hosts:
            host.checkpoint()

    def catch_up(self, shard_id: int) -> None:
        """Replay authoritative rows into one shard and re-checkpoint."""
        host = self.hosts[shard_id]
        host.catch_up(
            self.table[host.row_start : host.row_end], self.version
        )
        self._emit({"type": "shard_event", "event": "caught_up",
                    "shard": shard_id, "version": self.version})

    # -- fault application ----------------------------------------------

    def _apply_shard_faults(self, seq: int) -> None:
        if self.faults is None:
            return
        for shard_id, host in enumerate(self.hosts):
            event: FaultEvent | None = self.faults.take_shard_fault(
                f"shard.{shard_id}", seq
            )
            if event is None:
                continue
            if event.kind == "shard_crash":
                host.inject_crash()
            elif event.kind == "shard_hang":
                host.inject_hang(event.seconds)
            else:  # heartbeat_loss
                host.inject_mute()
            self._emit({"type": "shard_event", "event": "fault_injected",
                        "kind": event.kind, "shard": shard_id, "seq": seq})

    # -- the hot path ----------------------------------------------------

    def lookup(self, node_ids: np.ndarray) -> ShardLookupResult:
        """Scatter-gather one batch of rows across the shards.

        Applies any due shard faults first (so the fault's lookup
        sequence is the lookup that observes it), then walks the
        hedging ladder per shard.  With hedging disabled, the first
        shard failure propagates as-is.

        Raises:
            PartialResultError: hedging enabled but some shard had
                neither a live worker nor a durable checkpoint.
            ShardError: hedging disabled and a shard failed.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        self.lookup_seq += 1
        seq = self.lookup_seq
        self._apply_shard_faults(seq)
        dim = self.table.shape[1]
        out = np.empty((len(node_ids), dim), dtype=np.float64)
        statuses: dict[int, str] = {}
        stale_rows = 0
        stale_ranges: list[tuple[int, int, int]] = []
        missing_ranges: list[tuple[int, int, int]] = []
        sim_seconds = 0.0
        self.metrics.counter("shard.lookups").inc()
        for shard_id, (positions, ids) in self.routing.split(node_ids).items():
            host = self.hosts[shard_id]
            nbytes = float(ids.size * dim * 8)
            rows, status, version = self._gather_one(host, ids)
            if rows is None:
                statuses[shard_id] = STATUS_MISSING
                missing_ranges.append(
                    (shard_id, int(ids.min()), int(ids.max()) + 1)
                )
                continue
            out[positions] = rows
            statuses[shard_id] = status
            if status == STATUS_STALE or version < self.version:
                stale = int(ids.size)
                stale_rows += stale
                stale_ranges.append(
                    (shard_id, int(ids.min()), int(ids.max()) + 1)
                )
                self.metrics.counter("shard.stale_rows").inc(stale)
                sim_seconds += self.cost_model.access_time(
                    self._pm,
                    Operation.READ,
                    AccessPattern.RANDOM,
                    Locality.LOCAL,
                    nbytes,
                )
                if status == STATUS_STALE:
                    sim_seconds += self.policy.hedge_sim_penalty_s
            else:
                sim_seconds += self.cost_model.access_time(
                    self._dram,
                    Operation.READ,
                    AccessPattern.RANDOM,
                    Locality.LOCAL,
                    nbytes,
                )
        if missing_ranges:
            self._emit({"type": "shard_event", "event": "partial",
                        "seq": seq,
                        "missing": [list(r) for r in missing_ranges]})
            raise PartialResultError(
                tuple(missing_ranges), tuple(stale_ranges)
            )
        return ShardLookupResult(
            rows=out,
            stale_rows=stale_rows,
            stale_ranges=tuple(stale_ranges),
            statuses=statuses,
            sim_seconds=sim_seconds,
            seq=seq,
        )

    def _gather_one(
        self, host: ShardHost, ids: np.ndarray
    ) -> tuple[np.ndarray | None, str, int]:
        """The hedging ladder for one shard's slice of a lookup."""
        primary_error: Exception | None = None
        if not host.abandoned:
            try:
                rows, version = host.lookup(ids)
                return rows, STATUS_FRESH, version
            except (ShardCrashError, ShardTimeoutError) as exc:
                primary_error = exc
                self.metrics.counter(
                    "shard.failures",
                    shard=str(host.shard_id),
                    kind=type(exc).__name__,
                ).inc()
                if self.on_failure is not None:
                    self.on_failure(host.shard_id, exc)
                if not self.policy.hedge_enabled:
                    raise
            # Hedge 1: replicas share the segment, so they are fresh.
            for replica in range(1, 1 + self.policy.n_replicas):
                try:
                    rows, version = host.lookup(ids, replica=replica)
                    self.metrics.counter(
                        "shard.hedged", target="replica"
                    ).inc()
                    return rows, STATUS_REPLICA, version
                except (ShardCrashError, ShardTimeoutError):
                    continue
        elif not self.policy.hedge_enabled:
            raise ShardCrashError(host.shard_id, "shard abandoned")
        # Hedge 2: the stale checkpoint tier.
        try:
            rows, _ = host.recover_rows(ids)
            self.metrics.counter("shard.hedged", target="checkpoint").inc()
            self._emit({"type": "shard_event", "event": "hedged",
                        "shard": host.shard_id, "target": "checkpoint"})
            return rows, STATUS_STALE, host.checkpoint_version or 0
        except ShardCrashError:
            # No live worker and no durable checkpoint: a genuine miss.
            del primary_error
            return None, STATUS_MISSING, -1
