"""The shard supervision tree: health checks, restarts, backoff.

:class:`ShardSupervisor` watches every :class:`~repro.shard.store.ShardHost`
two ways:

- **Reactively** — the manager's scatter-gather path reports each typed
  shard failure (:meth:`note_failure`), and the supervisor restarts the
  shard immediately, so a crash detected *by* a lookup is repaired
  before the next one.
- **Proactively** — :meth:`check` sweeps liveness: a dead primary is a
  crash; an alive primary whose heartbeat counter has not advanced for
  ``heartbeat_timeout_s`` wall seconds is hung (or muted — the
  ``heartbeat_loss`` fault makes a healthy shard look hung, and the
  supervisor restarts it anyway: availability over thrift).

Every restart restores the shard from its last durable WAL checkpoint
(:meth:`~repro.shard.store.ShardHost.restart`), making the recovered
rows **bounded-stale**: at most ``table_version - checkpoint_version``
updates behind, a bound the supervisor reports per incident.  Restarts
are budgeted (``max_restarts`` per shard); past the budget the shard is
*abandoned* and the manager serves its range from the checkpoint tier
only.  Each restart charges a full-jitter backoff delay from a seeded
:class:`~repro.core.asl.RetryPolicy` — recorded, not slept, so chaos
tests stay fast while the simulated account stays honest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.asl import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.shard.errors import (
    ShardCrashError,
    ShardHungError,
    ShardTimeoutError,
)
from repro.shard.store import EmbeddingShardManager, ShardHost

#: Default restart backoff: full jitter, seeded, ~1 ms base.
DEFAULT_RESTART_BACKOFF = RetryPolicy(
    max_retries=8, base_delay_seconds=1e-3, jitter="full", jitter_seed=7
)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision thresholds and budgets.

    Attributes:
        heartbeat_timeout_s: wall seconds without heartbeat progress
            before an alive shard counts as hung.
        max_restarts: restarts allowed per shard before abandonment.
        restart_backoff: seeded (jittered) backoff schedule; each
            restart's delay is *recorded* as simulated seconds.
    """

    heartbeat_timeout_s: float = 0.5
    max_restarts: int = 8
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: DEFAULT_RESTART_BACKOFF
    )

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s <= 0:
            raise ValueError(
                "heartbeat_timeout_s must be > 0,"
                f" got {self.heartbeat_timeout_s}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )


@dataclass(frozen=True)
class Incident:
    """One supervision action (returned by :meth:`ShardSupervisor.check`).

    Attributes:
        shard_id: the shard acted on.
        reason: ``"crash"`` / ``"hang"`` / ``"heartbeat"``.
        action: ``"restart"`` or ``"abandon"``.
        lost_versions: staleness the shard reopened with (restart only).
        backoff_s: jittered backoff charged for this restart.
    """

    shard_id: int
    reason: str
    action: str
    lost_versions: int = 0
    backoff_s: float = 0.0


class ShardSupervisor:
    """Health-checks the shard fleet and restarts from checkpoints."""

    def __init__(
        self,
        manager: EmbeddingShardManager,
        policy: SupervisorPolicy = SupervisorPolicy(),
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.manager = manager
        self.policy = policy
        self.metrics = metrics if metrics is not None else manager.metrics
        self.incidents: list[Incident] = []
        self.sim_backoff_seconds = 0.0
        #: Heartbeat progress tracking: {(shard, generation): (value, wall_ts)}.
        self._beats: dict[tuple[int, int], tuple[int, float]] = {}
        manager.on_failure = self.note_failure

    # -- reactive path ---------------------------------------------------

    def note_failure(self, shard_id: int, exc: Exception) -> None:
        """Repair a shard the scatter-gather path just saw fail."""
        if isinstance(exc, ShardCrashError):
            reason = "crash"
        elif isinstance(exc, (ShardTimeoutError, ShardHungError)):
            reason = "hang"
        else:  # pragma: no cover - future failure types
            reason = "unknown"
        self._repair(self.manager.hosts[shard_id], reason)

    # -- proactive path --------------------------------------------------

    def check(self) -> list[Incident]:
        """One supervision sweep; returns the incidents acted on."""
        sweep: list[Incident] = []
        now = time.monotonic()
        for host in self.manager.hosts:
            if host.abandoned:
                continue
            if not host.alive():
                sweep.extend(self._repair(host, "crash"))
                continue
            key = (host.shard_id, host.generation)
            value = host.heartbeat_value()
            previous = self._beats.get(key)
            if previous is None or value != previous[0]:
                self._beats[key] = (value, now)
                continue
            if now - previous[1] >= self.policy.heartbeat_timeout_s:
                self.metrics.counter(
                    "shard.heartbeat_misses", shard=str(host.shard_id)
                ).inc()
                sweep.extend(self._repair(host, "heartbeat"))
        return sweep

    def wait_heartbeats(self, timeout_s: float = 2.0) -> bool:
        """Block until every live shard has beaten at least once."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(
                not host.alive() or host.heartbeat_value() > 0
                for host in self.manager.hosts
            ):
                return True
            time.sleep(0.01)
        return False

    # -- repair ----------------------------------------------------------

    def _repair(self, host: ShardHost, reason: str) -> list[Incident]:
        if host.abandoned:
            return []
        if host.restarts >= self.policy.max_restarts:
            host.abandoned = True
            incident = Incident(
                shard_id=host.shard_id, reason=reason, action="abandon"
            )
            self._record(incident)
            return [incident]
        backoff = self.policy.restart_backoff.delay(host.restarts)
        self.sim_backoff_seconds += backoff
        lost = host.restart()
        self._beats.pop((host.shard_id, host.generation - 1), None)
        incident = Incident(
            shard_id=host.shard_id,
            reason=reason,
            action="restart",
            lost_versions=lost,
            backoff_s=backoff,
        )
        self._record(incident)
        return [incident]

    def _record(self, incident: Incident) -> None:
        self.incidents.append(incident)
        if incident.action == "restart":
            self.metrics.counter(
                "shard.restarts",
                shard=str(incident.shard_id),
                reason=incident.reason,
            ).inc()
            self.metrics.histogram("shard.restart_backoff").observe(
                incident.backoff_s
            )
        else:
            self.metrics.counter(
                "shard.abandoned", shard=str(incident.shard_id)
            ).inc()
        self._emit(incident)

    def _emit(self, incident: Incident) -> None:
        record: dict[str, Any] = {
            "type": "shard_event",
            "event": incident.action,
            "shard": incident.shard_id,
            "reason": incident.reason,
            "lost_versions": incident.lost_versions,
            "backoff_s": incident.backoff_s,
        }
        self.manager._emit(record)
