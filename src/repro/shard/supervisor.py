"""The shard supervision tree: health checks, restarts, backoff.

:class:`ShardSupervisor` watches every :class:`~repro.shard.store.ShardHost`
two ways:

- **Reactively** — the manager's scatter-gather path reports each typed
  shard failure (:meth:`note_failure`), and the supervisor restarts the
  shard immediately, so a crash detected *by* a lookup is repaired
  before the next one.
- **Proactively** — :meth:`check` sweeps liveness: a dead primary is a
  crash; an alive primary whose heartbeat counter has not advanced for
  ``heartbeat_timeout_s`` wall seconds is hung (or muted — the
  ``heartbeat_loss`` fault makes a healthy shard look hung, and the
  supervisor restarts it anyway: availability over thrift).

Repair prefers **promotion over replay**: when the shard has a live
replica tracking the table version (a warm standby on the same shared
segment), the supervisor promotes it to primary
(:meth:`~repro.shard.store.ShardHost.promote_replica`) — zero WAL
replay, zero lost versions, simulated downtime of one hedge penalty.
Only when no fresh replica survives does it fall back to a WAL restart
(:meth:`~repro.shard.store.ShardHost.restart`), which restores the
newest *CRC-verified* checkpoint and reopens **bounded-stale**: at most
``table_version - checkpoint_version`` updates behind, a bound the
supervisor reports per incident.  Restarts are budgeted
(``max_restarts`` per shard); past the budget the shard is *abandoned*
and the manager serves its range from the checkpoint tier only.  Each
restart charges a full-jitter backoff delay from a seeded
:class:`~repro.core.asl.RetryPolicy` — recorded, not slept, so chaos
tests stay fast while the simulated account stays honest.

The supervisor is also the *elastic reshard* driver: when
``reshard_imbalance`` is set and per-shard served-row counts diverge
past it, :meth:`check` begins an online split of the hottest shard and
advances the in-flight migration each sweep until the warmed hosts are
drained in and the routing table swaps atomically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.core.asl import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.shard.errors import (
    ShardCrashError,
    ShardHungError,
    ShardTimeoutError,
)
from repro.shard.store import EmbeddingShardManager, ShardHost

#: Default restart backoff: full jitter, seeded, ~1 ms base.
DEFAULT_RESTART_BACKOFF = RetryPolicy(
    max_retries=8, base_delay_seconds=1e-3, jitter="full", jitter_seed=7
)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision thresholds and budgets.

    Attributes:
        heartbeat_timeout_s: wall seconds without heartbeat progress
            before an alive shard counts as hung.
        max_restarts: restarts allowed per shard before abandonment.
        restart_backoff: seeded (jittered) backoff schedule; each
            restart's delay is *recorded* as simulated seconds.
        reshard_imbalance: served-row load-imbalance ratio
            (max/mean over :attr:`EmbeddingShardManager.rows_served`)
            past which :meth:`ShardSupervisor.check` begins an online
            split of the hottest shard; ``0`` disables resharding.
        reshard_min_lookups: lookups that must have been served before
            imbalance is trusted (early traffic is too noisy to act on).
    """

    heartbeat_timeout_s: float = 0.5
    max_restarts: int = 8
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: DEFAULT_RESTART_BACKOFF
    )
    reshard_imbalance: float = 0.0
    reshard_min_lookups: int = 20

    def __post_init__(self) -> None:
        if self.heartbeat_timeout_s <= 0:
            raise ValueError(
                "heartbeat_timeout_s must be > 0,"
                f" got {self.heartbeat_timeout_s}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.reshard_imbalance < 0:
            raise ValueError(
                "reshard_imbalance must be >= 0,"
                f" got {self.reshard_imbalance}"
            )
        if self.reshard_min_lookups < 0:
            raise ValueError(
                "reshard_min_lookups must be >= 0,"
                f" got {self.reshard_min_lookups}"
            )


@dataclass(frozen=True)
class Incident:
    """One supervision action (returned by :meth:`ShardSupervisor.check`).

    Attributes:
        shard_id: the shard acted on.
        reason: ``"crash"`` / ``"hang"`` / ``"heartbeat"`` /
            ``"imbalance"``.
        action: ``"promote"``, ``"restart"``, ``"abandon"``, or
            ``"reshard"``.
        lost_versions: staleness the shard reopened with (restart only;
            a promotion always reopens at the live version, i.e. 0).
        backoff_s: jittered backoff charged for this restart.
        recovery_s: simulated seconds the repair itself cost (the PM
            checkpoint read of a WAL restart, or the hedge penalty of a
            promotion).
        seq: the store's lookup sequence number when the incident was
            acted on — the coordinate forensics joins incidents onto
            request trees with.
        sim_now_s: simulated clock position of the serve call that
            triggered the sweep (``None`` when :meth:`check` ran with
            no clock in hand, e.g. a bare health-check loop).
    """

    shard_id: int
    reason: str
    action: str
    lost_versions: int = 0
    backoff_s: float = 0.0
    recovery_s: float = 0.0
    seq: int = 0
    sim_now_s: float | None = None


class ShardSupervisor:
    """Health-checks the shard fleet and restarts from checkpoints."""

    def __init__(
        self,
        manager: EmbeddingShardManager,
        policy: SupervisorPolicy = SupervisorPolicy(),
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.manager = manager
        self.policy = policy
        self.metrics = metrics if metrics is not None else manager.metrics
        self.incidents: list[Incident] = []
        self.sim_backoff_seconds = 0.0
        #: Simulated clock position of the serve call currently being
        #: supervised (stamped onto incidents for forensic joining).
        self._sim_now: float | None = None
        #: Heartbeat progress tracking: {(shard, generation): (value, wall_ts)}.
        self._beats: dict[tuple[int, int], tuple[int, float]] = {}
        #: Routing epoch last seen; a bump invalidates every beat key
        #: (shard ids are renumbered by a finished migration).
        self._reshard_epoch = manager.reshard_epoch
        manager.on_failure = self.note_failure

    # -- reactive path ---------------------------------------------------

    def note_failure(self, shard_id: int, exc: Exception) -> None:
        """Repair a shard the scatter-gather path just saw fail."""
        if isinstance(exc, ShardCrashError):
            reason = "crash"
        elif isinstance(exc, (ShardTimeoutError, ShardHungError)):
            reason = "hang"
        else:  # pragma: no cover - future failure types
            reason = "unknown"
        self._repair(self.manager.hosts[shard_id], reason)

    # -- proactive path --------------------------------------------------

    def check(self, sim_now: float | None = None) -> list[Incident]:
        """One supervision sweep; returns the incidents acted on.

        ``sim_now`` is the caller's simulated clock position (the serve
        loop passes it); incidents raised during this sweep — and by
        reactive repairs until the next sweep — carry it, so forensics
        can join them onto overlapping request deadlines.
        """
        if sim_now is not None:
            self._sim_now = sim_now
        sweep: list[Incident] = []
        self._check_reshard(sweep)
        now = time.monotonic()
        for host in self.manager.hosts:
            if host.abandoned:
                continue
            if not host.alive():
                sweep.extend(self._repair(host, "crash"))
                continue
            key = (host.shard_id, host.generation)
            value = host.heartbeat_value()
            previous = self._beats.get(key)
            if previous is None or value != previous[0]:
                self._beats[key] = (value, now)
                continue
            if now - previous[1] >= self.policy.heartbeat_timeout_s:
                self.metrics.counter(
                    "shard.heartbeat_misses", shard=str(host.shard_id)
                ).inc()
                sweep.extend(self._repair(host, "heartbeat"))
        return sweep

    def wait_heartbeats(self, timeout_s: float = 2.0) -> bool:
        """Block until every live shard has beaten at least once."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if all(
                not host.alive() or host.heartbeat_value() > 0
                for host in self.manager.hosts
            ):
                return True
            time.sleep(0.01)
        return False

    # -- elastic reshard -------------------------------------------------

    def _check_reshard(self, sweep: list[Incident]) -> None:
        """Advance an in-flight migration, or begin one on imbalance."""
        manager = self.manager
        if manager.reshard_epoch != self._reshard_epoch:
            self._beats.clear()
            self._reshard_epoch = manager.reshard_epoch
        if manager.migrating:
            if manager.maybe_advance_migration():
                self._beats.clear()
                self._reshard_epoch = manager.reshard_epoch
            return
        policy = self.policy
        if policy.reshard_imbalance <= 0:
            return
        if manager.lookup_seq < policy.reshard_min_lookups:
            return
        if not hasattr(manager.routing, "ranges"):
            return  # hash routing: ownership is already scattered
        if manager.load_imbalance() < policy.reshard_imbalance:
            return
        served = manager.rows_served
        hottest = max(range(len(served)), key=lambda i: served[i])
        start, end = manager.routing.ranges[hottest]
        if end - start < 2 or manager.hosts[hottest].abandoned:
            return
        manager.begin_split(hottest)
        incident = Incident(
            shard_id=hottest, reason="imbalance", action="reshard",
            seq=manager.lookup_seq, sim_now_s=self._sim_now,
        )
        self._record(incident)
        sweep.append(incident)

    # -- repair ----------------------------------------------------------

    def _repair(self, host: ShardHost, reason: str) -> list[Incident]:
        if host.abandoned:
            return []
        # Promotion first: a warm standby already tracks the live
        # version, so failover costs one hedge penalty and replays
        # nothing.  WAL restart is the no-fresh-replica fallback.
        if host.policy.n_replicas > 0 and host.has_fresh_replica():
            before = host.recovery_sim_seconds
            try:
                host.promote_replica()
            except ShardCrashError:
                pass  # replica died under us: fall through to restart
            else:
                self._beats.pop((host.shard_id, host.generation - 1), None)
                incident = Incident(
                    shard_id=host.shard_id,
                    reason=reason,
                    action="promote",
                    lost_versions=0,
                    recovery_s=host.recovery_sim_seconds - before,
                    seq=self.manager.lookup_seq,
                    sim_now_s=self._sim_now,
                )
                self._record(incident)
                return [incident]
        if host.restarts >= self.policy.max_restarts:
            host.abandoned = True
            incident = Incident(
                shard_id=host.shard_id, reason=reason, action="abandon",
                seq=self.manager.lookup_seq, sim_now_s=self._sim_now,
            )
            self._record(incident)
            return [incident]
        backoff = self.policy.restart_backoff.delay(host.restarts)
        self.sim_backoff_seconds += backoff
        before = host.recovery_sim_seconds
        try:
            lost = host.restart()
        except ShardCrashError:
            # No verified checkpoint survives (all quarantined): the
            # shard cannot reopen with trusted rows, so abandon it.
            host.abandoned = True
            incident = Incident(
                shard_id=host.shard_id, reason=reason, action="abandon",
                seq=self.manager.lookup_seq, sim_now_s=self._sim_now,
            )
            self._record(incident)
            return [incident]
        self._beats.pop((host.shard_id, host.generation - 1), None)
        incident = Incident(
            shard_id=host.shard_id,
            reason=reason,
            action="restart",
            lost_versions=lost,
            backoff_s=backoff,
            recovery_s=host.recovery_sim_seconds - before,
            seq=self.manager.lookup_seq,
            sim_now_s=self._sim_now,
        )
        self._record(incident)
        return [incident]

    def _record(self, incident: Incident) -> None:
        self.incidents.append(incident)
        if incident.action == "restart":
            self.metrics.counter(
                "shard.restarts",
                shard=str(incident.shard_id),
                reason=incident.reason,
            ).inc()
            self.metrics.histogram("shard.restart_backoff").observe(
                incident.backoff_s
            )
        elif incident.action == "promote":
            self.metrics.counter(
                "shard.promotions", shard=str(incident.shard_id)
            ).inc()
        elif incident.action == "reshard":
            self.metrics.counter(
                "shard.reshards", shard=str(incident.shard_id)
            ).inc()
        else:
            self.metrics.counter(
                "shard.abandoned", shard=str(incident.shard_id)
            ).inc()
        self._emit(incident)

    def _emit(self, incident: Incident) -> None:
        event = (
            "shard_abandoned"
            if incident.action == "abandon"
            else incident.action
        )
        record: dict[str, Any] = {
            "type": "shard_event",
            "event": event,
            "shard": incident.shard_id,
            "reason": incident.reason,
            "lost_versions": incident.lost_versions,
            "backoff_s": incident.backoff_s,
            "recovery_s": incident.recovery_s,
            "seq": incident.seq,
            "sim_now_s": incident.sim_now_s,
        }
        self.manager._emit(record)
