"""The shard process: one worker serving a contiguous embedding range.

A shard process attaches a zero-copy view of its rows (the owner-side
:class:`~repro.shard.store.ShardHost` creates the shared segment from
the shard's durable checkpoint) and then loops on a job queue:

- ``("lookup", req_id, node_ids)`` — gather the requested rows and ack
  ``("ok", req_id, rows, version)``;
- ``("version", req_id, version)`` — adopt a new table version (the
  host refreshes rows in place through the shared segment; this message
  just moves the version watermark the acks carry);
- ``("crash", ...)`` — hard-exit without acking (an injected
  ``shard_crash``);
- ``("hang", seconds)`` — sleep without heartbeating or serving (an
  injected ``shard_hang``);
- ``("mute", ...)`` — stop heartbeating but keep serving (an injected
  ``heartbeat_loss``, the supervisor's false-positive path);
- ``None`` — clean shutdown.

Liveness is a heartbeat counter (a shared ``Value``) bumped every loop
iteration — while idle the queue-get timeout paces the bumps, so a
healthy-but-quiet shard still beats, and a hung one visibly does not.
"""

from __future__ import annotations

import os
import queue as queue_module
import time

import numpy as np

from repro.formats.csdb import SharedArraySpec, attach_shared_array

#: Exit code of an injected shard crash (asserted by crash tests).
SHARD_CRASH_EXIT_CODE = 23

#: Default wall seconds between heartbeat bumps while idle.
DEFAULT_HEARTBEAT_INTERVAL_S = 0.02


def shard_main(
    shard_id: int,
    spec: SharedArraySpec,
    row_start: int,
    version: int,
    jobs,
    results,
    heartbeat,
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
) -> None:
    """Entry point of one shard process (also used by replicas).

    ``row_start`` is the shard's index base: an ``int`` offset for
    contiguous range routing, or a sorted ``np.ndarray`` of owned node
    ids under consistent-hash routing (local slot found by binary
    search).
    """
    view, segment = attach_shared_array(spec)
    owned_ids = (
        np.asarray(row_start, dtype=np.int64)
        if isinstance(row_start, np.ndarray)
        else None
    )
    muted = False
    try:
        while True:
            if not muted:
                with heartbeat.get_lock():
                    heartbeat.value += 1
            try:
                job = jobs.get(timeout=heartbeat_interval_s)
            except queue_module.Empty:
                continue
            if job is None:
                return
            kind = job[0]
            if kind == "crash":
                # Flush acks already queued (the feeder thread is
                # asynchronous and os._exit would drop them), then die
                # hard: the crash itself is never acked.
                results.close()
                results.join_thread()
                os._exit(SHARD_CRASH_EXIT_CODE)
            if kind == "hang":
                time.sleep(float(job[1]))
                continue
            if kind == "mute":
                muted = True
                continue
            if kind == "version":
                _, req_id, version = job
                results.put(("ok", req_id, None, version))
                continue
            # kind == "lookup"
            _, req_id, node_ids = job
            try:
                ids = np.asarray(node_ids, dtype=np.int64)
                if owned_ids is not None:
                    ids = np.searchsorted(owned_ids, ids)
                else:
                    ids = ids - row_start
                rows = np.array(view[ids], copy=True)
                results.put(("ok", req_id, rows, version))
            except BaseException as exc:  # noqa: BLE001 - forwarded
                try:
                    results.put(
                        ("error", req_id, f"{type(exc).__name__}: {exc}", version)
                    )
                except Exception:
                    os._exit(1)
    finally:
        del view
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view still exported
            pass
