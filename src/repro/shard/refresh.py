"""Background checkpoint refresh: bounded staleness under live traffic.

PR 7's store only re-checkpointed on explicit ``catch_up``, so
``table_version - checkpoint_version`` grew without bound between
repairs — a crash late in a busy window reopened arbitrarily stale.
:class:`BackgroundCheckpointer` closes that gap online: it rides the
scatter-gather request loop (:meth:`tick` is called once per lookup,
before the gather), re-checkpointing each shard on a per-shard
*staggered* cadence (``ShardPolicy.checkpoint_interval`` lookups) and —
independently — the moment a shard's version lag reaches
``ShardPolicy.staleness_bound``.

A refresh replays the manager's authoritative rows into the shard
segment and cuts a fresh WAL checkpoint
(:meth:`~repro.shard.store.ShardHost.catch_up`), so it also heals
shards that restarted stale, without anyone calling ``catch_up``
explicitly.  Every refresh is billed to the simulated clock (the PM
flush/fence cost of the checkpoint, accumulated in
:attr:`sim_refresh_seconds`) — background maintenance is not free, it
is just off the request path.

The ``staleness_bound`` SLO kind
(:mod:`repro.obs.observatory.slo`) gates the result: the
``shard.staleness_max`` gauge this class maintains is the maximum
version lag any lookup ever observed, and the objective holds when it
stays at or below the configured bound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.store import EmbeddingShardManager, ShardHost


class BackgroundCheckpointer:
    """Cadence- and bound-driven per-shard re-checkpointer.

    Attributes:
        bg_checkpoints: refreshes performed (also the
            ``shard.bg_checkpoints`` counter).
        sim_refresh_seconds: simulated PM seconds the refreshes cost.
        max_observed_staleness: worst ``table_version -
            checkpoint_version`` any tick observed *before* refreshing
            (also the ``shard.staleness_max`` gauge) — the number the
            ``staleness_bound`` SLO is evaluated against.
    """

    def __init__(self, manager: "EmbeddingShardManager") -> None:
        self.manager = manager
        self.metrics = manager.metrics
        self.bg_checkpoints = 0
        self.sim_refresh_seconds = 0.0
        self.max_observed_staleness = 0

    def staleness_of(self, host: "ShardHost") -> int:
        """A shard's current version lag against the whole table."""
        checkpointed = (
            host.checkpoint_version
            if host.checkpoint_version is not None
            else 0
        )
        return max(self.manager.version - checkpointed, 0)

    def tick(self, seq: int) -> list[int]:
        """One request-loop tick; returns the shard ids refreshed.

        A shard is due when its staggered cadence slot comes up
        (``(seq + stagger) % checkpoint_interval == 0`` — shards
        checkpoint on *different* lookups, so no request pays for the
        whole fleet at once) or when its lag has already reached the
        staleness bound.  Shards with zero lag are skipped either way;
        abandoned shards are not refreshed (their segment is gone).
        """
        policy = self.manager.policy
        interval = policy.checkpoint_interval
        bound = policy.staleness_bound
        n_shards = max(len(self.manager.hosts), 1)
        refreshed: list[int] = []
        worst = 0
        for shard_id, host in enumerate(self.manager.hosts):
            if host.abandoned:
                continue
            lag = self.staleness_of(host)
            worst = max(worst, lag)
            due = False
            if interval > 0:
                stagger = (shard_id * interval) // n_shards
                due = (seq + stagger) % interval == 0
            if not due and bound > 0 and lag >= bound:
                due = True
            if due and lag > 0:
                self._refresh(shard_id, host, lag)
                refreshed.append(shard_id)
        self.max_observed_staleness = max(
            self.max_observed_staleness, worst
        )
        self.metrics.gauge("shard.staleness_max").set(
            float(self.max_observed_staleness)
        )
        return refreshed

    def _refresh(self, shard_id: int, host: "ShardHost", lag: int) -> None:
        before = host.domain.sim_seconds
        host.catch_up(self.manager.rows_for(host), self.manager.version)
        self.sim_refresh_seconds += host.domain.sim_seconds - before
        self.bg_checkpoints += 1
        self.metrics.counter(
            "shard.bg_checkpoints", shard=str(shard_id)
        ).inc()
        self.manager._emit(
            {
                "type": "shard_event",
                "event": "bg_checkpoint",
                "shard": shard_id,
                "version": self.manager.version,
                "lag_closed": lag,
            }
        )
