"""Typed failures of the sharded embedding store.

Shard faults are expected events, so every failure mode carries a
precise type the callers dispatch on: the supervisor reacts to
:class:`ShardCrashError` / :class:`ShardHungError` by restarting the
shard from its checkpoint, and the scatter-gather path converts them
into hedged reads — surfacing :class:`PartialResultError` only when even
the stale-checkpoint tier cannot cover a range.
"""

from __future__ import annotations


class ShardError(RuntimeError):
    """Base class of every shard-store failure."""


class ShardCrashError(ShardError):
    """A shard process died (or was unreachable) during a call."""

    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"shard {shard_id} crashed: {detail}")
        self.shard_id = shard_id
        self.detail = detail


class CheckpointCorruptionError(ShardCrashError):
    """No verified checkpoint survives for a shard.

    Raised when recovery walks the shard's WAL from newest to oldest and
    every record fails CRC verification (all quarantined).  Subclasses
    :class:`ShardCrashError` so the hedging ladder treats it as the
    checkpoint tier being unavailable rather than crashing the caller.
    """

    def __init__(self, shard_id: int, quarantined: int) -> None:
        super().__init__(
            shard_id,
            f"no verified checkpoint ({quarantined} quarantined)",
        )
        self.quarantined = quarantined


class ShardHungError(ShardError):
    """A shard process is alive but stopped making progress."""

    def __init__(self, shard_id: int, stale_for_s: float) -> None:
        super().__init__(
            f"shard {shard_id} hung: heartbeat stale for {stale_for_s:.2f}s"
        )
        self.shard_id = shard_id
        self.stale_for_s = stale_for_s


class ShardTimeoutError(ShardError):
    """One shard call outlived its per-shard deadline."""

    def __init__(self, shard_id: int, deadline_s: float) -> None:
        super().__init__(
            f"shard {shard_id} missed its {deadline_s:.3f}s deadline"
        )
        self.shard_id = shard_id
        self.deadline_s = deadline_s


class PartialResultError(ShardError):
    """A scatter-gather lookup could not cover every requested range.

    Carries exactly which node ranges went unserved (``missing_ranges``)
    and which were served from the stale-checkpoint tier
    (``stale_ranges``), each as ``(shard_id, row_start, row_end)``
    tuples, so the serving ladder can degrade per-shard instead of
    failing the whole request.
    """

    def __init__(
        self,
        missing_ranges: tuple[tuple[int, int, int], ...],
        stale_ranges: tuple[tuple[int, int, int], ...] = (),
    ) -> None:
        missing = ", ".join(
            f"shard {s}: [{a}, {b})" for s, a, b in missing_ranges
        )
        super().__init__(f"unserved embedding ranges: {missing or 'none'}")
        self.missing_ranges = tuple(missing_ranges)
        self.stale_ranges = tuple(stale_ranges)
