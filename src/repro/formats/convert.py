"""Conversions between edge lists, CSR, CSDB and scipy sparse matrices.

scipy is used *only* here, as an interop/validation boundary — the library
itself computes on the from-scratch formats.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.csdb import CSDBMatrix
from repro.formats.csr import CSRMatrix


def edges_to_csr(
    edges: np.ndarray,
    n_nodes: int,
    weights: np.ndarray | None = None,
    undirected: bool = True,
) -> CSRMatrix:
    """Build the adjacency matrix of a graph as a CSR matrix.

    Args:
        edges: (m, 2) int array of endpoints.
        n_nodes: number of nodes |V|.
        weights: optional edge weights; defaults to 1 (the paper's
            initialization of ``nnz_list``).
        undirected: mirror each edge (the paper's graphs are undirected).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2), got {edges.shape}")
    src, dst = edges[:, 0], edges[:, 1]
    if weights is None:
        weights = np.ones(len(edges), dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != len(edges):
            raise ValueError("weights length must match edges")
    if undirected:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        weights = np.concatenate([weights, weights])
    return CSRMatrix.from_coo(src, dst, weights, (n_nodes, n_nodes))


def edges_to_csdb(
    edges: np.ndarray,
    n_nodes: int,
    weights: np.ndarray | None = None,
    undirected: bool = True,
) -> CSDBMatrix:
    """Build the adjacency matrix of a graph in CSDB format."""
    return CSDBMatrix.from_csr(
        edges_to_csr(edges, n_nodes, weights, undirected)
    )


def csr_to_scipy(matrix: CSRMatrix) -> sp.csr_matrix:
    """Export a from-scratch CSR matrix as ``scipy.sparse.csr_matrix``."""
    return sp.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
    )


def csr_from_scipy(matrix: sp.spmatrix) -> CSRMatrix:
    """Import a scipy sparse matrix as a from-scratch CSR matrix."""
    csr = sp.csr_matrix(matrix)
    csr.sum_duplicates()
    return CSRMatrix(
        csr.indptr.astype(np.int64),
        csr.indices.astype(np.int64),
        csr.data.astype(np.float64),
        csr.shape,
    )


def csdb_to_scipy(matrix: CSDBMatrix) -> sp.csr_matrix:
    """Export a CSDB matrix as ``scipy.sparse.csr_matrix``."""
    return csr_to_scipy(matrix.to_csr())


def csdb_from_scipy(matrix: sp.spmatrix) -> CSDBMatrix:
    """Import a scipy sparse matrix as a CSDB matrix."""
    return CSDBMatrix.from_csr(csr_from_scipy(matrix))
