"""Compressed Sparse Degree-Block (CSDB) format — §III-A of the paper.

CSDB exploits the skewed degree distribution of real-world graphs: rows
are grouped into *blocks of equal degree* (sorted by decreasing degree),
so the per-row pointer array of CSR (O(|V|)) collapses into two tiny
arrays of size O(|unique degrees|):

- ``deg_list`` — the distinct degrees, descending (``[4, 3, 2, 0]`` for
  the paper's example graph);
- ``deg_ind``  — the starting *row offset* of each degree block
  (``[0, 3, 5, 7]``; we append a final ``n_rows`` sentinel for clean
  binary search).

Within a block every row has the same degree, so the edge-array offset of
row ``i`` is computed arithmetically (Eq. 1):
``ptr(i) = block_ptr[b] + (i - deg_ind[b]) * deg_list[b]``.

Because blocks require rows sorted by degree, the matrix stores a
permutation ``perm`` (CSDB row -> original row id).  All public operators
speak the *original* indexing; the permutation is an internal detail,
except for the SpMM engine which deliberately works in CSDB row space
(partitions are contiguous runs of CSDB rows) and uses
:meth:`CSDBMatrix.spmm_rows` + :attr:`CSDBMatrix.perm` to scatter results
back.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.formats.csr import CSRMatrix

#: Default byte budget bounding the blocked SpMM gather intermediate
#: (the ``vals[:, None] * dense[cols]`` materialization is O(nnz * d)
#: unblocked; blocking accumulates in row-aligned chunks of at most this
#: many bytes, which keeps results bit-identical — see
#: :meth:`CSDBMatrix.spmm_rows`).
DEFAULT_CHUNK_BUDGET_BYTES = 64 * 2**20
#: Target footprint of the tiled kernel's gather intermediate.  The
#: inner kernel column-tiles the dense operand so each
#: ``dense[cols, t0:t1]`` gather plus its scaled product stays roughly
#: cache-resident instead of round-tripping an O(nnz * d) temporary
#: through DRAM; measured 2.4-4.6x on the seeded R-MAT workloads at
#: d >= 16.  Tiling never changes a row's accumulation order, so the
#: tiled kernel is bit-identical to the untiled one.
DEFAULT_TILE_BUDGET_BYTES = 1 * 2**20
#: Widest column tile; narrower tiles repeat the per-index gather
#: overhead too often, wider ones spill the intermediate out of cache.
MAX_TILE_COLS = 32


class KernelVerificationError(AssertionError):
    """A blocked/parallel SpMM kernel diverged from the CSR reference."""


@dataclass(frozen=True)
class SharedArraySpec:
    """Locator of one ndarray living in a shared-memory segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedCSDBHandle:
    """Picklable descriptor of a CSDB matrix in shared memory.

    Carries only segment names and array metadata — a worker process
    rebuilds a zero-copy :class:`CSDBMatrix` from it via
    :meth:`CSDBMatrix.from_shared`.
    """

    deg_list: SharedArraySpec
    deg_ind: SharedArraySpec
    col_list: SharedArraySpec
    nnz_list: SharedArraySpec
    perm: SharedArraySpec
    shape: tuple[int, int]

    @property
    def specs(self) -> tuple[SharedArraySpec, ...]:
        return (
            self.deg_list, self.deg_ind, self.col_list, self.nnz_list,
            self.perm,
        )

    @property
    def key(self) -> str:
        """Stable identity of the shared copy (its first segment name)."""
        return self.deg_list.name


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker side effects.

    ``SharedMemory(name=...)`` in a non-owner process registers the
    segment with its resource tracker, which would unlink it when that
    process exits (the well-known CPython gh-82300 wart).  Python 3.13+
    exposes ``track=False``; on older versions we attach and unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on Python version
        segment = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        return segment


def unlink_segment(name: str) -> None:
    """Attach (plainly, so the tracker entry survives) and unlink.

    A missing segment is not an error — cleanup paths may race.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - cleanup race
        pass


def create_shared_array(array: np.ndarray, name: str) -> SharedArraySpec:
    """Copy an ndarray into a new named shared segment; returns its spec.

    The segment is created with ``create=True`` and must eventually be
    released by the owner (``close()`` + ``unlink()``); callers track the
    returned name.  Zero-length arrays get a 1-byte segment (POSIX shm
    rejects empty mappings).
    """
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(int(array.nbytes), 1)
    )
    try:
        if array.size:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[:] = array
            # Drop the exported buffer before close() — mmap refuses to
            # close while a view holds it.
            del view
        return SharedArraySpec(
            name=segment.name, shape=tuple(array.shape), dtype=str(array.dtype)
        )
    finally:
        segment.close()


def attach_shared_array(
    spec: SharedArraySpec,
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Zero-copy view over a shared segment; caller keeps the segment."""
    segment = attach_segment(spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    return view, segment


class SharedCSDB:
    """Owner side of a CSDB matrix copied into shared memory.

    Created by :meth:`CSDBMatrix.to_shared`; the owner must call
    :meth:`close` (idempotent) to unlink the segments once no process
    needs them.  The executor (:mod:`repro.parallel.shared`) manages the
    lifetime for engine-driven SpMM.
    """

    def __init__(self, handle: SharedCSDBHandle) -> None:
        self.handle = handle
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every segment (safe to call more than once)."""
        if self._closed:
            return
        self._closed = True
        for spec in self.handle.specs:
            unlink_segment(spec.name)

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class CSDBMatrix:
    """Sparse matrix in the paper's compressed sparse degree-block layout."""

    def __init__(
        self,
        deg_list: np.ndarray,
        deg_ind: np.ndarray,
        col_list: np.ndarray,
        nnz_list: np.ndarray,
        perm: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        """Build from raw block arrays; prefer the ``from_*`` constructors.

        Args:
            deg_list: distinct row degrees, strictly descending.
            deg_ind: row offsets of each degree block, length
                ``len(deg_list) + 1``, ending at ``n_rows``.
            col_list: column ids of the non-zeros, in CSDB row order.
            nnz_list: values of the non-zeros, aligned with ``col_list``.
            perm: ``perm[csdb_row] = original_row``.
            shape: (n_rows, n_cols) in original indexing.
        """
        self.deg_list = np.asarray(deg_list, dtype=np.int64)
        self.deg_ind = np.asarray(deg_ind, dtype=np.int64)
        self.col_list = np.asarray(col_list, dtype=np.int64)
        self.nnz_list = np.asarray(nnz_list, dtype=np.float64)
        self.perm = np.asarray(perm, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()
        block_sizes = np.diff(self.deg_ind)
        self.block_ptr = np.concatenate(
            [[0], np.cumsum(block_sizes * self.deg_list)]
        ).astype(np.int64)
        self._inv_perm: np.ndarray | None = None
        self._row_degrees: np.ndarray | None = None
        self._nnz_prefix: np.ndarray | None = None
        self._col_degrees: np.ndarray | None = None
        self._content_hash: str | None = None
        # Keeps attached shared-memory segments alive for matrices built
        # by from_shared (the arrays above are zero-copy views into them).
        self._shared_segments: tuple[shared_memory.SharedMemory, ...] = ()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if len(self.deg_ind) != len(self.deg_list) + 1:
            raise ValueError(
                "deg_ind must have len(deg_list)+1 entries"
                f" ({len(self.deg_list) + 1}), got {len(self.deg_ind)}"
            )
        if len(self.deg_list) and np.any(np.diff(self.deg_list) >= 0):
            raise ValueError("deg_list must be strictly descending")
        if len(self.deg_list) and self.deg_list.min() < 0:
            raise ValueError("degrees must be non-negative")
        if self.deg_ind[0] != 0 or self.deg_ind[-1] != n_rows:
            raise ValueError("deg_ind must start at 0 and end at n_rows")
        if np.any(np.diff(self.deg_ind) < 0):
            raise ValueError("deg_ind must be non-decreasing")
        expected_nnz = int(np.sum(np.diff(self.deg_ind) * self.deg_list))
        if len(self.col_list) != expected_nnz:
            raise ValueError(
                f"col_list length {len(self.col_list)} does not match"
                f" block structure nnz {expected_nnz}"
            )
        if len(self.col_list) != len(self.nnz_list):
            raise ValueError("col_list and nnz_list lengths differ")
        if len(self.perm) != n_rows:
            raise ValueError(f"perm must have {n_rows} entries")
        if len(self.col_list) and (
            self.col_list.min() < 0 or self.col_list.max() >= n_cols
        ):
            raise ValueError("column index out of range")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_csr(cls, csr: CSRMatrix) -> "CSDBMatrix":
        """Convert a CSR matrix by sorting rows into degree blocks."""
        degrees = csr.row_degrees()
        # Stable sort by descending degree keeps equal-degree rows in
        # original order, matching the paper's example layout.
        perm = np.argsort(-degrees, kind="stable").astype(np.int64)
        sorted_degrees = degrees[perm]
        if len(sorted_degrees):
            boundary = np.concatenate(
                [[True], sorted_degrees[1:] != sorted_degrees[:-1]]
            )
            deg_list = sorted_degrees[boundary]
            deg_ind = np.concatenate(
                [np.flatnonzero(boundary), [len(sorted_degrees)]]
            )
        else:
            deg_list = np.empty(0, dtype=np.int64)
            deg_ind = np.zeros(1, dtype=np.int64)
        nnz_total = csr.nnz
        col_list = np.empty(nnz_total, dtype=np.int64)
        nnz_list = np.empty(nnz_total, dtype=np.float64)
        # Gather each original row's slice into its CSDB position.  Build a
        # gather index over the nnz array in one vectorized pass.
        starts = csr.indptr[perm]
        lengths = degrees[perm]
        if nnz_total:
            out_offsets = np.concatenate([[0], np.cumsum(lengths)])
            gather = (
                np.repeat(starts, lengths)
                + np.arange(nnz_total, dtype=np.int64)
                - np.repeat(out_offsets[:-1], lengths)
            )
            col_list = csr.indices[gather]
            nnz_list = csr.data[gather]
        return cls(deg_list, deg_ind, col_list, nnz_list, perm, csr.shape)

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSDBMatrix":
        """Build from coordinate triplets (duplicates summed)."""
        return cls.from_csr(CSRMatrix.from_coo(rows, cols, vals, shape))

    # -- structure accessors ----------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(len(self.nnz_list))

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def n_blocks(self) -> int:
        """Number of degree blocks (= number of distinct degrees)."""
        return len(self.deg_list)

    @property
    def inv_perm(self) -> np.ndarray:
        """``inv_perm[original_row] = csdb_row`` (cached)."""
        if self._inv_perm is None:
            inv = np.empty(self.n_rows, dtype=np.int64)
            inv[self.perm] = np.arange(self.n_rows, dtype=np.int64)
            self._inv_perm = inv
        return self._inv_perm

    def index_bytes(self) -> int:
        """Bytes of index metadata — O(|distinct degrees|), not O(|V|).

        This is the compression the paper claims over CSR's O(|V|)
        ``indptr``; the permutation is excluded because the paper stores
        the graph pre-relabeled (we keep ``perm`` for API convenience).
        """
        return int(
            self.deg_list.nbytes + self.deg_ind.nbytes + self.block_ptr.nbytes
        )

    def block_of_row(self, csdb_row: int) -> int:
        """Degree-block index containing a CSDB row."""
        if not 0 <= csdb_row < self.n_rows:
            raise IndexError(f"row {csdb_row} out of range [0, {self.n_rows})")
        return int(np.searchsorted(self.deg_ind, csdb_row, side="right") - 1)

    def degree_of_row(self, csdb_row: int) -> int:
        """Degree of a CSDB row (constant within its block)."""
        return int(self.deg_list[self.block_of_row(csdb_row)])

    def row_ptr(self, csdb_row: int) -> int:
        """Eq. 1: offset of a CSDB row's first non-zero in ``col_list``."""
        if csdb_row == self.n_rows:
            return self.nnz
        block = self.block_of_row(csdb_row)
        offset_in_block = csdb_row - self.deg_ind[block]
        return int(self.block_ptr[block] + offset_in_block * self.deg_list[block])

    def row_degrees(self) -> np.ndarray:
        """Per-CSDB-row degrees, expanded from the blocks (cached)."""
        if self._row_degrees is None:
            self._row_degrees = np.repeat(
                self.deg_list, np.diff(self.deg_ind)
            ).astype(np.int64)
        return self._row_degrees

    def nnz_prefix(self) -> np.ndarray:
        """Prefix sums of per-row nnz: ``prefix[i]`` = nnz before row i.

        Length ``n_rows + 1``; the workhorse of the thread allocators.
        """
        if self._nnz_prefix is None:
            self._nnz_prefix = np.concatenate(
                [[0], np.cumsum(self.row_degrees())]
            ).astype(np.int64)
        return self._nnz_prefix

    def neighbors(self, original_row: int) -> tuple[np.ndarray, np.ndarray]:
        """(column ids, values) of an *original* row, via Eq. 1 lookup."""
        if not 0 <= original_row < self.n_rows:
            raise IndexError(
                f"row {original_row} out of range [0, {self.n_rows})"
            )
        csdb_row = int(self.inv_perm[original_row])
        lo = self.row_ptr(csdb_row)
        hi = lo + self.degree_of_row(csdb_row)
        return self.col_list[lo:hi], self.nnz_list[lo:hi]

    # -- operators (§III-A: multiplication, addition, subtraction,
    #    transposition) ----------------------------------------------------

    def _chunk_boundaries(
        self, row_start: int, row_end: int, d: int, budget_bytes: int
    ) -> np.ndarray:
        """Row-aligned chunk boundaries whose gather stays in budget.

        Chunks never split a row, so each row's non-zeros are reduced in
        one ``reduceat`` segment regardless of chunking — blocked results
        are bit-identical to the one-shot kernel.  A single hub row whose
        own gather exceeds the budget still forms a chunk of its own.
        """
        prefix = self.nnz_prefix()
        budget_nnz = max(int(budget_bytes) // (16 * max(d, 1)), 1)
        boundaries = [row_start]
        cursor = row_start
        while cursor < row_end:
            target = prefix[cursor] + budget_nnz
            # Furthest row whose cumulative nnz still fits the budget.
            nxt = int(
                np.searchsorted(prefix, target, side="right") - 1
            )
            nxt = min(max(nxt, cursor + 1), row_end)
            boundaries.append(nxt)
            cursor = nxt
        return np.asarray(boundaries, dtype=np.int64)

    def spmm_rows(
        self,
        dense: np.ndarray,
        row_start: int,
        row_end: int,
        budget_bytes: int | None = None,
    ) -> np.ndarray:
        """SpMM restricted to CSDB rows ``[row_start, row_end)``.

        This is the unit of work of Algorithm 1: a thread's partition is a
        contiguous run of CSDB rows.  Returns the partial result in CSDB
        row order (shape ``(row_end - row_start, dense.shape[1])``).

        The gather intermediate (``vals * dense[cols]``, O(nnz * d)
        bytes unblocked) is accumulated in row-aligned chunks whose
        footprint is bounded by the *tile* budget: the dense operand is
        column-tiled (at most :data:`MAX_TILE_COLS` columns per tile)
        and chunk row extents are sized so one tile's gather plus its
        scaled product stay roughly L2-resident
        (:data:`DEFAULT_TILE_BUDGET_BYTES`) instead of streaming an
        O(nnz * d) temporary through DRAM.  ``budget_bytes`` (default
        :data:`DEFAULT_CHUNK_BUDGET_BYTES`) still caps the footprint
        from above.  Tiling never reorders a row's accumulation —
        ``reduceat`` runs over the same non-zeros in the same order per
        column tile — so blocked, tiled results are bit-identical to
        the one-shot kernel.
        """
        if not 0 <= row_start <= row_end <= self.n_rows:
            raise ValueError(
                f"invalid row range [{row_start}, {row_end})"
                f" for {self.n_rows} rows"
            )
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != self.n_cols:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {dense.shape}"
            )
        n_out = row_end - row_start
        d = dense.shape[1]
        out = np.zeros((n_out, d), dtype=np.float64)
        if n_out == 0:
            return out
        prefix = self.nnz_prefix()
        if prefix[row_start] == prefix[row_end]:
            return out
        if budget_bytes is None:
            budget_bytes = DEFAULT_CHUNK_BUDGET_BYTES
        degrees = self.row_degrees()
        tile_w = min(max(d, 1), MAX_TILE_COLS)
        tile_budget = min(int(budget_bytes), DEFAULT_TILE_BUDGET_BYTES)
        boundaries = self._chunk_boundaries(
            row_start, row_end, tile_w, tile_budget
        )
        for a, b in zip(boundaries[:-1], boundaries[1:]):
            lo, hi = int(prefix[a]), int(prefix[b])
            if lo == hi:
                continue
            cols = self.col_list[lo:hi]
            vals = self.nnz_list[lo:hi][:, None]
            # reduceat needs strictly increasing offsets: segment only
            # the rows that actually own non-zeros, then scatter.
            nonzero_rows = np.flatnonzero(degrees[a:b] > 0)
            offsets = (prefix[a:b] - prefix[a])[nonzero_rows]
            out_chunk = out[a - row_start : b - row_start]
            if tile_w == d:
                # Advanced indexing already copied; scale in place.
                sub = dense[cols]
                sub *= vals
                out_chunk[nonzero_rows] = np.add.reduceat(sub, offsets, axis=0)
            else:
                for t0 in range(0, d, tile_w):
                    t1 = min(d, t0 + tile_w)
                    sub = dense[cols, t0:t1]
                    sub *= vals
                    out_chunk[nonzero_rows, t0:t1] = np.add.reduceat(
                        sub, offsets, axis=0
                    )
        return out

    def spmm(
        self,
        dense: np.ndarray,
        chunk_rows: int | None = None,
        budget_bytes: int | None = None,
        verify: bool = False,
    ) -> np.ndarray:
        """Full SpMM ``self @ dense`` in original row order.

        Args:
            dense: the dense operand, shape (n_cols, d) or (n_cols,).
            chunk_rows: optional CSDB-row chunk size for the scatter
                loop; by default chunks are derived from ``budget_bytes``
                so the peak gather footprint is bounded instead of
                materializing the whole O(nnz * d) intermediate.
            budget_bytes: byte budget for the gather intermediate
                (default :data:`DEFAULT_CHUNK_BUDGET_BYTES`).
            verify: cross-validate the blocked kernel against the CSR
                reference (``self.to_csr().spmm``); raises
                :class:`KernelVerificationError` on divergence.  Meant
                for tests and debugging — it pays a full second SpMM.
        """
        dense = np.asarray(dense, dtype=np.float64)
        squeeze = dense.ndim == 1
        if squeeze:
            dense = dense[:, None]
        if budget_bytes is None:
            budget_bytes = DEFAULT_CHUNK_BUDGET_BYTES
        out = np.zeros((self.n_rows, dense.shape[1]), dtype=np.float64)
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if chunk_rows is not None:
            boundaries = np.arange(
                0, self.n_rows + chunk_rows, chunk_rows, dtype=np.int64
            )
            boundaries[-1] = self.n_rows
            boundaries = np.unique(boundaries)
        else:
            boundaries = self._chunk_boundaries(
                0, self.n_rows, dense.shape[1], budget_bytes
            )
        if self.n_rows:
            for a, b in zip(boundaries[:-1], boundaries[1:]):
                out[self.perm[a:b]] = self.spmm_rows(
                    dense, int(a), int(b), budget_bytes=budget_bytes
                )
        if verify:
            reference = self.to_csr().spmm(dense)
            if not np.allclose(out, reference, rtol=1e-9, atol=1e-12):
                worst = float(np.max(np.abs(out - reference)))
                raise KernelVerificationError(
                    "blocked SpMM diverged from the CSR reference"
                    f" (max abs error {worst:.3e})"
                )
        return out[:, 0] if squeeze else out

    def spmv(self, vector: np.ndarray) -> np.ndarray:
        """Sparse x vector multiplication in original indexing."""
        return self.spmm(np.asarray(vector).reshape(-1))

    def transpose(self) -> "CSDBMatrix":
        """Transposed copy, re-blocked by the transpose's row degrees."""
        csdb_rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        original_rows = self.perm[csdb_rows]
        return CSDBMatrix.from_coo(
            self.col_list,
            original_rows,
            self.nnz_list,
            (self.n_cols, self.n_rows),
        )

    def _elementwise(self, other: "CSDBMatrix", sign: float) -> "CSDBMatrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        rows = np.concatenate(
            [
                self.perm[
                    np.repeat(
                        np.arange(self.n_rows, dtype=np.int64),
                        self.row_degrees(),
                    )
                ],
                other.perm[
                    np.repeat(
                        np.arange(other.n_rows, dtype=np.int64),
                        other.row_degrees(),
                    )
                ],
            ]
        )
        cols = np.concatenate([self.col_list, other.col_list])
        vals = np.concatenate([self.nnz_list, sign * other.nnz_list])
        merged = CSRMatrix.from_coo(rows, cols, vals, self.shape).prune()
        return CSDBMatrix.from_csr(merged)

    def __add__(self, other: "CSDBMatrix") -> "CSDBMatrix":
        return self._elementwise(other, 1.0)

    def __sub__(self, other: "CSDBMatrix") -> "CSDBMatrix":
        return self._elementwise(other, -1.0)

    def scale(self, factor: float) -> "CSDBMatrix":
        """Return ``factor * self`` (same block structure).

        Structural caches (degrees, prefix sums, permutations) depend
        only on the sparsity pattern, which scaling preserves — the new
        matrix inherits them instead of recomputing.  ``transpose`` and
        the elementwise operators change the pattern and therefore build
        fresh matrices with empty caches.
        """
        scaled = CSDBMatrix(
            self.deg_list,
            self.deg_ind,
            self.col_list,
            self.nnz_list * factor,
            self.perm,
            self.shape,
        )
        scaled._inv_perm = self._inv_perm
        scaled._row_degrees = self._row_degrees
        scaled._nnz_prefix = self._nnz_prefix
        scaled._col_degrees = self._col_degrees
        return scaled

    def col_degrees(self) -> np.ndarray:
        """In-degree of every column — the metric of WoFP's degree-based
        prefetcher (§III-C).  Cached: the engine consults it per SpMM."""
        if self._col_degrees is None:
            self._col_degrees = np.bincount(
                self.col_list, minlength=self.n_cols
            ).astype(np.int64)
        return self._col_degrees

    # -- content identity ---------------------------------------------------

    def content_hash(self) -> str:
        """Hex digest over the five block arrays (cached after first call).

        The shared-memory executor keys its persistent segment cache on
        ``(instance identity, content hash)``: as long as the hash is
        unchanged, the shared copy made by a previous ``multiply()`` is
        reused without touching the arrays.  In-place mutation must be
        announced via :meth:`mark_mutated`, which drops the cached
        digest so the next lookup recomputes it and the executor
        re-shares the matrix.
        """
        if self._content_hash is None:
            digest = hashlib.blake2b(digest_size=16)
            for array in (
                self.deg_list, self.deg_ind, self.col_list, self.nnz_list,
                self.perm,
            ):
                digest.update(np.ascontiguousarray(array).data)
            digest.update(repr(self.shape).encode("ascii"))
            self._content_hash = digest.hexdigest()
        return self._content_hash

    def mark_mutated(self) -> None:
        """Invalidate derived caches after in-place *value* mutation.

        Call this after writing into ``nnz_list`` (e.g. re-weighting
        edges in place): the cached content hash and derived caches are
        dropped, so executors holding shared copies re-share the matrix
        on their next call.  Structural mutation (``deg_list``,
        ``deg_ind``, ``col_list``, ``perm``) is not supported — build a
        fresh matrix instead.
        """
        self._content_hash = None
        self._inv_perm = None
        self._row_degrees = None
        self._nnz_prefix = None
        self._col_degrees = None

    # -- shared memory ------------------------------------------------------

    def to_shared(self, prefix: str | None = None) -> SharedCSDB:
        """Copy the five block arrays into named shared-memory segments.

        Returns the owner-side :class:`SharedCSDB`, whose picklable
        ``handle`` lets worker processes rebuild a zero-copy view via
        :meth:`from_shared`.  The caller owns the segments and must
        ``close()`` the result when done (the shared-memory executor
        does this automatically for engine-driven SpMM).
        """
        import os as _os
        import secrets

        if prefix is None:
            prefix = f"csdb-{_os.getpid()}-{secrets.token_hex(4)}"
        created: list[str] = []
        arrays = {
            "deg_list": self.deg_list,
            "deg_ind": self.deg_ind,
            "col_list": self.col_list,
            "nnz_list": self.nnz_list,
            "perm": self.perm,
        }
        specs: dict[str, SharedArraySpec] = {}
        try:
            for field_name, array in arrays.items():
                spec = create_shared_array(
                    np.ascontiguousarray(array), f"{prefix}-{field_name}"
                )
                created.append(spec.name)
                specs[field_name] = spec
        except BaseException:
            for name in created:
                unlink_segment(name)
            raise
        return SharedCSDB(SharedCSDBHandle(shape=self.shape, **specs))

    @classmethod
    def from_shared(cls, handle: SharedCSDBHandle) -> "CSDBMatrix":
        """Rebuild a matrix over shared segments without copying.

        The five arrays are views into the attached segments; the
        matrix instance keeps the attachments alive for its lifetime.
        Mutating the views would corrupt every attached process — treat
        the result as read-only.
        """
        views = {}
        segments = []
        for field_name, spec in (
            ("deg_list", handle.deg_list),
            ("deg_ind", handle.deg_ind),
            ("col_list", handle.col_list),
            ("nnz_list", handle.nnz_list),
            ("perm", handle.perm),
        ):
            view, segment = attach_shared_array(spec)
            views[field_name] = view
            segments.append(segment)
        matrix = cls(shape=handle.shape, **views)
        matrix._shared_segments = tuple(segments)
        return matrix

    # -- conversions --------------------------------------------------------

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR in original row order."""
        csdb_rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        return CSRMatrix.from_coo(
            self.perm[csdb_rows],
            self.col_list,
            self.nnz_list,
            self.shape,
            sum_duplicates=False,
        )

    def to_dense(self) -> np.ndarray:
        """Dense ndarray copy (testing/small matrices only)."""
        return self.to_csr().to_dense()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSDBMatrix(shape={self.shape}, nnz={self.nnz},"
            f" blocks={self.n_blocks})"
        )
