"""A from-scratch Compressed Sparse Row (CSR) matrix.

This is the baseline storage format of Fig. 19(a): ``indptr`` is an
O(|V|) row-pointer array, ``indices``/``data`` hold the column ids and
values of the non-zeros.  The implementation is numpy-vectorized but does
not depend on ``scipy.sparse`` (scipy is only used at the interop
boundary, see :mod:`repro.formats.convert`).
"""

from __future__ import annotations

import numpy as np


class CSRMatrix:
    """Sparse matrix in CSR layout.

    Args:
        indptr: int64 array of length ``n_rows + 1``; row ``i`` owns
            non-zeros ``indptr[i]:indptr[i+1]``.
        indices: int32/int64 column ids, length nnz, sorted within a row.
        data: float64 values, length nnz.
        shape: (n_rows, n_cols).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices)
        data = np.asarray(data, dtype=np.float64)
        n_rows, n_cols = shape
        if indptr.ndim != 1 or len(indptr) != n_rows + 1:
            raise ValueError(
                f"indptr must have length n_rows+1={n_rows + 1}, got {len(indptr)}"
            )
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(indices) != len(data):
            raise ValueError(
                f"indices ({len(indices)}) and data ({len(data)}) lengths differ"
            )
        if len(indices) and (indices.min() < 0 or indices.max() >= n_cols):
            raise ValueError("column index out of range")
        self.indptr = indptr
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = data
        self.shape = (int(n_rows), int(n_cols))

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build a CSR matrix from coordinate triplets.

        Duplicate (row, col) entries are summed when ``sum_duplicates``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("rows, cols, vals must have equal length")
        n_rows, n_cols = shape
        if len(rows):
            if rows.min() < 0 or rows.max() >= n_rows:
                raise ValueError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise ValueError("column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and len(rows):
            keep = np.empty(len(rows), dtype=bool)
            keep[0] = True
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group = np.cumsum(keep) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(summed, group, vals)
            rows, cols, vals = rows[keep], cols[keep], summed
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols, vals, shape)

    # -- basic properties -------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(len(self.data))

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row_degrees(self) -> np.ndarray:
        """Non-zero count of every row (node out-degrees for a graph)."""
        return np.diff(self.indptr)

    def col_degrees(self) -> np.ndarray:
        """Non-zero count of every column (node in-degrees for a graph)."""
        return np.bincount(self.indices, minlength=self.n_cols).astype(np.int64)

    def index_bytes(self) -> int:
        """Bytes spent on index structures (the O(|V|) indptr + indices)."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column ids, values) of row ``i``."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range [0, {self.n_rows})")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # -- linear algebra ---------------------------------------------------

    def spmm(self, dense: np.ndarray) -> np.ndarray:
        """Sparse x dense multiplication: ``self @ dense``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim == 1:
            dense = dense[:, None]
        if dense.shape[0] != self.n_cols:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {dense.shape}"
            )
        out = np.zeros((self.n_rows, dense.shape[1]), dtype=np.float64)
        prod = self.data[:, None] * dense[self.indices]
        row_ids = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        np.add.at(out, row_ids, prod)
        return out

    def spmv(self, vector: np.ndarray) -> np.ndarray:
        """Sparse x vector multiplication."""
        return self.spmm(np.asarray(vector).reshape(-1, 1)).ravel()

    def transpose(self) -> "CSRMatrix":
        """Transposed copy (CSR of the transpose)."""
        row_ids = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        return CSRMatrix.from_coo(
            self.indices,
            row_ids,
            self.data,
            (self.n_cols, self.n_rows),
            sum_duplicates=False,
        )

    def to_dense(self) -> np.ndarray:
        """Dense ndarray copy (testing/small matrices only)."""
        out = np.zeros(self.shape, dtype=np.float64)
        row_ids = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        np.add.at(out, (row_ids, self.indices), self.data)
        return out

    def _elementwise(self, other: "CSRMatrix", sign: float) -> "CSRMatrix":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        self_rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        other_rows = np.repeat(
            np.arange(other.n_rows, dtype=np.int64), other.row_degrees()
        )
        rows = np.concatenate([self_rows, other_rows])
        cols = np.concatenate([self.indices, other.indices])
        vals = np.concatenate([self.data, sign * other.data])
        merged = CSRMatrix.from_coo(rows, cols, vals, self.shape)
        return merged.prune()

    def __add__(self, other: "CSRMatrix") -> "CSRMatrix":
        return self._elementwise(other, 1.0)

    def __sub__(self, other: "CSRMatrix") -> "CSRMatrix":
        return self._elementwise(other, -1.0)

    def scale(self, factor: float) -> "CSRMatrix":
        """Return ``factor * self``."""
        return CSRMatrix(self.indptr, self.indices, self.data * factor, self.shape)

    def prune(self, tol: float = 0.0) -> "CSRMatrix":
        """Drop stored entries with ``|value| <= tol``."""
        keep = np.abs(self.data) > tol
        if keep.all():
            return self
        row_ids = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        return CSRMatrix.from_coo(
            row_ids[keep],
            self.indices[keep],
            self.data[keep],
            self.shape,
            sum_duplicates=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
