"""Binary (de)serialization of CSDB and CSR matrices.

Large-scale pipelines persist the converted graph so the reading
procedure (Fig. 19a) runs once; this module provides a compact ``.npz``
container for both formats with format/version validation, so a CSDB
graph built on one machine can be memory-mapped on another.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.formats.csdb import CSDBMatrix
from repro.formats.csr import CSRMatrix

#: Container-format version; bump on layout changes.
FORMAT_VERSION = 1


def save_csdb(path: str | Path, matrix: CSDBMatrix) -> None:
    """Persist a CSDB matrix as a compressed .npz container."""
    np.savez_compressed(
        Path(path),
        kind=np.array(["csdb"]),
        version=np.array([FORMAT_VERSION]),
        shape=np.array(matrix.shape, dtype=np.int64),
        deg_list=matrix.deg_list,
        deg_ind=matrix.deg_ind,
        col_list=matrix.col_list,
        nnz_list=matrix.nnz_list,
        perm=matrix.perm,
    )


def load_csdb(path: str | Path) -> CSDBMatrix:
    """Load a CSDB matrix saved by :func:`save_csdb`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_container(data, "csdb")
        return CSDBMatrix(
            deg_list=data["deg_list"],
            deg_ind=data["deg_ind"],
            col_list=data["col_list"],
            nnz_list=data["nnz_list"],
            perm=data["perm"],
            shape=tuple(int(x) for x in data["shape"]),
        )


def save_csr(path: str | Path, matrix: CSRMatrix) -> None:
    """Persist a CSR matrix as a compressed .npz container."""
    np.savez_compressed(
        Path(path),
        kind=np.array(["csr"]),
        version=np.array([FORMAT_VERSION]),
        shape=np.array(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
    )


def load_csr(path: str | Path) -> CSRMatrix:
    """Load a CSR matrix saved by :func:`save_csr`."""
    with np.load(Path(path), allow_pickle=False) as data:
        _check_container(data, "csr")
        return CSRMatrix(
            indptr=data["indptr"],
            indices=data["indices"],
            data=data["data"],
            shape=tuple(int(x) for x in data["shape"]),
        )


def _check_container(data: np.lib.npyio.NpzFile, expected_kind: str) -> None:
    if "kind" not in data or "version" not in data:
        raise ValueError("not a repro matrix container")
    kind = str(data["kind"][0])
    if kind != expected_kind:
        raise ValueError(
            f"container holds a {kind!r} matrix, expected {expected_kind!r}"
        )
    version = int(data["version"][0])
    if version > FORMAT_VERSION:
        raise ValueError(
            f"container version {version} is newer than supported"
            f" ({FORMAT_VERSION})"
        )
