"""Binary (de)serialization of CSDB and CSR matrices.

Large-scale pipelines persist the converted graph so the reading
procedure (Fig. 19a) runs once; this module provides a compact ``.npz``
container for both formats with format/version validation, so a CSDB
graph built on one machine can be memory-mapped on another.
"""

from __future__ import annotations

import zipfile
from pathlib import Path

import numpy as np

from repro.formats.csdb import CSDBMatrix
from repro.formats.csr import CSRMatrix

#: Container-format version; bump on layout changes.
FORMAT_VERSION = 1


class ContainerFormatError(ValueError):
    """A matrix container is corrupt, truncated, or of the wrong kind.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    handlers keep working; the typed error lets ingestion pipelines
    distinguish a corrupt blob from other value errors.
    """


#: Arrays every container of a given kind must carry.
_REQUIRED_KEYS = {
    "csdb": ("shape", "deg_list", "deg_ind", "col_list", "nnz_list", "perm"),
    "csr": ("shape", "indptr", "indices", "data"),
}


def _open_container(path: Path) -> np.lib.npyio.NpzFile:
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError) as exc:
        # A truncated/garbage file surfaces as BadZipFile or as a
        # pickle-refusal ValueError from np.load.
        raise ContainerFormatError(
            f"{path}: not a readable matrix container ({exc})"
        ) from exc


def save_csdb(path: str | Path, matrix: CSDBMatrix) -> None:
    """Persist a CSDB matrix as a compressed .npz container."""
    np.savez_compressed(
        Path(path),
        kind=np.array(["csdb"]),
        version=np.array([FORMAT_VERSION]),
        shape=np.array(matrix.shape, dtype=np.int64),
        deg_list=matrix.deg_list,
        deg_ind=matrix.deg_ind,
        col_list=matrix.col_list,
        nnz_list=matrix.nnz_list,
        perm=matrix.perm,
    )


def load_csdb(path: str | Path) -> CSDBMatrix:
    """Load a CSDB matrix saved by :func:`save_csdb`."""
    with _open_container(Path(path)) as data:
        _check_container(data, "csdb")
        return CSDBMatrix(
            deg_list=data["deg_list"],
            deg_ind=data["deg_ind"],
            col_list=data["col_list"],
            nnz_list=data["nnz_list"],
            perm=data["perm"],
            shape=tuple(int(x) for x in data["shape"]),
        )


def save_csr(path: str | Path, matrix: CSRMatrix) -> None:
    """Persist a CSR matrix as a compressed .npz container."""
    np.savez_compressed(
        Path(path),
        kind=np.array(["csr"]),
        version=np.array([FORMAT_VERSION]),
        shape=np.array(matrix.shape, dtype=np.int64),
        indptr=matrix.indptr,
        indices=matrix.indices,
        data=matrix.data,
    )


def load_csr(path: str | Path) -> CSRMatrix:
    """Load a CSR matrix saved by :func:`save_csr`."""
    with _open_container(Path(path)) as data:
        _check_container(data, "csr")
        return CSRMatrix(
            indptr=data["indptr"],
            indices=data["indices"],
            data=data["data"],
            shape=tuple(int(x) for x in data["shape"]),
        )


def _check_container(data: np.lib.npyio.NpzFile, expected_kind: str) -> None:
    if "kind" not in data or "version" not in data:
        raise ContainerFormatError("not a repro matrix container")
    kind = str(data["kind"][0])
    if kind != expected_kind:
        raise ContainerFormatError(
            f"container holds a {kind!r} matrix, expected {expected_kind!r}"
        )
    version = int(data["version"][0])
    if version > FORMAT_VERSION:
        raise ContainerFormatError(
            f"container version {version} is newer than supported"
            f" ({FORMAT_VERSION})"
        )
    missing = [k for k in _REQUIRED_KEYS[expected_kind] if k not in data]
    if missing:
        raise ContainerFormatError(
            f"{expected_kind} container is missing arrays: {missing}"
        )
