"""Graph/sparse-matrix storage formats.

- :mod:`repro.formats.csr` — a from-scratch Compressed Sparse Row matrix,
  the baseline format of Fig. 19(a);
- :mod:`repro.formats.csdb` — the paper's Compressed Sparse Degree-Block
  format (§III-A) with the operator set the paper requires
  (multiplication, addition, subtraction, transposition);
- :mod:`repro.formats.convert` — conversions between edge lists, CSR,
  CSDB and scipy sparse matrices.
"""

from repro.formats.csdb import (
    CSDBMatrix,
    KernelVerificationError,
    SharedArraySpec,
    SharedCSDB,
    SharedCSDBHandle,
)
from repro.formats.convert import (
    csdb_from_scipy,
    csdb_to_scipy,
    csr_from_scipy,
    csr_to_scipy,
    edges_to_csdb,
    edges_to_csr,
)
from repro.formats.csr import CSRMatrix
from repro.formats.serialize import (
    ContainerFormatError,
    load_csdb,
    load_csr,
    save_csdb,
    save_csr,
)

__all__ = [
    "CSDBMatrix",
    "CSRMatrix",
    "ContainerFormatError",
    "KernelVerificationError",
    "SharedArraySpec",
    "SharedCSDB",
    "SharedCSDBHandle",
    "csdb_from_scipy",
    "csdb_to_scipy",
    "csr_from_scipy",
    "csr_to_scipy",
    "edges_to_csdb",
    "edges_to_csr",
    "load_csdb",
    "load_csr",
    "save_csdb",
    "save_csr",
]
