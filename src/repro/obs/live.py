"""Cross-process streaming telemetry: the live bus behind ``repro top``.

Three cooperating pieces:

- :class:`TraceContext` — the trace coordinates (trace id, parent span
  id, live-stream path) a coordinator hands to out-of-process work so
  worker spans join its trace.  It is a tiny frozen dataclass so it
  crosses the multiprocessing queue as-is.
- :class:`TelemetryStream` — an append-only JSONL event stream written
  incrementally with periodic flush.  The coordinator streams spans,
  events and snapshots as they happen; each worker process appends to a
  sibling file (``<stream>.w<pid>``) so a crash loses at most the
  unflushed tail of one file, never the run.  :func:`merge_streams`
  stitches coordinator + worker streams back into one export in the
  :meth:`~repro.obs.export.TelemetrySession.records` shape, so
  ``repro diff`` / ``repro profile`` / ``repro report`` work unchanged
  on merged streams.
- The ops view — :func:`build_top_frame` folds a stream's latest
  ``serve_snapshot`` (or final metrics) into the dashboard numbers
  ``repro top`` renders, and :func:`render_prom` emits the same state
  as Prometheus text exposition for scraping.

Readers are deliberately forgiving: a process killed mid-``write`` tears
the last line of its stream, so :func:`read_stream` and
:class:`StreamFollower` skip partial/corrupt lines instead of raising
the way :func:`~repro.obs.export.read_jsonl` does on curated exports.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

#: Schema version stamped into every stream's ``stream_meta`` header.
STREAM_VERSION = 1

#: Record type of the periodic serving snapshot on a live stream.
SNAPSHOT_RECORD_TYPE = "serve_snapshot"

#: Record type marking a cleanly closed stream.
CLOSED_RECORD_TYPE = "stream_closed"

#: Record types that belong to the canonical session export shape, in
#: the order :meth:`TelemetrySession.records` emits them.
_CANONICAL_TYPES = ("meta", "manifest", "span", "metric", "cost_trace", "event")


# ---------------------------------------------------------------------------
# Trace propagation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceContext:
    """Trace coordinates propagated into out-of-process work.

    Attributes:
        trace_id: the coordinator tracer's run-wide trace id.
        parent_span_id: span id the foreign spans should parent under
            (the coordinator's open ``spmm`` span).
        live_path: coordinator's live stream path, if streaming — each
            worker appends its spans to ``<live_path>.w<pid>``.
    """

    trace_id: str
    parent_span_id: int | None = None
    live_path: str | None = None


_UID_COUNTER = itertools.count()


def next_span_uid() -> str:
    """Process-unique id for a cross-process span payload.

    Merging dedups on this: a span shipped back over the result queue
    *and* appended to a worker stream file must count once.
    """
    return f"{os.getpid()}-{next(_UID_COUNTER)}"


def partition_span_payload(
    ctx: TraceContext,
    *,
    row_start: int,
    row_end: int,
    nnz: int,
    kernel_wall_s: float,
    scatter_wall_s: float,
    queue_wait_s: float = 0.0,
    status: str = "ok",
    uid: str | None = None,
    worker_pid: int | None = None,
    request_trace_id: str | None = None,
) -> dict[str, Any]:
    """The wire shape of one partition's worker span.

    A plain dict (queue-picklable, JSONL-ready) that
    :meth:`SpanTracer.attach` adopts on the coordinator side.  Worker
    spans are wall-clock only — ``sim_seconds`` is zero so the profile
    tree's sim self-time invariant is untouched.

    ``request_trace_id`` stamps the span with the *serving request* it
    executed for (distinct from ``ctx.trace_id``, the run's trace), so
    tail forensics can graft executor partitions into that request's
    causal tree.
    """
    pid = os.getpid() if worker_pid is None else int(worker_pid)
    kernel_wall_s = max(0.0, float(kernel_wall_s))
    scatter_wall_s = max(0.0, float(scatter_wall_s))
    payload = {
        "type": "span",
        "name": "spmm_partition",
        "trace_id": ctx.trace_id,
        "parent_id": ctx.parent_span_id,
        "status": status,
        "sim_seconds": 0.0,
        "sim_start": 0.0,
        "wall_seconds": kernel_wall_s + scatter_wall_s,
        "attributes": {
            "uid": uid if uid is not None else next_span_uid(),
            "worker_pid": pid,
            "row_start": int(row_start),
            "row_end": int(row_end),
            "rows": int(row_end) - int(row_start),
            "nnz": int(nnz),
            "kernel_wall_s": kernel_wall_s,
            "scatter_wall_s": scatter_wall_s,
            "queue_wait_s": max(0.0, float(queue_wait_s)),
        },
    }
    if request_trace_id is not None:
        payload["attributes"]["request_trace_id"] = str(request_trace_id)
    return payload


# ---------------------------------------------------------------------------
# The stream
# ---------------------------------------------------------------------------


class TelemetryStream:
    """Append-only, crash-tolerant JSONL telemetry stream.

    Records are written one JSON object per line and flushed every
    ``flush_every`` records (``1`` = flush each record), so a follower
    sees progress while the run is live and a crash loses at most the
    unflushed tail.  The first record is always a ``stream_meta`` header
    identifying the writing process and trace.
    """

    def __init__(
        self,
        path: str | Path,
        flush_every: int = 20,
        role: str = "coordinator",
        trace_id: str | None = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.role = role
        self.trace_id = trace_id
        self.flush_every = int(flush_every)
        self.n_records = 0
        self._since_flush = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self.emit(
            {
                "type": "stream_meta",
                "stream_version": STREAM_VERSION,
                "role": role,
                "pid": os.getpid(),
                "trace_id": trace_id,
            }
        )

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._handle is None

    def emit(self, record: dict[str, Any]) -> None:
        """Append one record, flushing per the stream's cadence."""
        if self._handle is None:
            raise ValueError(f"stream {self.path} is closed")
        if "type" not in record:
            raise ValueError(f"record must carry a 'type' field: {record!r}")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.n_records += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered records to the file."""
        if self._handle is not None:
            self._handle.flush()
        self._since_flush = 0

    def close(self) -> None:
        """Flush and close; further :meth:`emit` calls raise."""
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryStream":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_stream(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Read a stream file, tolerating a torn or corrupt line.

    A process killed mid-write leaves a partial final line; a tolerant
    reader is what makes the stream crash-tolerant.  Returns
    ``(records, n_skipped)`` where ``n_skipped`` counts undecodable
    lines (typically 0 or 1).
    """
    records: list[dict[str, Any]] = []
    skipped = 0
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    for line in text.split("\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            skipped += 1
    return records, skipped


class StreamFollower:
    """Incremental reader over a growing stream file (``repro top``).

    Keeps a byte offset plus the partial tail of the last read, so each
    :meth:`poll` returns only records completed since the previous poll
    and a half-written line is simply retried next time.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.records: list[dict[str, Any]] = []
        self._offset = 0
        self._tail = ""

    def poll(self) -> list[dict[str, Any]]:
        """Read newly completed records; also appended to ``records``."""
        if not self.path.exists():
            return []
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
            self._offset = fh.tell()
        if not chunk:
            return []
        lines = (self._tail + chunk).split("\n")
        self._tail = lines.pop()  # "" when the chunk ended on a newline
        fresh: list[dict[str, Any]] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                fresh.append(record)
        self.records.extend(fresh)
        return fresh

    @property
    def closed(self) -> bool:
        """True once the writer emitted its ``stream_closed`` sentinel."""
        return any(
            r.get("type") == CLOSED_RECORD_TYPE for r in self.records
        )


# ---------------------------------------------------------------------------
# Merging multi-process streams
# ---------------------------------------------------------------------------


def worker_stream_paths(path: str | Path) -> list[Path]:
    """Worker sibling files of a coordinator stream, sorted by name."""
    path = Path(path)
    return sorted(
        p
        for p in path.parent.glob(path.name + ".w*")
        if p.is_file()
    )


def merge_streams(path: str | Path) -> list[dict[str, Any]]:
    """Stitch a coordinator stream and its worker siblings into one export.

    Returns records in the canonical session export shape (meta,
    manifest, spans in id order, metrics, cost traces, events) followed
    by the stream-only records (snapshots, stream markers), so the
    existing observatory — ``repro diff``, ``repro profile``,
    ``repro report`` — consumes a merged stream exactly like a buffered
    export.

    Worker spans already adopted by the coordinator (they travel both
    over the result queue and through the worker's own stream file) are
    deduplicated by their ``attributes.uid``; spans found *only* in a
    worker file (the coordinator died first) are grafted in with fresh
    span ids.  If the stream was cut before close, a manifest is
    synthesized from what survived.
    """
    base, _ = read_stream(path)
    grouped: dict[str, list[dict[str, Any]]] = {t: [] for t in _CANONICAL_TYPES}
    passthrough: list[dict[str, Any]] = []
    forensic_uids: set[str] = set()
    for record in base:
        kind = record.get("type")
        if kind in grouped:
            grouped[kind].append(record)
        else:
            if kind == "forensic_span" and record.get("uid") is not None:
                forensic_uids.add(str(record["uid"]))
            passthrough.append(record)

    spans = sorted(
        grouped["span"], key=lambda s: int(s.get("span_id", 0) or 0)
    )
    seen_uids = {
        (s.get("attributes") or {}).get("uid")
        for s in spans
    }
    seen_uids.discard(None)
    known_ids = {
        int(s["span_id"])
        for s in spans
        if isinstance(s.get("span_id"), int)
    }
    next_id = max(known_ids, default=-1) + 1
    parent_sim_start = {
        int(s["span_id"]): float(s.get("sim_start", 0.0) or 0.0)
        for s in spans
        if isinstance(s.get("span_id"), int)
    }
    for worker_path in worker_stream_paths(path):
        worker_records, _ = read_stream(worker_path)
        for record in worker_records:
            if record.get("type") == "forensic_span":
                # Forensic nodes dedup on their top-level uid, exactly
                # like worker spans dedup on attributes.uid: a node
                # shipped to the coordinator *and* written by the
                # worker's own stream must count once.
                fuid = record.get("uid")
                if fuid is not None and str(fuid) in forensic_uids:
                    continue
                if fuid is not None:
                    forensic_uids.add(str(fuid))
                passthrough.append(dict(record))
                continue
            if record.get("type") != "span":
                continue
            uid = (record.get("attributes") or {}).get("uid")
            if uid is not None and uid in seen_uids:
                continue
            entry = dict(record)
            parent = entry.get("parent_id")
            if parent is not None and int(parent) in known_ids:
                # Zero-width sim placement inside the parent's interval.
                entry["sim_start"] = parent_sim_start[int(parent)]
            else:
                entry["parent_id"] = None  # parent span never closed
            entry["span_id"] = next_id
            entry.setdefault("depth", 1)
            entry.setdefault("sim_seconds", 0.0)
            next_id += 1
            if uid is not None:
                seen_uids.add(uid)
            spans.append(entry)

    manifests = grouped["manifest"]
    if not manifests:
        manifests = [
            _synthesize_manifest(
                grouped["meta"], spans, grouped["metric"], grouped["event"]
            )
        ]
    return (
        grouped["meta"][:1]
        + manifests[:1]
        + spans
        + grouped["metric"]
        + grouped["cost_trace"]
        + grouped["event"]
        + passthrough
    )


def _synthesize_manifest(
    metas: list[dict[str, Any]],
    spans: list[dict[str, Any]],
    metrics: list[dict[str, Any]],
    events: list[dict[str, Any]],
) -> dict[str, Any]:
    """Best-effort manifest for a stream cut before clean close."""
    from repro.obs.observatory.manifest import build_manifest

    meta = dict(metas[0]) if metas else {}
    sim_total = max(
        (
            float(s.get("sim_start", 0.0) or 0.0)
            + max(0.0, float(s.get("sim_seconds", 0.0) or 0.0))
            for s in spans
        ),
        default=0.0,
    )
    manifest = build_manifest(meta, spans, metrics, events, sim_total)
    record = manifest.to_record()
    record["synthesized"] = True
    return record


def is_stream_file(path: str | Path) -> bool:
    """Does this file start with a ``stream_meta`` header record?

    Only the first line is inspected — stream writers emit the header
    before anything else, and torn writes only ever affect the tail.
    """
    try:
        with Path(path).open("r", encoding="utf-8", errors="replace") as fh:
            first = fh.readline().strip()
    except OSError:
        return False
    if not first:
        return False
    try:
        record = json.loads(first)
    except json.JSONDecodeError:
        return False
    return isinstance(record, dict) and record.get("type") == "stream_meta"


def load_records(path: str | Path) -> list[dict[str, Any]]:
    """Load telemetry records from an export *or* a live stream.

    Streams (identified by their ``stream_meta`` header) are merged with
    their worker siblings, tolerating a torn final line — their writer
    may have crashed mid-record, by design.  Plain exports are written
    atomically, so they keep the strict :func:`read_jsonl` contract:
    corruption raises with the offending line's location.
    """
    if is_stream_file(path):
        return merge_streams(path)
    from repro.obs.export import read_jsonl

    return read_jsonl(path)


def progress_line(record: dict[str, Any]) -> str | None:
    """One human-readable progress line for a live-stream record.

    The ``--follow`` mode of ``repro embed`` / ``repro compare`` tails
    its own ``--live`` stream and prints these as the run advances:
    completed pipeline stages (coarse spans only — worker partition
    spans would flood the terminal), shard events from the resilience
    layer, and run-level events.  Returns ``None`` for records that
    carry no progress signal.
    """
    kind = record.get("type")
    if kind == "span":
        depth = int(record.get("depth", 0) or 0)
        if depth > 2 or record.get("name") == "spmm_partition":
            return None
        sim = float(record.get("sim_seconds", 0.0) or 0.0)
        status = record.get("status", "ok")
        suffix = "" if status == "ok" else f" [{status}]"
        return f"  stage {record.get('name')}: {sim:.4g}s sim{suffix}"
    if kind == "shard_event":
        event = record.get("event")
        shard = record.get("shard")
        detail = ", ".join(
            f"{key}={record[key]}"
            for key in ("reason", "version", "lag_closed", "lost_versions")
            if record.get(key) not in (None, "", 0)
        )
        return f"  shard {shard}: {event}" + (f" ({detail})" if detail else "")
    if kind == "event":
        name = record.get("name")
        if name == "arm":
            return (
                f"  arm {record.get('system')}: {record.get('status')}"
                f" ({float(record.get('sim_seconds', 0.0) or 0.0):.4g}s sim)"
            )
        return f"  event {name}"
    if kind == CLOSED_RECORD_TYPE:
        return "  stream closed"
    return None


# ---------------------------------------------------------------------------
# Serving snapshots and the ops view
# ---------------------------------------------------------------------------


def build_serve_snapshot(
    metrics: Iterable[Any],
    *,
    sim_now_s: float,
    breaker_state: str,
    queue_depth: int,
    prefixes: tuple[str, ...] = ("serve.", "spmm."),
) -> dict[str, Any]:
    """One periodic snapshot of the serving loop's observable state.

    Embeds the current records of every metric under ``prefixes`` so a
    follower can compute rates between consecutive snapshots without
    replaying the whole run.
    """
    metric_records = [
        m.to_record()
        for m in metrics
        if m.name.startswith(prefixes)
    ]
    return {
        "type": SNAPSHOT_RECORD_TYPE,
        "sim_now_s": float(sim_now_s),
        "breaker_state": str(breaker_state),
        "queue_depth": int(queue_depth),
        "metrics": metric_records,
    }


def latest_metric_records(
    records: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    """The freshest metric view a stream offers.

    The last ``serve_snapshot`` wins (it is the live view); a closed
    stream's final ``metric`` records win over any snapshot because they
    are complete.
    """
    finals = [r for r in records if r.get("type") == "metric"]
    if finals:
        return finals
    snapshots = [
        r for r in records if r.get("type") == SNAPSHOT_RECORD_TYPE
    ]
    if snapshots:
        return list(snapshots[-1].get("metrics") or [])
    return []


def _counter_value(
    metric_records: list[dict[str, Any]],
    name: str,
    labels: dict[str, str] | None = None,
) -> float:
    from repro.obs.observatory.slo import _counter_total

    return _counter_total(metric_records, name, labels)


def _label_values(
    metric_records: list[dict[str, Any]], name: str, label: str
) -> dict[str, float]:
    out: dict[str, float] = {}
    for record in metric_records:
        if record.get("name") != name:
            continue
        value = record.get("value")
        if value is None:
            continue
        key = (record.get("labels") or {}).get(label, "")
        out[key] = out.get(key, 0.0) + float(value)
    return out


def build_top_frame(
    records: list[dict[str, Any]],
    slo_spec: Any | None = None,
) -> dict[str, Any]:
    """Fold stream records into the numbers ``repro top`` renders.

    Rates are simulated-time rates computed between the last two
    snapshots when possible (the live view), falling back to run-wide
    averages.  SLO burn rows appear when ``slo_spec`` is given.
    """
    from repro.obs.observatory.slo import (
        _merged_latency_histogram,
        evaluate_slo,
    )

    snapshots = [
        r for r in records if r.get("type") == SNAPSHOT_RECORD_TYPE
    ]
    metric_records = latest_metric_records(records)
    closed = any(r.get("type") == CLOSED_RECORD_TYPE for r in records)

    sim_now = snapshots[-1]["sim_now_s"] if snapshots else 0.0
    breaker = snapshots[-1]["breaker_state"] if snapshots else "-"
    queue_depth = snapshots[-1]["queue_depth"] if snapshots else 0

    submitted = _counter_value(metric_records, "serve.submitted")
    statuses = _label_values(metric_records, "serve.responses", "status")
    responded = sum(statuses.values())

    # Between-snapshot rates (per simulated second) when two snapshots
    # exist; otherwise the run-wide average.
    req_rate = shed_rate = None
    if len(snapshots) >= 2:
        prev, last = snapshots[-2], snapshots[-1]
        dt = float(last["sim_now_s"]) - float(prev["sim_now_s"])
        if dt > 0:
            prev_metrics = list(prev.get("metrics") or [])
            last_metrics = list(last.get("metrics") or [])
            d_sub = _counter_value(
                last_metrics, "serve.submitted"
            ) - _counter_value(prev_metrics, "serve.submitted")
            d_shed = _counter_value(
                last_metrics, "serve.responses", {"status": "shed"}
            ) - _counter_value(
                prev_metrics, "serve.responses", {"status": "shed"}
            )
            req_rate = d_sub / dt
            shed_rate = d_shed / dt
    if req_rate is None and sim_now > 0:
        req_rate = submitted / sim_now
        shed_rate = statuses.get("shed", 0.0) / sim_now

    histogram = _merged_latency_histogram(metric_records, None)
    p50 = histogram.quantile(0.5) if histogram is not None else math.nan
    p99 = histogram.quantile(0.99) if histogram is not None else math.nan

    fidelity = _label_values(metric_records, "serve.served", "fidelity")
    tier_calls = _label_values(
        metric_records, "serve.backend.calls", "fidelity"
    )
    tier_seconds = _label_values(
        metric_records, "serve.backend.sim_seconds", "fidelity"
    )

    spmm_calls = _counter_value(metric_records, "spmm.calls")
    spmm_nnz = _counter_value(metric_records, "spmm.nnz")
    spmm_kernel_wall = _counter_value(
        metric_records, "spmm.kernel_wall_seconds"
    )
    spmm_throughput = (
        spmm_nnz / spmm_kernel_wall if spmm_kernel_wall > 0 else math.nan
    )

    slo_report = None
    if slo_spec is not None and metric_records:
        slo_report = evaluate_slo(metric_records, slo_spec)

    return {
        "closed": closed,
        "n_snapshots": len(snapshots),
        "sim_now_s": float(sim_now),
        "breaker_state": breaker,
        "queue_depth": int(queue_depth),
        "submitted": submitted,
        "responded": responded,
        "statuses": statuses,
        "req_rate": req_rate,
        "shed_rate": shed_rate,
        "latency_p50_s": p50,
        "latency_p99_s": p99,
        "fidelity": fidelity,
        "tier_calls": tier_calls,
        "tier_seconds": tier_seconds,
        "spmm_calls": spmm_calls,
        "spmm_nnz": spmm_nnz,
        "spmm_kernel_wall_s": spmm_kernel_wall,
        "spmm_nnz_per_wall_s": spmm_throughput,
        "slo_report": slo_report,
    }


def _fmt(value: float | None, digits: int = 2, suffix: str = "") -> str:
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return "-"
    return f"{value:.{digits}f}{suffix}"


def render_top(frame: dict[str, Any]) -> str:
    """Render one dashboard frame as terminal text."""
    from repro.bench.harness import format_table

    state = "closed" if frame["closed"] else "live"
    lines = [
        f"repro top — {state}, sim t={_fmt(frame['sim_now_s'], 3, 's')},"
        f" snapshots={frame['n_snapshots']}",
        "",
    ]
    statuses = frame["statuses"]
    total = max(frame["responded"], 1.0)
    rows = [
        ["submitted", f"{frame['submitted']:.0f}", _fmt(frame["req_rate"], 2, "/s")],
        *[
            [
                status,
                f"{statuses.get(status, 0.0):.0f}",
                f"{100.0 * statuses.get(status, 0.0) / total:.1f}%",
            ]
            for status in ("served", "shed", "deadline_exceeded", "failed")
        ],
    ]
    lines.append(format_table(["requests", "count", "rate"], rows))
    lines.append("")
    lines.append(
        f"breaker={frame['breaker_state']}  queue_depth={frame['queue_depth']}"
        f"  shed_rate={_fmt(frame['shed_rate'], 2, '/s')}"
        f"  p50={_fmt(frame['latency_p50_s'], 4, 's')}"
        f"  p99={_fmt(frame['latency_p99_s'], 4, 's')}"
    )
    if frame["fidelity"] or frame["tier_calls"]:
        tiers = sorted(
            set(frame["fidelity"]) | set(frame["tier_calls"])
        )
        tier_rows = [
            [
                tier or "?",
                f"{frame['fidelity'].get(tier, 0.0):.0f}",
                f"{frame['tier_calls'].get(tier, 0.0):.0f}",
                _fmt(frame["tier_seconds"].get(tier), 4, "s"),
            ]
            for tier in tiers
        ]
        lines.append("")
        lines.append(
            format_table(
                ["tier", "served", "backend calls", "sim seconds"], tier_rows
            )
        )
    if frame["spmm_calls"] > 0:
        lines.append("")
        lines.append(
            f"spmm: calls={frame['spmm_calls']:.0f}"
            f" nnz={frame['spmm_nnz']:.0f}"
            f" kernel_wall={_fmt(frame['spmm_kernel_wall_s'], 3, 's')}"
            f" throughput={_fmt(frame['spmm_nnz_per_wall_s'], 0, ' nnz/s')}"
        )
    if frame["slo_report"] is not None:
        from repro.obs.observatory.slo import render_slo

        lines.append("")
        lines.append(render_slo(frame["slo_report"]))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus-style exposition
# ---------------------------------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    clean = _PROM_BAD.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _prom_labels(labels: dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(str(k))}="{v}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _prom_exemplar(exemplars: dict[str, Any], index: int) -> str:
    """OpenMetrics exemplar suffix for one bucket line (or "").

    Histogram records carry ``{bucket_index: [[value, trace_id], ...]}``
    newest-first; the newest exemplar is the one exposed, as
    ``... # {trace_id="req-..."} 0.00123``.
    """
    pairs = exemplars.get(str(index)) or []
    if not pairs:
        return ""
    value, trace_id = pairs[0][0], pairs[0][1]
    return f' # {{trace_id="{trace_id}"}} {float(value):g}'


def render_prom(metric_records: list[dict[str, Any]]) -> str:
    """Prometheus text exposition of a set of metric records.

    Counters get the conventional ``_total`` suffix; histograms expand
    to ``_bucket``/``_sum``/``_count`` with cumulative ``le`` buckets.
    Built for the future network front-end's ``/metrics`` endpoint to
    serve verbatim.
    """
    lines: list[str] = []
    seen_types: set[str] = set()
    for record in sorted(
        metric_records,
        key=lambda r: (str(r.get("name", "")), str(r.get("labels", ""))),
    ):
        kind = record.get("kind")
        name = _prom_name(str(record.get("name", "")))
        if not name:
            continue
        labels = record.get("labels") or {}
        if kind == "counter":
            full = f"{name}_total"
            if full not in seen_types:
                lines.append(f"# TYPE {full} counter")
                seen_types.add(full)
            lines.append(
                f"{full}{_prom_labels(labels)} {float(record.get('value', 0.0))}"
            )
        elif kind == "gauge":
            if name not in seen_types:
                lines.append(f"# TYPE {name} gauge")
                seen_types.add(name)
            lines.append(
                f"{name}{_prom_labels(labels)} {float(record.get('value', 0.0))}"
            )
        elif kind == "histogram":
            if name not in seen_types:
                lines.append(f"# TYPE {name} histogram")
                seen_types.add(name)
            bounds = list(record.get("bounds") or [])
            counts = list(record.get("bucket_counts") or [])
            exemplars = record.get("exemplars") or {}
            cumulative = 0.0
            for i, (bound, count) in enumerate(zip(bounds, counts)):
                cumulative += float(count)
                le_labels = dict(labels)
                le_labels["le"] = f"{float(bound):g}"
                lines.append(
                    f"{name}_bucket{_prom_labels(le_labels)} {cumulative:g}"
                    + _prom_exemplar(exemplars, i)
                )
            # Trailing counts beyond the bounds are the +inf overflow.
            cumulative += sum(float(c) for c in counts[len(bounds):])
            inf_labels = dict(labels)
            inf_labels["le"] = "+Inf"
            lines.append(
                f"{name}_bucket{_prom_labels(inf_labels)} {cumulative:g}"
                + _prom_exemplar(exemplars, len(bounds))
            )
            lines.append(
                f"{name}_sum{_prom_labels(labels)}"
                f" {float(record.get('sum', 0.0)):g}"
            )
            lines.append(
                f"{name}_count{_prom_labels(labels)} {cumulative:g}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
