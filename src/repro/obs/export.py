"""Structured telemetry export: JSONL event sink and snapshots.

A telemetry file is a JSON-Lines stream of self-describing records:

- ``{"type": "meta", ...}``        — run metadata (graph, config, version);
- ``{"type": "manifest", ...}``    — the run manifest (git SHA, config
  hash, dataset, seed, sim/wall totals; see
  :mod:`repro.obs.observatory.manifest`);
- ``{"type": "span", ...}``        — one finished tracer span;
- ``{"type": "metric", ...}``      — one counter/gauge/histogram;
- ``{"type": "cost_trace", ...}``  — a named :class:`CostTrace` ledger
  (full float precision, so downstream breakdowns reproduce
  ``CostTrace.breakdown()`` exactly);
- ``{"type": "event", ...}``       — free-form instant events.

:class:`TelemetrySession` bundles one tracer + one registry + metadata
and knows how to serialize the lot; the CLI (``--telemetry-out``), the
bench harness and tests all go through it so every producer emits the
same schema.  ``repro report`` (:mod:`repro.obs.report`) renders the
file back into the Fig. 7(a)-style tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

from repro.memsim.trace import CostTrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanTracer

#: Schema version stamped into every meta record.
TELEMETRY_VERSION = 1


class JsonlSink:
    """Streaming JSON-Lines writer for telemetry records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.n_records = 0

    def emit(self, record: dict[str, Any]) -> None:
        """Append one record (must be JSON-serializable)."""
        if self._handle is None:
            raise ValueError(f"sink {self.path} is closed")
        if "type" not in record:
            raise ValueError(f"telemetry records need a 'type' field: {record}")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.n_records += 1

    def emit_all(self, records: list[dict[str, Any]]) -> None:
        """Append a batch of records."""
        for record in records:
            self.emit(record)

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every record of a telemetry file."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid telemetry record: {exc}"
                ) from exc
    return records


class TelemetrySession:
    """One run's tracer, metrics, ledgers and metadata, exportable.

    Args:
        meta: run metadata serialized into the leading meta record.
        tracer: span tracer to use (a fresh one by default).
        metrics: metrics registry to use (a fresh one by default).
    """

    def __init__(
        self,
        meta: dict[str, Any] | None = None,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.meta = dict(meta or {})
        self._traces: dict[str, CostTrace] = {}
        self._events: list[dict[str, Any]] = []
        self._stream: Any | None = None

    @property
    def stream(self):
        """The live :class:`~repro.obs.live.TelemetryStream`, if any."""
        return self._stream

    def stream_to(self, path: str | Path, flush_every: int = 20):
        """Switch the session into streaming mode.

        Opens a live :class:`~repro.obs.live.TelemetryStream` at
        ``path`` and wires the session to it: the meta record is
        written immediately, every span is appended the moment it
        finishes (via a tracer listener), and events forward as they
        are recorded.  The tracer's ``live_path`` is set so kernel
        executors can point worker processes at sibling stream files.
        Call :meth:`close_stream` for the final metrics + manifest;
        a crash before that still leaves every flushed record behind.
        """
        from repro.obs.live import TelemetryStream

        if self._stream is not None:
            raise ValueError("session is already streaming")
        stream = TelemetryStream(
            path,
            flush_every=flush_every,
            role="coordinator",
            trace_id=self.tracer.trace_id,
        )
        stream.emit(
            {
                "type": "meta",
                "telemetry_version": TELEMETRY_VERSION,
                **self.meta,
            }
        )
        self.tracer.add_listener(lambda span: stream.emit(span.to_record()))
        self.tracer.live_path = str(stream.path)
        self._stream = stream
        return stream

    def close_stream(self) -> Path | None:
        """Finish the live stream: metrics, cost traces, manifest, close.

        Returns the stream path, or None when not streaming.
        """
        if self._stream is None:
            return None
        stream = self._stream
        for record in self.metrics.to_records():
            stream.emit(record)
        for name, trace in sorted(self._traces.items()):
            stream.emit(
                {"type": "cost_trace", "name": name, **trace.to_dict()}
            )
        stream.emit(self.manifest().to_record())
        stream.emit({"type": "stream_closed", "n_records": stream.n_records})
        stream.close()
        self._stream = None
        self.tracer.live_path = None
        return stream.path

    def add_cost_trace(self, name: str, trace: CostTrace) -> None:
        """Attach a named cost ledger (merged if the name repeats)."""
        if name in self._traces:
            self._traces[name].merge(trace)
        else:
            merged = CostTrace()
            merged.merge(trace)
            self._traces[name] = merged

    def cost_trace(self, name: str) -> CostTrace | None:
        """Look up an attached ledger by name."""
        return self._traces.get(name)

    def event(self, name: str, **fields: Any) -> None:
        """Record a free-form instant event (forwarded live if streaming)."""
        record = {
            "type": "event",
            "name": name,
            "sim_cursor": self.tracer.sim_cursor,
            **fields,
        }
        self._events.append(record)
        if self._stream is not None:
            self._stream.emit(record)
            self._stream.flush()

    def manifest(self):
        """The run manifest of this session's current state.

        Computed fresh on every call (the identity includes the span
        and metric counts plus the sim total, all of which grow as the
        run progresses).
        """
        # Imported lazily: the observatory is pure post-processing on
        # top of this module and imports it back.
        from repro.obs.observatory.manifest import build_manifest

        return build_manifest(
            self.meta,
            self.tracer.to_records(),
            self.metrics.to_records(),
            self._events,
            sim_seconds_total=self.tracer.sim_cursor,
        )

    def records(self) -> list[dict[str, Any]]:
        """All records of this session: meta, then the run manifest."""
        out: list[dict[str, Any]] = [
            {
                "type": "meta",
                "telemetry_version": TELEMETRY_VERSION,
                **self.meta,
            },
            self.manifest().to_record(),
        ]
        out.extend(self.tracer.to_records())
        out.extend(self.metrics.to_records())
        for name, trace in sorted(self._traces.items()):
            out.append({"type": "cost_trace", "name": name, **trace.to_dict()})
        out.extend(self._events)
        return out

    def snapshot(self) -> dict[str, Any]:
        """In-memory dict form: spans, metric values, ledger breakdowns."""
        return {
            "meta": dict(self.meta),
            "spans": self.tracer.to_records(),
            "metrics": self.metrics.snapshot(),
            "cost_traces": {
                name: trace.to_dict() for name, trace in sorted(self._traces.items())
            },
            "events": list(self._events),
        }

    def save(self, path: str | Path) -> Path:
        """Write the session as a JSONL telemetry file."""
        path = Path(path)
        with JsonlSink(path) as sink:
            sink.emit_all(self.records())
        return path
