"""Render a telemetry file back into the paper's breakdown tables.

``repro report <trace.jsonl>`` prints, from the records alone:

1. the span tree (sim + wall seconds per pipeline stage);
2. the top-N hot spans by simulated *self* time, from the observatory's
   hierarchical profile aggregator (see ``repro profile`` for the full
   collapsed-stack export);
3. the Fig. 7(a) SpMM step decomposition — the five Algorithm 1 steps
   with their share of SpMM time, reproduced from the exported
   :class:`~repro.memsim.trace.CostTrace` at full float precision;
4. auxiliary simulated costs (allocation, prefetch maintenance,
   streaming, NaDP merges) with their share of total simulated time —
   the §IV-C/§IV-D overhead accounting;
5. counters/gauges and histogram summaries.

Every renderer tolerates adversarial inputs — empty record lists,
records with missing keys, mixed-schema streams — by substituting
defaults rather than raising; a telemetry file should always render
*something*.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.memsim.trace import SPMM_CATEGORIES, CostTrace
from repro.obs.export import read_jsonl


def _formatters() -> tuple[Callable, Callable]:
    # Imported lazily: repro.bench's package __init__ pulls in the core
    # engine, which itself imports repro.obs for instrumentation.
    from repro.bench.harness import format_seconds, format_table

    return format_seconds, format_table


def split_records(
    records: list[dict[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Group records by their ``type`` field."""
    groups: dict[str, list[dict[str, Any]]] = {
        "meta": [],
        "manifest": [],
        "span": [],
        "metric": [],
        "cost_trace": [],
        "event": [],
    }
    for record in records:
        groups.setdefault(record.get("type", "unknown"), []).append(record)
    return groups


def merged_cost_trace(records: list[dict[str, Any]]) -> CostTrace:
    """Fold every exported cost ledger into one trace.

    Falls back to leaf spans named after the Algorithm 1 steps when no
    ``cost_trace`` record is present (e.g. a tracer-only producer).
    """
    groups = split_records(records)
    merged = CostTrace()
    if groups["cost_trace"]:
        for record in groups["cost_trace"]:
            merged.merge(CostTrace.from_dict(record))
        return merged
    for span in groups["span"]:
        name = span.get("name")
        if name in SPMM_CATEGORIES:
            merged.charge(
                name,
                max(0.0, float(span.get("sim_seconds", 0.0) or 0.0)),
                (span.get("attributes") or {}).get("nbytes", 0.0),
            )
    return merged


def spmm_step_breakdown(records: list[dict[str, Any]]) -> dict[str, float]:
    """Per-step simulated seconds of the five Algorithm 1 categories."""
    trace = merged_cost_trace(records)
    return {category: trace.seconds(category) for category in SPMM_CATEGORIES}


def _span_tree_table(spans: list[dict[str, Any]]) -> str:
    format_seconds, format_table = _formatters()
    rows = []
    for span in spans:
        depth = span.get("depth", 0)
        indent = "  " * (depth if isinstance(depth, int) and depth > 0 else 0)
        marker = " !" if span.get("status") == "error" else ""
        rows.append(
            [
                f"{indent}{span.get('name', '<unnamed>')}{marker}",
                format_seconds(float(span.get("sim_seconds", 0.0) or 0.0)),
                format_seconds(float(span.get("wall_seconds", 0.0) or 0.0)),
            ]
        )
    return format_table(["span", "sim", "wall"], rows, title="Pipeline spans")


def _hot_span_table(spans: list[dict[str, Any]], top_n: int = 10) -> str:
    """Top-N spans by simulated self time (the profile aggregator's view)."""
    from repro.obs.observatory.profile import build_profile, hot_spans

    format_seconds, format_table = _formatters()
    nodes = hot_spans(build_profile(spans), top_n=top_n)
    rows = [
        [
            ";".join(node.path[1:]),  # drop the synthetic root
            node.calls,
            format_seconds(node.sim_self),
            format_seconds(node.sim_total),
            format_seconds(node.wall_self),
        ]
        for node in nodes
        if node.sim_self > 0.0 or node.wall_self > 0.0
    ]
    if not rows:
        return ""
    return format_table(
        ["span path", "calls", "sim self", "sim total", "wall self"],
        rows,
        title=f"Hot spans (top {len(rows)} by simulated self time)",
    )


def _breakdown_tables(trace: CostTrace) -> list[str]:
    format_seconds, format_table = _formatters()
    tables = []
    spmm_total = sum(trace.seconds(c) for c in SPMM_CATEGORIES)
    if spmm_total > 0.0:
        rows = [
            [
                category,
                f"{trace.seconds(category):.9e}",
                format_seconds(trace.seconds(category)),
                f"{trace.seconds(category) / spmm_total * 100:.1f}%",
            ]
            for category in SPMM_CATEGORIES
        ]
        rows.append(["total", f"{spmm_total:.9e}", format_seconds(spmm_total), "100.0%"])
        tables.append(
            format_table(
                ["step", "sim seconds", "sim", "share of SpMM"],
                rows,
                title="SpMM step breakdown (Fig. 7a)",
            )
        )
    others = {
        category: seconds
        for category, seconds in trace.breakdown().items()
        if category not in SPMM_CATEGORIES
    }
    total = trace.total_seconds
    if others and total > 0.0:
        rows = [
            [
                category,
                f"{seconds:.9e}",
                format_seconds(seconds),
                f"{seconds / total * 100:.2f}%",
            ]
            for category, seconds in sorted(others.items(), key=lambda kv: -kv[1])
        ]
        tables.append(
            format_table(
                ["category", "sim seconds", "sim", "share of total"],
                rows,
                title="Auxiliary simulated costs (§IV-C/§IV-D)",
            )
        )
    return tables


def _metric_tables(metrics: list[dict[str, Any]]) -> list[str]:
    _, format_table = _formatters()

    def label_suffix(record: dict[str, Any]) -> str:
        labels = record.get("labels") or {}
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{{{inner}}}"

    tables = []
    scalars = [m for m in metrics if m.get("kind") in ("counter", "gauge")]
    if scalars:
        rows = [
            [
                f"{m.get('name', '<unnamed>')}{label_suffix(m)}",
                m.get("kind"),
                f"{float(m.get('value', 0.0) or 0.0):.6g}",
            ]
            for m in scalars
        ]
        tables.append(format_table(["metric", "kind", "value"], rows, "Metrics"))
    histograms = [m for m in metrics if m.get("kind") == "histogram"]
    if histograms:
        rows = []
        for m in histograms:
            count = m.get("count", 0) or 0
            mean = float(m.get("sum", 0.0) or 0.0) / count if count else 0.0
            rows.append(
                [
                    f"{m.get('name', '<unnamed>')}{label_suffix(m)}",
                    count,
                    f"{mean:.6g}",
                    f"{m['min']:.6g}" if m.get("min") is not None else "-",
                    f"{m['max']:.6g}" if m.get("max") is not None else "-",
                ]
            )
        tables.append(
            format_table(
                ["histogram", "count", "mean", "min", "max"], rows, "Histograms"
            )
        )
    return tables


def render_report(records: list[dict[str, Any]]) -> str:
    """Render the full plain-text report from telemetry records."""
    groups = split_records(records)
    sections: list[str] = []
    header_sections = 0
    for meta in groups["meta"]:
        fields = ", ".join(
            f"{k}={v}" for k, v in sorted(meta.items()) if k != "type"
        )
        sections.append(f"telemetry: {fields}")
        header_sections += 1
    for manifest in groups["manifest"]:
        sections.append(
            "manifest: run {run} @ {sha} (config {cfg}, dataset {ds},"
            " sim total {sim:.6g} s)".format(
                run=manifest.get("run_id", "?"),
                sha=manifest.get("git_sha", "?"),
                cfg=manifest.get("config_hash", "?"),
                ds=manifest.get("dataset") or "-",
                sim=float(manifest.get("sim_seconds_total", 0.0) or 0.0),
            )
        )
        header_sections += 1
    if groups["span"]:
        sections.append(_span_tree_table(groups["span"]))
        hot = _hot_span_table(groups["span"])
        if hot:
            sections.append(hot)
    sections.extend(_breakdown_tables(merged_cost_trace(records)))
    sections.extend(_metric_tables(groups["metric"]))
    if groups["event"]:
        sections.append(f"{len(groups['event'])} event(s) recorded")
    if len(sections) <= header_sections:
        sections.append("telemetry file contains no spans, metrics or ledgers")
    return "\n\n".join(sections)


def render_report_file(path: str | Path) -> str:
    """Load a telemetry JSONL file and render its report.

    Live streams load through :func:`repro.obs.live.load_records`, so a
    stream that was cut mid-run (torn last line, sibling worker files)
    still renders instead of raising.
    """
    from repro.obs.live import load_records

    return render_report(load_records(path))
