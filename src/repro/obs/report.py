"""Render a telemetry file back into the paper's breakdown tables.

``repro report <trace.jsonl>`` prints, from the records alone:

1. the span tree (sim + wall seconds per pipeline stage);
2. the Fig. 7(a) SpMM step decomposition — the five Algorithm 1 steps
   with their share of SpMM time, reproduced from the exported
   :class:`~repro.memsim.trace.CostTrace` at full float precision;
3. auxiliary simulated costs (allocation, prefetch maintenance,
   streaming, NaDP merges) with their share of total simulated time —
   the §IV-C/§IV-D overhead accounting;
4. counters/gauges and histogram summaries.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.memsim.trace import SPMM_CATEGORIES, CostTrace
from repro.obs.export import read_jsonl


def _formatters() -> tuple[Callable, Callable]:
    # Imported lazily: repro.bench's package __init__ pulls in the core
    # engine, which itself imports repro.obs for instrumentation.
    from repro.bench.harness import format_seconds, format_table

    return format_seconds, format_table


def split_records(
    records: list[dict[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Group records by their ``type`` field."""
    groups: dict[str, list[dict[str, Any]]] = {
        "meta": [],
        "span": [],
        "metric": [],
        "cost_trace": [],
        "event": [],
    }
    for record in records:
        groups.setdefault(record.get("type", "unknown"), []).append(record)
    return groups


def merged_cost_trace(records: list[dict[str, Any]]) -> CostTrace:
    """Fold every exported cost ledger into one trace.

    Falls back to leaf spans named after the Algorithm 1 steps when no
    ``cost_trace`` record is present (e.g. a tracer-only producer).
    """
    groups = split_records(records)
    merged = CostTrace()
    if groups["cost_trace"]:
        for record in groups["cost_trace"]:
            merged.merge(CostTrace.from_dict(record))
        return merged
    for span in groups["span"]:
        if span["name"] in SPMM_CATEGORIES:
            merged.charge(
                span["name"],
                span["sim_seconds"],
                span.get("attributes", {}).get("nbytes", 0.0),
            )
    return merged


def spmm_step_breakdown(records: list[dict[str, Any]]) -> dict[str, float]:
    """Per-step simulated seconds of the five Algorithm 1 categories."""
    trace = merged_cost_trace(records)
    return {category: trace.seconds(category) for category in SPMM_CATEGORIES}


def _span_tree_table(spans: list[dict[str, Any]]) -> str:
    format_seconds, format_table = _formatters()
    rows = []
    for span in spans:
        indent = "  " * span.get("depth", 0)
        marker = " !" if span.get("status") == "error" else ""
        rows.append(
            [
                f"{indent}{span['name']}{marker}",
                format_seconds(span["sim_seconds"]),
                format_seconds(span["wall_seconds"]),
            ]
        )
    return format_table(["span", "sim", "wall"], rows, title="Pipeline spans")


def _breakdown_tables(trace: CostTrace) -> list[str]:
    format_seconds, format_table = _formatters()
    tables = []
    spmm_total = sum(trace.seconds(c) for c in SPMM_CATEGORIES)
    if spmm_total > 0.0:
        rows = [
            [
                category,
                f"{trace.seconds(category):.9e}",
                format_seconds(trace.seconds(category)),
                f"{trace.seconds(category) / spmm_total * 100:.1f}%",
            ]
            for category in SPMM_CATEGORIES
        ]
        rows.append(["total", f"{spmm_total:.9e}", format_seconds(spmm_total), "100.0%"])
        tables.append(
            format_table(
                ["step", "sim seconds", "sim", "share of SpMM"],
                rows,
                title="SpMM step breakdown (Fig. 7a)",
            )
        )
    others = {
        category: seconds
        for category, seconds in trace.breakdown().items()
        if category not in SPMM_CATEGORIES
    }
    total = trace.total_seconds
    if others and total > 0.0:
        rows = [
            [
                category,
                f"{seconds:.9e}",
                format_seconds(seconds),
                f"{seconds / total * 100:.2f}%",
            ]
            for category, seconds in sorted(others.items(), key=lambda kv: -kv[1])
        ]
        tables.append(
            format_table(
                ["category", "sim seconds", "sim", "share of total"],
                rows,
                title="Auxiliary simulated costs (§IV-C/§IV-D)",
            )
        )
    return tables


def _metric_tables(metrics: list[dict[str, Any]]) -> list[str]:
    _, format_table = _formatters()

    def label_suffix(record: dict[str, Any]) -> str:
        labels = record.get("labels") or {}
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{{{inner}}}"

    tables = []
    scalars = [m for m in metrics if m["kind"] in ("counter", "gauge")]
    if scalars:
        rows = [
            [
                f"{m['name']}{label_suffix(m)}",
                m["kind"],
                f"{m['value']:.6g}",
            ]
            for m in scalars
        ]
        tables.append(format_table(["metric", "kind", "value"], rows, "Metrics"))
    histograms = [m for m in metrics if m["kind"] == "histogram"]
    if histograms:
        rows = []
        for m in histograms:
            count = m["count"]
            mean = m["sum"] / count if count else 0.0
            rows.append(
                [
                    f"{m['name']}{label_suffix(m)}",
                    count,
                    f"{mean:.6g}",
                    f"{m['min']:.6g}" if m["min"] is not None else "-",
                    f"{m['max']:.6g}" if m["max"] is not None else "-",
                ]
            )
        tables.append(
            format_table(
                ["histogram", "count", "mean", "min", "max"], rows, "Histograms"
            )
        )
    return tables


def render_report(records: list[dict[str, Any]]) -> str:
    """Render the full plain-text report from telemetry records."""
    groups = split_records(records)
    sections: list[str] = []
    for meta in groups["meta"]:
        fields = ", ".join(
            f"{k}={v}" for k, v in sorted(meta.items()) if k != "type"
        )
        sections.append(f"telemetry: {fields}")
    if groups["span"]:
        sections.append(_span_tree_table(groups["span"]))
    sections.extend(_breakdown_tables(merged_cost_trace(records)))
    sections.extend(_metric_tables(groups["metric"]))
    if groups["event"]:
        sections.append(f"{len(groups['event'])} event(s) recorded")
    if len(sections) <= (1 if groups["meta"] else 0):
        sections.append("telemetry file contains no spans, metrics or ledgers")
    return "\n\n".join(sections)


def render_report_file(path: str | Path) -> str:
    """Load a telemetry JSONL file and render its report."""
    return render_report(read_jsonl(path))
