"""Observability: span tracing, metrics and structured telemetry export.

The simulator's cost ledgers (:mod:`repro.memsim.trace`) answer *how
much* simulated time each operation category consumed; this subpackage
adds the *where* and *when*:

- :mod:`repro.obs.tracer` — nested spans carrying both simulated and
  wall-clock durations, with context-manager and decorator APIs;
- :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms for non-timing telemetry (WoFP hits, allocated bytes,
  partition entropy, streaming exposure);
- :mod:`repro.obs.export` — the JSONL event sink, snapshot exporter and
  :class:`TelemetrySession` bundle shared by the CLI and benches;
- :mod:`repro.obs.live` — the live telemetry layer: crash-tolerant
  streaming JSONL (:class:`TelemetryStream`), cross-process trace
  propagation (:class:`TraceContext`, worker partition spans),
  multi-stream merging and the ``repro top`` ops view;
- :mod:`repro.obs.forensics` — per-request tail-latency forensics:
  causal trees on the live bus, critical-path blame attribution whose
  categories sum exactly to the simulated latency, bounded exemplar
  reservoirs and incident linkage (``repro why`` / ``repro
  attribute``);
- :mod:`repro.obs.report` — renders a telemetry file back into the
  Fig. 7(a)-style breakdown tables (``repro report``);
- :mod:`repro.obs.observatory` — cross-run analysis: run manifests, the
  content-addressed baseline store, telemetry diffing, flamegraph
  profiles, SLO evaluation and the CI perf-regression gate
  (``repro diff`` / ``profile`` / ``perf-gate``, ``serve-sim --slo``).
"""

from repro.obs.export import (
    JsonlSink,
    TELEMETRY_VERSION,
    TelemetrySession,
    read_jsonl,
)
from repro.obs.forensics import (
    ExemplarReservoir,
    ForensicsReport,
    RequestTree,
    fold_stream,
    render_waterfall,
)
from repro.obs.live import (
    StreamFollower,
    TelemetryStream,
    TraceContext,
    load_records,
    merge_streams,
    read_stream,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    merged_cost_trace,
    render_report,
    render_report_file,
    spmm_step_breakdown,
    split_records,
)
from repro.obs.observatory import (
    BaselineStore,
    RunManifest,
    SLOSpec,
    build_profile,
    collapsed_stacks,
    diff_runs,
    evaluate_slo,
    hot_spans,
    manifest_from_records,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "BaselineStore",
    "RunManifest",
    "SLOSpec",
    "build_profile",
    "collapsed_stacks",
    "diff_runs",
    "evaluate_slo",
    "hot_spans",
    "manifest_from_records",
    "Counter",
    "DEFAULT_BUCKETS",
    "ExemplarReservoir",
    "ForensicsReport",
    "RequestTree",
    "fold_stream",
    "render_waterfall",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanTracer",
    "StreamFollower",
    "TELEMETRY_VERSION",
    "TelemetrySession",
    "TelemetryStream",
    "TraceContext",
    "load_records",
    "merge_streams",
    "merged_cost_trace",
    "read_jsonl",
    "read_stream",
    "render_report",
    "render_report_file",
    "spmm_step_breakdown",
    "split_records",
]
