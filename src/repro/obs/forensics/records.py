"""Forensic span records: the wire shape of per-request causal trees.

Every request the server resolves becomes a small batch of
``forensic_span`` records on the live bus — a root ``request`` node plus
one child per causal step (queue wait, each degradation rung attempted,
per-shard gather rungs, stall burns).  Each node carries the blame
*category* its simulated seconds are charged to, so the tree is not just
a timeline: summing the categorized node durations reconstructs the
request's total simulated latency exactly (the critical-path invariant
``repro why`` and the forensics CI job assert).

The :class:`RequestForensics` collector is the server-side producer: it
rides along ``EmbeddingServer._handle`` / ``_serve_ladder``, observing
every ``clock.advance`` the request pays for, and serializes to records
at response time.  It never changes a simulated cost — forensics is a
read-only shadow of the event loop.
"""

from __future__ import annotations

import itertools
import os
from typing import Any

#: Blame categories, matching the paper's Fig. 13 tail-latency
#: decomposition (see DESIGN §6f).  Every simulated second of a
#: request's latency lands in exactly one bucket.
BLAME_QUEUE = "queue"
BLAME_BREAKER = "breaker"
BLAME_SHARD_HEDGE = "shard_hedge"
BLAME_STALE_FALLBACK = "stale_fallback"
BLAME_KERNEL = "kernel"
BLAME_CHECKPOINTER = "checkpointer"
BLAME_CATEGORIES = (
    BLAME_QUEUE,
    BLAME_BREAKER,
    BLAME_SHARD_HEDGE,
    BLAME_STALE_FALLBACK,
    BLAME_KERNEL,
    BLAME_CHECKPOINTER,
)

#: Record type of one causal-tree node on the live bus.
FORENSIC_RECORD_TYPE = "forensic_span"

#: Name of the root node of every request tree.
ROOT_NODE = "request"

_UID_COUNTER = itertools.count()


def next_forensic_uid() -> str:
    """Process-unique id for one forensic node.

    Multi-process merges (:func:`repro.obs.live.merge_streams`) dedup on
    this, exactly like worker ``span`` payloads dedup on their
    ``attributes.uid``.
    """
    return f"f{os.getpid()}-{next(_UID_COUNTER)}"


class RequestForensics:
    """Per-request causal collector riding the serving event loop.

    The server creates one per handled request, calls the ``record_*``
    hooks at every site that advances the virtual clock on the
    request's behalf, and finally serializes the tree with
    :meth:`to_records`.  ``blame`` accumulates the same seconds bucketed
    by category; its values always sum to the seconds the hooks saw,
    which (queue wait included) is the request's end-to-end simulated
    latency.
    """

    __slots__ = (
        "request_id",
        "klass",
        "arrival_s",
        "deadline_s",
        "n_nodes",
        "blame",
        "refresh_overlap_s",
        "lookup_seqs",
        "partial",
        "_nodes",
        "_rung_uid",
    )

    def __init__(
        self,
        request_id: str,
        klass: str,
        arrival_s: float,
        deadline_s: float,
        n_nodes: int = 0,
    ) -> None:
        self.request_id = request_id
        self.klass = klass
        self.arrival_s = arrival_s
        self.deadline_s = deadline_s
        self.n_nodes = n_nodes
        self.blame: dict[str, float] = {}
        #: Background-checkpointer seconds that overlapped this request's
        #: gathers.  Off the request clock by design (see
        #: ``repro.shard.refresh``), so it is an annotation, not blame —
        #: the ``checkpointer`` blame bucket stays 0 in simulation and
        #: exists so the taxonomy is stable when a wall-clock front-end
        #: starts charging it.
        self.refresh_overlap_s = 0.0
        #: Store lookup sequence numbers this request's gathers used —
        #: the coordinate incident records are joined on.
        self.lookup_seqs: list[int] = []
        #: True when the collector missed part of the request's life
        #: (an unhandled exception tore the handler): the tree is still
        #: emitted, but exempt from the blame-sum invariant.
        self.partial = False
        #: Flat child-node list: (name, category, sim_start, sim_seconds,
        #: attributes, parent_is_rung).
        self._nodes: list[tuple[str, str | None, float, float, dict, bool]] = []
        self._rung_uid: bool = False

    # -- producer hooks ---------------------------------------------------

    def _charge(self, category: str, seconds: float) -> None:
        if seconds:
            self.blame[category] = self.blame.get(category, 0.0) + seconds

    def begin_handling(self, now: float) -> None:
        """Dequeue moment: everything before it is admission-queue wait."""
        wait = max(0.0, now - self.arrival_s)
        self._charge(BLAME_QUEUE, wait)
        if wait > 0.0:
            self._nodes.append(
                ("queue_wait", BLAME_QUEUE, self.arrival_s, wait, {}, False)
            )

    def record_skip(self, rung: str, reason: str, now: float) -> None:
        """A rung skipped for free (deadline prediction / open breaker /
        partial shard result) — zero cost, but part of the causal path."""
        self._nodes.append(
            (
                f"rung:{rung}",
                None,
                now,
                0.0,
                {"outcome": "skipped", "reason": reason},
                False,
            )
        )

    def record_stall(self, rung: str, seconds: float, now: float) -> None:
        """A compute call hung past its budget: the budget was burned
        waiting, then the call was abandoned (a breaker failure)."""
        self._charge(BLAME_BREAKER, seconds)
        self._nodes.append(
            (
                f"rung:{rung}",
                None,
                now,
                seconds,
                {"outcome": "stall_abandoned"},
                False,
            )
        )
        self._nodes.append(
            ("stall_burn", BLAME_BREAKER, now, seconds, {}, True)
        )

    def record_backend(self, rung: str, response: Any, now: float) -> None:
        """The rung that served: unpack the backend's cost breakdown.

        ``response.breakdown`` values sum exactly to
        ``response.sim_seconds`` by construction (the backend builds the
        kernel share as the residual), so charging them individually
        preserves the sum invariant.
        """
        total = float(response.sim_seconds)
        breakdown = getattr(response, "breakdown", None)
        if not breakdown:
            # A backend that predates breakdowns: the whole cost is the
            # tier call itself.
            category = (
                BLAME_STALE_FALLBACK if rung == "stale" else BLAME_KERNEL
            )
            breakdown = {category: total}
        attrs: dict[str, Any] = {"outcome": "served"}
        seq = getattr(response, "lookup_seq", None)
        if seq is not None:
            attrs["seq"] = int(seq)
            self.lookup_seqs.append(int(seq))
        refresh = float(getattr(response, "refresh_overlap_s", 0.0) or 0.0)
        if refresh > 0.0:
            attrs["refresh_overlap_s"] = refresh
            self.refresh_overlap_s += refresh
            self.blame.setdefault(BLAME_CHECKPOINTER, 0.0)
        stale_rows = int(getattr(response, "stale_rows", 0) or 0)
        if stale_rows:
            attrs["stale_rows"] = stale_rows
        self._nodes.append((f"rung:{rung}", None, now, total, attrs, False))
        # Children of the rung node, laid out sequentially inside the
        # rung's advance window so the waterfall has real extents.
        cursor = now
        for category, seconds in breakdown.items():
            self._charge(category, float(seconds))
        shard_details = tuple(getattr(response, "shard_details", ()) or ())
        non_shard = dict(breakdown)
        if shard_details:
            # Per-shard nodes replace the aggregate gather shares: the
            # kernel residual keeps only the compute+fresh-gather part
            # not itemized per shard.
            itemized = sum(float(d["sim_seconds"]) for d in shard_details)
            non_shard[BLAME_KERNEL] = (
                non_shard.get(BLAME_KERNEL, 0.0)
                - sum(
                    float(d["sim_seconds"])
                    for d in shard_details
                    if not d.get("stale")
                )
            )
            non_shard.pop(BLAME_SHARD_HEDGE, None)
            del itemized
        for category, seconds in non_shard.items():
            seconds = float(seconds)
            if seconds <= 0.0:
                continue
            name = {
                BLAME_KERNEL: "kernel",
                BLAME_BREAKER: "stall_absorbed",
                BLAME_STALE_FALLBACK: "stale_read",
            }.get(category, category)
            self._nodes.append((name, category, cursor, seconds, {}, True))
            cursor += seconds
        for detail in shard_details:
            seconds = float(detail["sim_seconds"])
            stale = bool(detail.get("stale"))
            shard_attrs = {
                "shard": int(detail["shard"]),
                "status": detail.get("status"),
                "rows": int(detail.get("rows", 0)),
            }
            penalty = float(detail.get("hedge_penalty_s", 0.0) or 0.0)
            if penalty:
                shard_attrs["hedge_penalty_s"] = penalty
            if seq is not None:
                shard_attrs["seq"] = int(seq)
            self._nodes.append(
                (
                    f"shard:{detail['shard']}",
                    BLAME_SHARD_HEDGE if stale else BLAME_KERNEL,
                    cursor,
                    seconds,
                    shard_attrs,
                    True,
                )
            )
            cursor += seconds

    # -- serialization ----------------------------------------------------

    def to_records(
        self,
        trace_id: str,
        status: str,
        fidelity: str | None,
        completed_s: float | None,
    ) -> list[dict[str, Any]]:
        """Serialize the tree: root first, then children in causal order.

        Children of rung nodes point at the most recent rung's uid, so
        the reconstructed tree is request -> rungs -> (kernel / stall /
        shard) leaves.
        """
        root_uid = next_forensic_uid()
        latency = (
            completed_s - self.arrival_s if completed_s is not None else None
        )
        root: dict[str, Any] = {
            "type": FORENSIC_RECORD_TYPE,
            "trace_id": trace_id,
            "uid": root_uid,
            "parent_uid": None,
            "name": ROOT_NODE,
            "category": None,
            "sim_start": self.arrival_s,
            "sim_seconds": latency if latency is not None else 0.0,
            "attributes": {
                "request_id": self.request_id,
                "klass": self.klass,
                "status": status,
                "fidelity": fidelity,
                "arrival_s": self.arrival_s,
                "deadline_s": self.deadline_s,
                "n_nodes": self.n_nodes,
                "blame": dict(self.blame),
                "lookup_seqs": list(self.lookup_seqs),
                "refresh_overlap_s": self.refresh_overlap_s,
            },
        }
        if self.partial:
            root["attributes"]["partial"] = True
        records = [root]
        rung_uid = root_uid
        for name, category, start, seconds, attrs, under_rung in self._nodes:
            uid = next_forensic_uid()
            records.append(
                {
                    "type": FORENSIC_RECORD_TYPE,
                    "trace_id": trace_id,
                    "uid": uid,
                    "parent_uid": rung_uid if under_rung else root_uid,
                    "name": name,
                    "category": category,
                    "sim_start": start,
                    "sim_seconds": seconds,
                    "attributes": dict(attrs),
                }
            )
            if name.startswith("rung:"):
                rung_uid = uid
        return records
