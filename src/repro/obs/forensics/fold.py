"""Folding a telemetry stream into a forensics report.

One pass over the records: request trees are assembled batch-by-batch
(the server emits each request's ``forensic_span`` records
contiguously, root first), offered to the bounded
:class:`~repro.obs.forensics.reservoir.ExemplarReservoir`, and either
retained in full or reduced to their root summary.  Aggregate blame
attribution covers *every* request, not just the retained exemplars —
the reservoir bounds tree memory, never the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.forensics.blame import (
    blame_fractions,
    blame_total,
    merge_blame,
    verify_tree,
)
from repro.obs.forensics.records import FORENSIC_RECORD_TYPE, ROOT_NODE
from repro.obs.forensics.reservoir import ExemplarReservoir
from repro.obs.forensics.tree import (
    INCIDENT_EVENTS,
    RequestTree,
    build_tree,
    graft_partition_spans,
    incident_overlaps,
    join_incidents,
)

#: Response statuses that carry a latency (everything but shed).
_COMPLETED = ("served", "deadline_exceeded", "failed")


@dataclass
class ForensicsReport:
    """Everything ``repro why`` / ``repro attribute`` render."""

    #: Fully retained trees (reservoir exemplars + force-kept traces).
    trees: dict[str, RequestTree] = field(default_factory=dict)
    #: Root summary of every request seen:
    #: ``{trace_id: {klass, status, fidelity, latency_s, blame, ...}}``.
    summaries: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Per-class blame seconds across all requests.
    attribution: dict[str, dict[str, float]] = field(default_factory=dict)
    incidents: list[dict[str, Any]] = field(default_factory=list)
    reservoir: ExemplarReservoir = field(default_factory=ExemplarReservoir)
    #: Background-checkpointer seconds that overlapped request gathers
    #: (off the request clock; per-class annotation next to the table).
    refresh_overlap: dict[str, float] = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return len(self.summaries)

    def find(self, trace_id: str) -> RequestTree | None:
        return self.trees.get(trace_id)

    def worst(self, n: int, klass: str | None = None) -> list[RequestTree]:
        """Slowest retained exemplars, slowest first."""
        out = []
        for trace_id in self.reservoir.worst(klass):
            tree = self.trees.get(trace_id)
            if tree is not None and tree not in out:
                out.append(tree)
            if len(out) >= n:
                break
        return out

    def fractions(self) -> dict[str, dict[str, float]]:
        """Per-class blame fractions of the aggregate attribution."""
        return {
            klass: blame_fractions(blame)
            for klass, blame in sorted(self.attribution.items())
        }

    def verify(self, rel_tol: float = 1e-9) -> list[dict[str, Any]]:
        """Sum-invariant violations across every request and exemplar."""
        import math

        violations = [
            {
                "trace_id": trace_id,
                "klass": summary["klass"],
                "status": summary["status"],
                "latency_s": summary["latency_s"],
                "blame_total_s": blame_total(summary["blame"]),
                "error_s": blame_total(summary["blame"])
                - summary["latency_s"],
            }
            for trace_id, summary in self.summaries.items()
            if summary["status"] in _COMPLETED
            and not summary.get("partial")
            and not math.isclose(
                blame_total(summary["blame"]),
                summary["latency_s"],
                rel_tol=rel_tol,
                abs_tol=1e-15,
            )
        ]
        for tree in self.trees.values():
            if tree.root.attributes.get("partial"):
                continue
            violation = verify_tree(tree, rel_tol)
            if violation is not None and not any(
                v["trace_id"] == violation["trace_id"] for v in violations
            ):
                violations.append(violation)
        return violations

    def to_payload(self) -> dict[str, Any]:
        """JSON-able view for ``repro attribute --format json`` and CI."""
        return {
            "n_requests": self.n_requests,
            "n_exemplars": len(self.trees),
            "n_incidents": len(self.incidents),
            "attribution_s": {
                klass: dict(sorted(blame.items()))
                for klass, blame in sorted(self.attribution.items())
            },
            "fractions": self.fractions(),
            "refresh_overlap_s": dict(sorted(self.refresh_overlap.items())),
            "exemplars": {
                trace_id: {
                    "klass": tree.klass,
                    "status": tree.status,
                    "latency_s": tree.latency_s,
                    "blame": tree.blame,
                    "incidents": len(tree.incidents),
                }
                for trace_id, tree in sorted(self.trees.items())
            },
        }


def fold_stream(
    records: Iterable[dict[str, Any]],
    worst_k: int = 8,
    sample_k: int = 8,
    seed: int = 0,
    keep: tuple[str, ...] = (),
) -> ForensicsReport:
    """Fold stream records into a :class:`ForensicsReport`.

    ``keep`` force-retains specific trace ids regardless of the
    reservoir's verdict (the ``repro why <trace_id>`` path).
    """
    reservoir = ExemplarReservoir(worst_k=worst_k, sample_k=sample_k, seed=seed)
    report = ForensicsReport(reservoir=reservoir)
    keep_set = set(keep)
    buffers: dict[str, list[dict[str, Any]]] = {}
    open_trace: str | None = None
    partition_spans: list[dict[str, Any]] = []

    def finalize(trace_id: str) -> None:
        spans = buffers.pop(trace_id, None)
        if not spans:
            return
        tree = build_tree(spans)
        if tree is None:
            return
        summary = {
            "klass": tree.klass,
            "status": tree.status,
            "fidelity": tree.root.attributes.get("fidelity"),
            "latency_s": tree.latency_s,
            "blame": tree.blame,
            "arrival_s": tree.arrival_s,
            "deadline_s": tree.deadline_s,
            "lookup_seqs": tree.lookup_seqs,
            "partial": bool(tree.root.attributes.get("partial")),
        }
        report.summaries[trace_id] = summary
        merge_blame(report.attribution, tree.klass, tree.blame)
        overlap = float(
            tree.root.attributes.get("refresh_overlap_s", 0.0) or 0.0
        )
        if overlap:
            report.refresh_overlap[tree.klass] = (
                report.refresh_overlap.get(tree.klass, 0.0) + overlap
            )
        if summary["status"] in _COMPLETED:
            reservoir.offer(trace_id, tree.klass, tree.latency_s)
        report.trees[trace_id] = tree
        retained = reservoir.retained() | keep_set
        for stale_id in [t for t in report.trees if t not in retained]:
            del report.trees[stale_id]

    for record in records:
        kind = record.get("type")
        if kind == FORENSIC_RECORD_TYPE:
            trace_id = str(record.get("trace_id"))
            if record.get("name") == ROOT_NODE and trace_id != open_trace:
                if open_trace is not None:
                    finalize(open_trace)
                open_trace = trace_id
            buffers.setdefault(trace_id, []).append(record)
        elif kind == "shard_event" and record.get("event") in INCIDENT_EVENTS:
            report.incidents.append(record)
        elif (
            kind == "span"
            and record.get("name") == "spmm_partition"
            and (record.get("attributes") or {}).get("request_trace_id")
        ):
            partition_spans.append(record)
    if open_trace is not None:
        finalize(open_trace)
    for trace_id in list(buffers):
        # Out-of-order leftovers (merged multi-writer streams): finalize
        # whatever batches survived.
        finalize(trace_id)

    for tree in report.trees.values():
        graft_partition_spans(tree, partition_spans)
    join_incidents(report.trees.values(), report.incidents)
    # Incident context also joins the root summaries, so aggregate views
    # can count incident-correlated requests beyond the exemplars.
    for trace_id, summary in report.summaries.items():
        summary["incidents"] = sum(
            1
            for incident in report.incidents
            if incident_overlaps(
                incident,
                summary["arrival_s"],
                summary["deadline_s"],
                tuple(summary["lookup_seqs"]),
            )
        )
    return report
