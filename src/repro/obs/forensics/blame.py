"""The critical-path invariant: blame sums to simulated latency.

Blame is produced *by construction* (every ``clock.advance`` a request
pays for is charged to exactly one category at the site that advances
the clock), so verification here is a consistency check over the
serialized tree, not a re-derivation — if it fails, a producer forgot
an advance site and the forensics layer is lying.
"""

from __future__ import annotations

import math
from typing import Any

from repro.obs.forensics.records import BLAME_CATEGORIES
from repro.obs.forensics.tree import RequestTree

#: Relative tolerance of the sum invariant.  The charges are the exact
#: floats the clock advanced by; only summation order differs, so the
#: error is a few ulps — 1e-9 is ~7 orders of magnitude of headroom.
SUM_REL_TOL = 1e-9


def blame_total(blame: dict[str, float]) -> float:
    """Total charged seconds across every category."""
    return sum(blame.values())


def blame_fractions(blame: dict[str, float]) -> dict[str, float]:
    """Category shares of the charged total (empty when nothing charged).

    Computed against the charged sum (not the clocked latency), so the
    fractions of a valid tree sum to 1.0 up to a couple of ulps.
    """
    total = blame_total(blame)
    if total <= 0.0:
        return {}
    return {category: value / total for category, value in blame.items()}


def verify_tree(
    tree: RequestTree, rel_tol: float = SUM_REL_TOL
) -> dict[str, Any] | None:
    """Check one tree's invariant; returns a violation dict or ``None``.

    A zero-latency request (served entirely between clock ticks, or a
    shed request) passes when its blame is also (near) zero.
    """
    blame = tree.blame
    total = blame_total(blame)
    latency = tree.latency_s
    if math.isclose(total, latency, rel_tol=rel_tol, abs_tol=1e-15):
        return None
    return {
        "trace_id": tree.trace_id,
        "klass": tree.klass,
        "status": tree.status,
        "latency_s": latency,
        "blame_total_s": total,
        "error_s": total - latency,
    }


def merge_blame(
    into: dict[str, dict[str, float]], klass: str, blame: dict[str, float]
) -> None:
    """Accumulate one request's blame into a per-class attribution table."""
    bucket = into.setdefault(klass, {})
    for category, value in blame.items():
        bucket[category] = bucket.get(category, 0.0) + value


def ordered_categories(blame: dict[str, float]) -> list[str]:
    """Known categories in canonical order, then any unknown extras."""
    known = [c for c in BLAME_CATEGORIES if c in blame]
    extras = sorted(c for c in blame if c not in BLAME_CATEGORIES)
    return known + extras
