"""Tail-latency forensics: per-request critical-path attribution.

Every request the serving loop resolves is emitted as a causal tree of
``forensic_span`` records on the live bus; this package holds the
producer (:class:`RequestForensics`), the reconstruction and
incident-join machinery, the blame-sum invariant, the bounded exemplar
reservoir, and the renderers behind ``repro why`` / ``repro attribute``.
"""

from repro.obs.forensics.blame import (
    SUM_REL_TOL,
    blame_fractions,
    blame_total,
    verify_tree,
)
from repro.obs.forensics.fold import ForensicsReport, fold_stream
from repro.obs.forensics.records import (
    BLAME_BREAKER,
    BLAME_CATEGORIES,
    BLAME_CHECKPOINTER,
    BLAME_KERNEL,
    BLAME_QUEUE,
    BLAME_SHARD_HEDGE,
    BLAME_STALE_FALLBACK,
    FORENSIC_RECORD_TYPE,
    RequestForensics,
    next_forensic_uid,
)
from repro.obs.forensics.reservoir import ExemplarReservoir
from repro.obs.forensics.tree import (
    ForensicNode,
    RequestTree,
    build_tree,
    extract_incidents,
    graft_partition_spans,
    join_incidents,
)
from repro.obs.forensics.waterfall import (
    describe_incident,
    format_seconds,
    render_waterfall,
)

__all__ = [
    "BLAME_BREAKER",
    "BLAME_CATEGORIES",
    "BLAME_CHECKPOINTER",
    "BLAME_KERNEL",
    "BLAME_QUEUE",
    "BLAME_SHARD_HEDGE",
    "BLAME_STALE_FALLBACK",
    "FORENSIC_RECORD_TYPE",
    "SUM_REL_TOL",
    "ExemplarReservoir",
    "ForensicNode",
    "ForensicsReport",
    "RequestForensics",
    "RequestTree",
    "blame_fractions",
    "blame_total",
    "build_tree",
    "describe_incident",
    "extract_incidents",
    "fold_stream",
    "format_seconds",
    "graft_partition_spans",
    "join_incidents",
    "next_forensic_uid",
    "render_waterfall",
    "verify_tree",
]
