"""Bounded exemplar retention: slowest-k per class + a seeded sample.

A stream can carry hundreds of thousands of request trees; ``repro
why`` only ever renders a handful.  The reservoir decides *online* which
full trees to keep: the ``worst_k`` slowest per request class (the tail
exemplars) plus a seeded uniform sample of ``sample_k`` completed
requests (Vitter's algorithm R — the honest baseline the tail is
compared against).  Everything else keeps only its root summary, so the
fold's memory stays bounded by ``O(classes * worst_k + sample_k)``
trees regardless of stream length.
"""

from __future__ import annotations

import heapq
import random


class ExemplarReservoir:
    """Online retention policy over (trace_id, class, latency) offers."""

    def __init__(
        self, worst_k: int = 8, sample_k: int = 8, seed: int = 0
    ) -> None:
        if worst_k < 0 or sample_k < 0:
            raise ValueError(
                f"worst_k/sample_k must be >= 0, got {worst_k}/{sample_k}"
            )
        self.worst_k = worst_k
        self.sample_k = sample_k
        self._rng = random.Random(seed)
        #: Per-class min-heaps of (latency, tiebreak, trace_id): the heap
        #: root is the *fastest* retained exemplar, evicted first.
        self._worst: dict[str, list[tuple[float, int, str]]] = {}
        self._sample: list[str] = []
        self._offers = 0

    def offer(self, trace_id: str, klass: str, latency_s: float) -> None:
        """Consider one completed request for retention."""
        if self.worst_k > 0:
            heap = self._worst.setdefault(klass, [])
            entry = (float(latency_s), self._offers, trace_id)
            if len(heap) < self.worst_k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)
        if self.sample_k > 0:
            if len(self._sample) < self.sample_k:
                self._sample.append(trace_id)
            else:
                j = self._rng.randrange(self._offers + 1)
                if j < self.sample_k:
                    self._sample[j] = trace_id
        self._offers += 1

    @property
    def offers(self) -> int:
        """Completed requests considered so far."""
        return self._offers

    def retained(self) -> set[str]:
        """Trace ids whose full trees must currently be kept."""
        keep = set(self._sample)
        for heap in self._worst.values():
            keep.update(trace_id for _, _, trace_id in heap)
        return keep

    def worst(self, klass: str | None = None) -> list[str]:
        """Retained tail exemplars, slowest first."""
        heaps = (
            [self._worst.get(klass, [])]
            if klass is not None
            else list(self._worst.values())
        )
        entries = [entry for heap in heaps for entry in heap]
        entries.sort(reverse=True)
        return [trace_id for _, _, trace_id in entries]

    def sampled(self) -> list[str]:
        """The seeded uniform sample, slot order."""
        return list(self._sample)
