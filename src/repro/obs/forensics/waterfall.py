"""Rendering one request tree as a blame-annotated waterfall.

The ``repro why`` view: every timed node becomes a bar positioned on
the request's ``[arrival, completion]`` interval, indented by tree
depth, annotated with its duration, blame category, and share of the
total latency; joined incidents print as headline lines ("this p99
spike = shard 3 promotion at seq 1041").
"""

from __future__ import annotations

from repro.obs.forensics.blame import (
    blame_fractions,
    blame_total,
    ordered_categories,
)
from repro.obs.forensics.tree import ForensicNode, RequestTree

#: Character width of the waterfall track.
TRACK_WIDTH = 40


def format_seconds(seconds: float) -> str:
    """Compact human duration (simulated seconds)."""
    magnitude = abs(seconds)
    if magnitude == 0.0:
        return "0s"
    if magnitude < 1e-3:
        return f"{seconds * 1e6:.3g}us"
    if magnitude < 1.0:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds:.3g}s"


def _bar(start: float, seconds: float, window: float, width: int) -> str:
    if window <= 0.0:
        return "·" * width
    begin = min(max(int(start / window * width), 0), width - 1)
    extent = max(int(round(seconds / window * width)), 1)
    end = min(begin + extent, width)
    return "·" * begin + "█" * (end - begin) + "·" * (width - end)


def _describe(node: ForensicNode) -> str:
    attrs = node.attributes
    bits = []
    if "outcome" in attrs:
        outcome = attrs["outcome"]
        bits.append(
            f"{outcome}:{attrs['reason']}"
            if outcome == "skipped"
            else str(outcome)
        )
    if "status" in attrs:
        bits.append(str(attrs["status"]))
    if "seq" in attrs:
        bits.append(f"seq={attrs['seq']}")
    if "stale_rows" in attrs:
        bits.append(f"stale_rows={attrs['stale_rows']}")
    if "worker_pid" in attrs:
        bits.append(
            f"pid={attrs['worker_pid']}"
            f" kernel={format_seconds(float(attrs.get('kernel_wall_s', 0.0)))} wall"
        )
    return f" ({', '.join(bits)})" if bits else ""


def describe_incident(incident: dict) -> str:
    """One headline line for a joined supervisor incident."""
    where = []
    if incident.get("seq") is not None:
        where.append(f"seq {incident['seq']}")
    if incident.get("sim_now_s") is not None:
        where.append(f"t={format_seconds(float(incident['sim_now_s']))}")
    suffix = f" at {', '.join(where)}" if where else ""
    detail = []
    if incident.get("lost_versions"):
        detail.append(f"lost_versions={incident['lost_versions']}")
    if incident.get("recovery_s"):
        detail.append(
            f"recovery={format_seconds(float(incident['recovery_s']))}"
        )
    tail = f" [{', '.join(detail)}]" if detail else ""
    return (
        f"shard {incident.get('shard', '?')}"
        f" {incident.get('event', '?')} ({incident.get('reason', '?')})"
        f"{suffix}{tail}"
    )


def render_waterfall(tree: RequestTree, width: int = TRACK_WIDTH) -> str:
    """Plain-text waterfall of one request's causal tree."""
    root = tree.root
    latency = tree.latency_s
    lines = [
        f"{tree.trace_id}  {tree.klass}  {tree.status}"
        + (
            f"/{root.attributes['fidelity']}"
            if root.attributes.get("fidelity")
            else ""
        )
        + f"  latency={format_seconds(latency)}"
        + f"  deadline={format_seconds(tree.deadline_s)}",
    ]
    blame = tree.blame
    fractions = blame_fractions(blame)
    if fractions:
        parts = [
            f"{category} {fractions[category] * 100:.1f}%"
            for category in ordered_categories(fractions)
        ]
        lines.append(
            f"  blame: {' · '.join(parts)}"
            f"  (sum {format_seconds(blame_total(blame))})"
        )
    overlap = float(root.attributes.get("refresh_overlap_s", 0.0) or 0.0)
    if overlap:
        lines.append(
            f"  checkpointer overlap: {format_seconds(overlap)}"
            " (off the request clock)"
        )
    for incident in tree.incidents:
        lines.append(f"  !! incident: {describe_incident(incident)}")

    def emit(node: ForensicNode, depth: int) -> None:
        share = (
            f" {node.sim_seconds / latency * 100:5.1f}%"
            if latency > 0.0 and node.sim_seconds > 0.0
            else "      "
        )
        category = f" [{node.category}]" if node.category else ""
        bar = _bar(
            node.sim_start - tree.arrival_s,
            node.sim_seconds,
            latency,
            width,
        )
        indent = "  " * depth
        lines.append(
            f"  {bar} {share} {indent}{node.name}"
            f" {format_seconds(node.sim_seconds)}{category}"
            f"{_describe(node)}"
        )
        for child in node.children:
            emit(child, depth + 1)

    for child in root.children:
        emit(child, 0)
    return "\n".join(lines)
