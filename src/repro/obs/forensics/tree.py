"""Reconstructing causal trees from a telemetry stream.

``forensic_span`` records (one batch per request, see
:mod:`repro.obs.forensics.records`) link by ``uid``/``parent_uid``.
This module folds a record list back into :class:`RequestTree` objects,
grafts executor ``spmm_partition`` spans that were stamped with a
request's trace id, and joins supervisor incidents onto the requests
whose deadlines they overlapped — the "this p99 spike = shard 3
promotion at seq 1041" view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.obs.forensics.records import (
    BLAME_KERNEL,
    FORENSIC_RECORD_TYPE,
    ROOT_NODE,
)

#: Supervisor-driven ``shard_event`` kinds that are incidents (they name
#: a repair or topology action, not routine traffic).
INCIDENT_EVENTS = ("promote", "restart", "shard_abandoned", "reshard")


@dataclass
class ForensicNode:
    """One node of a reconstructed request tree."""

    uid: str
    name: str
    category: str | None
    sim_start: float
    sim_seconds: float
    attributes: dict[str, Any] = field(default_factory=dict)
    children: list["ForensicNode"] = field(default_factory=list)

    def walk(self) -> Iterator["ForensicNode"]:
        """Depth-first traversal, self first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class RequestTree:
    """One request's reconstructed causal tree plus joined incidents."""

    trace_id: str
    root: ForensicNode
    incidents: list[dict[str, Any]] = field(default_factory=list)

    @property
    def klass(self) -> str:
        return str(self.root.attributes.get("klass", "?"))

    @property
    def status(self) -> str:
        return str(self.root.attributes.get("status", "?"))

    @property
    def latency_s(self) -> float:
        return float(self.root.sim_seconds or 0.0)

    @property
    def blame(self) -> dict[str, float]:
        blame = self.root.attributes.get("blame")
        return dict(blame) if isinstance(blame, dict) else {}

    @property
    def arrival_s(self) -> float:
        return float(self.root.attributes.get("arrival_s", self.root.sim_start))

    @property
    def deadline_s(self) -> float:
        return float(self.root.attributes.get("deadline_s", 0.0))

    @property
    def lookup_seqs(self) -> tuple[int, ...]:
        seqs = self.root.attributes.get("lookup_seqs") or []
        return tuple(int(s) for s in seqs)

    def nodes(self) -> Iterator[ForensicNode]:
        return self.root.walk()


def _node_from_record(record: dict[str, Any]) -> ForensicNode:
    return ForensicNode(
        uid=str(record.get("uid")),
        name=str(record.get("name", "?")),
        category=record.get("category"),
        sim_start=float(record.get("sim_start", 0.0) or 0.0),
        sim_seconds=float(record.get("sim_seconds", 0.0) or 0.0),
        attributes=dict(record.get("attributes") or {}),
    )


def build_tree(spans: Iterable[dict[str, Any]]) -> RequestTree | None:
    """Link one request's ``forensic_span`` batch into a tree.

    Orphans (a ``parent_uid`` that never arrived — a torn stream tail)
    graft onto the root rather than dropping, so a damaged tree still
    accounts for its seconds.  Returns ``None`` when no root survived.
    """
    spans = list(spans)
    nodes: dict[str, ForensicNode] = {}
    trace_id = None
    for record in spans:
        node = _node_from_record(record)
        nodes[node.uid] = node
        if trace_id is None:
            trace_id = record.get("trace_id")
    root = next(
        (
            nodes[str(r.get("uid"))]
            for r in spans
            if r.get("parent_uid") is None and r.get("name") == ROOT_NODE
        ),
        None,
    )
    if root is None:
        return None
    for record in spans:
        uid = str(record.get("uid"))
        if nodes[uid] is root:
            continue
        parent = nodes.get(str(record.get("parent_uid")))
        (parent if parent is not None else root).children.append(nodes[uid])
    return RequestTree(trace_id=str(trace_id), root=root)


def graft_partition_spans(
    tree: RequestTree, records: Iterable[dict[str, Any]]
) -> int:
    """Attach executor partition spans stamped with this request's trace.

    ``spmm_partition`` worker spans carry wall-clock times and zero
    simulated seconds, so grafting them annotates the tree (which worker
    straggled) without touching the blame-sum invariant.  They land
    under the request's ``kernel`` node when one exists, else the root.
    Returns the number grafted.
    """
    anchor = next(
        (n for n in tree.nodes() if n.name == "kernel"), tree.root
    )
    grafted = 0
    for record in records:
        if record.get("type") != "span":
            continue
        if record.get("name") != "spmm_partition":
            continue
        attrs = dict(record.get("attributes") or {})
        if attrs.get("request_trace_id") != tree.trace_id:
            continue
        anchor.children.append(
            ForensicNode(
                uid=str(attrs.get("uid", f"span-{grafted}")),
                name=f"partition:{attrs.get('row_start', '?')}",
                category=BLAME_KERNEL,
                sim_start=anchor.sim_start,
                sim_seconds=0.0,
                attributes=attrs,
            )
        )
        grafted += 1
    return grafted


def extract_incidents(
    records: Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    """Supervisor incident records from a stream, in emission order."""
    return [
        r
        for r in records
        if r.get("type") == "shard_event" and r.get("event") in INCIDENT_EVENTS
    ]


def incident_overlaps(
    incident: dict[str, Any],
    arrival_s: float,
    deadline_s: float,
    lookup_seqs: tuple[int, ...],
) -> bool:
    """Did this incident land inside the request's deadline window?

    Primary join: the incident's simulated timestamp falls inside
    ``[arrival, arrival + deadline]``.  Fallback (incidents raised by a
    bare ``supervisor.check()`` with no clock in hand): the incident's
    lookup sequence number matches one of the request's gathers.
    """
    sim_now = incident.get("sim_now_s")
    if sim_now is not None:
        return arrival_s <= float(sim_now) <= arrival_s + deadline_s
    seq = incident.get("seq")
    return seq is not None and int(seq) in lookup_seqs


def join_incidents(
    trees: Iterable[RequestTree], incidents: list[dict[str, Any]]
) -> None:
    """Attach each incident to every request whose window it overlapped."""
    for tree in trees:
        tree.incidents = [
            incident
            for incident in incidents
            if incident_overlaps(
                incident,
                tree.arrival_s,
                tree.deadline_s,
                tree.lookup_seqs,
            )
        ]


def group_forensic_spans(
    records: Iterable[dict[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Group a stream's forensic spans by trace id, order preserved."""
    grouped: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        if record.get("type") != FORENSIC_RECORD_TYPE:
            continue
        trace_id = record.get("trace_id")
        if trace_id is None:
            continue
        grouped.setdefault(str(trace_id), []).append(record)
    return grouped
