"""Metrics registry: counters, gauges and fixed-bucket histograms.

The pipeline's non-timing telemetry — WoFP hit/miss counts, pinned and
allocated bytes, per-partition entropy, streaming exposure — flows into a
:class:`MetricsRegistry`.  The model follows the Prometheus conventions
(monotonic counters, last-value gauges, cumulative-bucket histograms) so
snapshots map directly onto standard dashboards.

Metrics are identified by a name plus an optional label mapping;
``registry.counter("wofp.hit_nnz", kind="degree")`` and
``registry.counter("wofp.hit_nnz", kind="frequency")`` are distinct
series of the same family.
"""

from __future__ import annotations

import math
from typing import Any, Iterable


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _full_name(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in _label_key(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (events, bytes, nnz)."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add a non-negative amount."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def to_record(self) -> dict[str, Any]:
        """Serialize to a plain dict (the JSONL metric record payload)."""
        return {
            "type": "metric",
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge(Counter):
    """Last-observed value (occupancy, entropy, partition counts)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Gauges may move in either direction."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Decrease the gauge."""
        self.value -= amount


#: Default histogram buckets: log-spaced, wide enough for both simulated
#: seconds (1 us .. hours) and dimensionless ratios.
DEFAULT_BUCKETS = tuple(10.0**e for e in range(-6, 7))

#: Exemplars retained per histogram bucket (newest win), following the
#: OpenMetrics convention of a small bounded set per series.
EXEMPLARS_PER_BUCKET = 4


class Histogram:
    """Fixed-bucket histogram with cumulative bucket counts.

    Observations may carry an *exemplar* — a trace id pinned to the
    bucket the value landed in, so an operator reading a p99 bucket in
    the Prometheus exposition can jump straight to ``repro why
    <trace_id>`` for that request's causal tree.  At most
    :data:`EXEMPLARS_PER_BUCKET` are retained per bucket, newest first.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, Any],
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"bucket bounds must be finite, got {bounds}")
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: ``{bucket_index: [(value, trace_id), ...]}`` — newest first,
        #: bounded; only buckets that ever saw an exemplar have a key.
        self.exemplars: dict[int, list[tuple[float, str]]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation, optionally pinning a trace exemplar."""
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        index = len(self.bounds)  # +inf overflow unless a bound fits
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        if exemplar is not None:
            bucket = self.exemplars.setdefault(index, [])
            bucket.insert(0, (value, str(exemplar)))
            del bucket[EXEMPLARS_PER_BUCKET:]

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket upper bounds.

        Edge cases are explicit rather than whatever the bucket math
        produces:

        - an empty histogram returns ``nan`` (there is no quantile of
          nothing, and 0.0 would be indistinguishable from real data);
        - ``q=0`` returns the observed minimum and ``q=1`` the observed
          maximum, exactly;
        - a single observation returns that value for every ``q``;
        - interior quantiles return the upper bound of the bucket
          containing the q-quantile observation, clamped into
          ``[min, max]`` so a coarse bucket cannot report a value no
          observation ever reached (+inf overflow buckets report the
          observed max).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        if q == 0.0 or self.count == 1:
            return self.min if q < 1.0 else self.max
        if q == 1.0:
            return self.max
        rank = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank and bucket_count > 0:
                if i < len(self.bounds):
                    return min(max(self.bounds[i], self.min), self.max)
                return self.max
        return self.max

    def fraction_over(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold`` (approx).

        Computed from the cumulative buckets: every observation in a
        bucket whose upper bound is <= ``threshold`` counts as within
        the threshold; the rest count as over.  Conservative (an
        over-estimate) when the threshold falls inside a bucket.
        Returns 0.0 for an empty histogram (no observation exceeded
        anything).
        """
        if self.count == 0:
            return 0.0
        if threshold >= self.max:
            return 0.0
        within = 0
        for i, bound in enumerate(self.bounds):
            if bound <= threshold:
                within += self.bucket_counts[i]
            else:
                break
        return (self.count - within) / self.count

    def to_record(self) -> dict[str, Any]:
        """Serialize to a plain dict (the JSONL metric record payload).

        The ``exemplars`` key only appears when an exemplar was ever
        observed, so records written by this version load unchanged in
        older readers and vice versa.
        """
        record = {
            "type": "metric",
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }
        if self.exemplars:
            record["exemplars"] = {
                str(index): [[value, trace_id] for value, trace_id in pairs]
                for index, pairs in sorted(self.exemplars.items())
            }
        return record


class MetricsRegistry:
    """Get-or-create registry for all metric families."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], Counter | Histogram] = {}

    def _get(self, cls: type, name: str, labels: dict[str, Any], **kwargs: Any):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind},"
                f" requested {cls.__name__.lower()}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get or create a histogram (buckets fixed at first creation)."""
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(
            sorted(self._metrics.values(), key=lambda m: (m.name, _label_key(m.labels)))
        )

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge (0 if never touched)."""
        metric = self._metrics.get((name, _label_key(labels)))
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; read its record instead")
        return metric.value

    def family_total(self, name: str) -> float:
        """Sum of a counter/gauge family's values across all label sets."""
        return sum(
            m.value
            for m in self._metrics.values()
            if m.name == name and not isinstance(m, Histogram)
        )

    def to_records(self) -> list[dict[str, Any]]:
        """Serialize every metric, sorted by (name, labels)."""
        return [metric.to_record() for metric in self]

    def snapshot(self) -> dict[str, Any]:
        """Flat ``{full_name: value-or-summary}`` view, for assertions."""
        out: dict[str, Any] = {}
        for metric in self:
            full = _full_name(metric.name, metric.labels)
            if isinstance(metric, Histogram):
                out[full] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "mean": metric.mean,
                }
            else:
                out[full] = metric.value
        return out

    def reset(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()
