"""Content-addressed baseline store under ``benchmarks/baselines/``.

The store is deliberately git-shaped: immutable payloads live in
``objects/<key>.json`` where ``key`` is the content hash of the
canonical JSON, and human names are movable refs — one-line files in
``refs/<name>`` holding a key.  Updating a named baseline writes a new
object and repoints the ref; the old object stays addressable, so the
history of a pinned baseline is never lost and a ``repro diff`` between
any two stored runs remains possible.

Unlike ``benchmarks/results/`` (generated, gitignored), the baseline
store is *meant* to be committed: it is the cross-run memory the
perf-gate compares against.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from repro.obs.observatory.manifest import canonical_json, content_hash

#: Default store root, resolved relative to the repository layout.
DEFAULT_STORE_DIR = (
    Path(__file__).resolve().parents[4] / "benchmarks" / "baselines"
)

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class BaselineStore:
    """Immutable objects plus movable named refs on the filesystem."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_STORE_DIR
        self.objects_dir = self.root / "objects"
        self.refs_dir = self.root / "refs"

    # -- writing ---------------------------------------------------------

    def put(self, payload: dict[str, Any], name: str | None = None) -> str:
        """Store a payload; returns its content key.

        With ``name``, the ref is (re)pointed at the new object.
        Storing an identical payload is idempotent: same key, same file.
        """
        key = content_hash(payload)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        path = self.objects_dir / f"{key}.json"
        if not path.exists():
            path.write_text(
                json.dumps(payload, sort_keys=True, indent=2) + "\n",
                encoding="utf-8",
            )
        if name is not None:
            self.set_ref(name, key)
        return key

    def set_ref(self, name: str, key: str) -> None:
        """Point a named ref at an existing object."""
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid baseline name {name!r}")
        if not (self.objects_dir / f"{key}.json").exists():
            raise KeyError(f"unknown baseline object {key!r}")
        self.refs_dir.mkdir(parents=True, exist_ok=True)
        (self.refs_dir / name).write_text(key + "\n", encoding="utf-8")

    # -- reading ---------------------------------------------------------

    def resolve(self, name: str) -> str | None:
        """Key a ref points at, or None if the ref does not exist."""
        path = self.refs_dir / name
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8").strip() or None

    def get(self, key: str) -> dict[str, Any]:
        """Load an object by key; verifies the content address."""
        path = self.objects_dir / f"{key}.json"
        if not path.is_file():
            raise KeyError(f"unknown baseline object {key!r}")
        payload = json.loads(path.read_text(encoding="utf-8"))
        actual = content_hash(payload)
        if actual != key:
            raise ValueError(
                f"baseline object {key!r} is corrupt: content hashes to"
                f" {actual!r} (canonical form: {canonical_json(payload)[:80]}…)"
            )
        return payload

    def load(self, name_or_key: str) -> dict[str, Any]:
        """Load by ref name first, falling back to a raw key."""
        key = self.resolve(name_or_key)
        if key is None:
            key = name_or_key
        return self.get(key)

    def names(self) -> list[str]:
        """All ref names, sorted."""
        if not self.refs_dir.is_dir():
            return []
        return sorted(p.name for p in self.refs_dir.iterdir() if p.is_file())

    def keys(self) -> list[str]:
        """All object keys, sorted."""
        if not self.objects_dir.is_dir():
            return []
        return sorted(
            p.stem for p in self.objects_dir.glob("*.json") if p.is_file()
        )

    # -- maintenance -----------------------------------------------------

    def referenced_keys(self) -> set[str]:
        """Keys some ref currently points at."""
        out: set[str] = set()
        for name in self.names():
            key = self.resolve(name)
            if key is not None:
                out.add(key)
        return out

    def unreferenced_keys(self) -> list[str]:
        """Objects no ref points at (gc candidates), sorted."""
        referenced = self.referenced_keys()
        return [key for key in self.keys() if key not in referenced]

    def gc(self, dry_run: bool = True) -> list[str]:
        """Drop every unreferenced object; returns the doomed keys.

        Dry-run by default: the candidate list is returned but nothing
        is deleted until ``dry_run=False``.  Referenced objects are
        never touched, so a named baseline's current payload always
        survives — only the unnamed history goes.
        """
        doomed = self.unreferenced_keys()
        if not dry_run:
            for key in doomed:
                (self.objects_dir / f"{key}.json").unlink()
        return doomed
