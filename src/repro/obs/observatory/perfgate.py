"""The CI perf-regression gate: a pinned micro-bench suite vs. a baseline.

``repro perf-gate`` runs a small, fully deterministic suite — one
end-to-end embedding, one standalone SpMM and one serve replay, all
seeded, on a tiny R-MAT graph with the capacity scale cranked until the
ASL streaming path engages (so PM-bandwidth effects are visible even at
this size) — and compares the *simulated* stage seconds against the
pinned baseline in the :class:`~repro.obs.observatory.store.BaselineStore`.
Simulated times are pure cost-model arithmetic over fixed inputs, so
they are bit-stable across machines; any drift beyond the threshold is
a genuine cost-model change, and the gate exits nonzero naming the
regressed stage.

On a pass the gate appends one point to the ``BENCH_omega.json``
trajectory, which is how the repo's perf history accumulates commit by
commit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.export import TelemetrySession
from repro.obs.observatory.manifest import (
    RunManifest,
    manifest_from_records,
)
from repro.obs.observatory.store import BaselineStore

#: Name of the pinned baseline ref inside the store.
GATE_BASELINE_NAME = "perf_gate"
#: Default trajectory file, at the repository root.
DEFAULT_TRAJECTORY = (
    Path(__file__).resolve().parents[4] / "BENCH_omega.json"
)

#: Pinned suite parameters — changing any of these invalidates the
#: stored baseline (the config hash in the manifest will differ).
GATE_SCALE = 10
GATE_EDGE_FACTOR = 8.0
GATE_SEED = 0
GATE_THREADS = 4
GATE_DIM = 8
#: Shrinks the simulated tiers until the 2**10-node operand overflows
#: the DRAM streaming budget, so the ASL/PM path is actually exercised.
GATE_CAPACITY_SCALE = 4_000_000
GATE_SERVE_REQUESTS = 200
#: Default regression threshold on simulated stage seconds.
GATE_THRESHOLD = 0.05


@dataclass
class GateRun:
    """One execution of the micro-bench suite."""

    session: TelemetrySession
    stages: dict[str, float]
    #: Per-class tail-latency blame fractions from the serve stage
    #: (``{"interactive/queue": 0.83, ...}``) — published to the
    #: trajectory as ``attribution.*`` series, not gated (the stage
    #: seconds already gate the totals; the mix is for trend plots).
    attribution: dict[str, float] = field(default_factory=dict)

    @property
    def manifest(self) -> RunManifest:
        manifest = manifest_from_records(self.session.records())
        assert manifest is not None
        return manifest

    def payload(self) -> dict[str, Any]:
        """The store/trajectory payload (deterministic fields only)."""
        manifest = self.manifest
        payload: dict[str, Any] = {
            "suite": "perf_gate",
            "config_hash": manifest.config_hash,
            "stages": {k: float(v) for k, v in sorted(self.stages.items())},
        }
        if self.attribution:
            payload["attribution"] = {
                k: float(v) for k, v in sorted(self.attribution.items())
            }
        return payload


def run_suite(
    faults_path: str | Path | None = None,
    live_path: str | Path | None = None,
) -> GateRun:
    """Run the pinned micro-bench suite; returns stages in sim seconds.

    ``faults_path`` loads a :class:`~repro.faults.FaultPlan` into the
    run (the chaos hook the acceptance test uses to derate PM bandwidth
    and watch the gate catch it).  ``live_path`` streams the telemetry
    incrementally to a JSONL file while the suite runs (the ``repro
    perf-gate --live`` path CI tails and uploads); the stream is closed
    before the run returns, so the file is a complete merged-readable
    export.
    """
    import numpy as np

    from repro.core.config import OMeGaConfig
    from repro.core.embedding import OMeGaEmbedder
    from repro.core.spmm import SpMMEngine
    from repro.faults import FaultInjector, FaultPlan
    from repro.formats.convert import edges_to_csdb
    from repro.graphs.rmat import rmat_edges
    from repro.memsim.clock import VirtualClock
    from repro.serve import (
        EmbeddingBackend,
        EmbeddingServer,
        RequestTrace,
        ServePolicy,
    )

    meta = {
        "command": "perf-gate",
        "graph": f"rmat-s{GATE_SCALE}",
        "seed": GATE_SEED,
        "threads": GATE_THREADS,
        "dim": GATE_DIM,
        "capacity_scale": GATE_CAPACITY_SCALE,
        "edge_factor": GATE_EDGE_FACTOR,
    }
    session = TelemetrySession(meta=meta)
    if live_path is not None:
        session.stream_to(live_path)
    plan = FaultPlan.load(faults_path) if faults_path else None

    config = OMeGaConfig(
        n_threads=GATE_THREADS,
        dim=GATE_DIM,
        capacity_scale=GATE_CAPACITY_SCALE,
        seed=GATE_SEED,
    )
    edges = rmat_edges(GATE_SCALE, edge_factor=GATE_EDGE_FACTOR, seed=GATE_SEED)
    n_nodes = 1 << GATE_SCALE
    stages: dict[str, float] = {}

    # 1. End-to-end embedding (fresh injector so derates apply here).
    embedder = OMeGaEmbedder(
        config,
        tracer=session.tracer,
        metrics=session.metrics,
        faults=FaultInjector(plan, session.metrics) if plan else None,
    )
    result = embedder.embed_edges(edges, n_nodes)
    session.add_cost_trace("embed", result.trace)
    stages["embed.graph_read"] = result.read_seconds
    stages["embed.factorization"] = result.factorization_seconds
    stages["embed.propagation"] = result.propagation_seconds
    stages["embed.spmm"] = result.spmm_seconds
    stages["embed.total"] = result.sim_seconds

    # 2. Standalone SpMM over the same operand (cost model only).
    engine = SpMMEngine(
        config,
        tracer=session.tracer,
        metrics=session.metrics,
        faults=FaultInjector(plan, session.metrics) if plan else None,
    )
    matrix = edges_to_csdb(edges, n_nodes)
    dense = np.random.default_rng(GATE_SEED).standard_normal(
        (n_nodes, GATE_DIM)
    )
    with session.tracer.span("spmm_micro"):
        spmm = engine.multiply(matrix, dense, compute=False)
        session.tracer.advance_sim(spmm.sim_seconds)
    session.add_cost_trace("spmm_micro", spmm.trace)
    stages["spmm.total"] = spmm.sim_seconds

    # 3. Serve replay (deterministic trace, no faults: the serve stage
    # gates queueing/backend cost, not chaos behavior).
    serve_embedder = OMeGaEmbedder(config, metrics=session.metrics)
    backend = EmbeddingBackend(
        serve_embedder, edges, n_nodes, metrics=session.metrics
    )
    with session.tracer.span("serve_micro"):
        warmup_s = backend.warm_up()
        per_node = backend.compute_cost(1)
        trace = RequestTrace.synthesize(
            seed=GATE_SEED,
            n_requests=GATE_SERVE_REQUESTS,
            per_node_cost_s=per_node,
        )
        server = EmbeddingServer(
            backend,
            ServePolicy.calibrated(per_node * 8.5),
            clock=VirtualClock(),
            metrics=session.metrics,
        )
        report = server.run_trace(trace)
        session.tracer.advance_sim(report.finished_at_s)
    stages["serve.warmup"] = warmup_s
    stages["serve.p99_latency"] = report.latency_percentile(
        99, ("served", "deadline_exceeded")
    )
    from repro.obs.observatory.diff import extract_attribution_values

    attribution = extract_attribution_values(session.metrics.to_records())
    session.event("perf_gate_stages", **stages)
    if session.stream is not None:
        session.close_stream()
    return GateRun(session=session, stages=stages, attribution=attribution)


@dataclass
class StageVerdict:
    """Comparison of one stage against the baseline."""

    stage: str
    baseline: float | None
    current: float
    regressed: bool

    @property
    def ratio(self) -> float | None:
        if self.baseline is None or self.baseline == 0.0:
            return None
        return (self.current - self.baseline) / self.baseline


@dataclass
class GateReport:
    """Outcome of one perf-gate run."""

    run: GateRun
    verdicts: list[StageVerdict] = field(default_factory=list)
    baseline_key: str | None = None
    baseline_updated: bool = False
    trajectory_appended: bool = False

    @property
    def regressions(self) -> list[StageVerdict]:
        return [v for v in self.verdicts if v.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_to_baseline(
    run: GateRun,
    baseline: dict[str, Any],
    threshold: float = GATE_THRESHOLD,
) -> list[StageVerdict]:
    """Stage-by-stage verdicts against a stored baseline payload."""
    baseline_stages = baseline.get("stages", {})
    verdicts = []
    for stage, current in sorted(run.stages.items()):
        base = baseline_stages.get(stage)
        regressed = base is not None and current > base * (1.0 + threshold)
        verdicts.append(
            StageVerdict(
                stage=stage,
                baseline=base,
                current=current,
                regressed=regressed,
            )
        )
    return verdicts


def append_trajectory_point(
    path: str | Path, point: dict[str, Any]
) -> None:
    """Append one arbitrary point to a ``BENCH_omega.json`` trajectory.

    The trajectory is a JSON list; gate runs, wall-gate runs and
    benchmark results (``bench_parallel_scaling``) all append here so
    the repo's perf history accumulates in one place.
    """
    path = Path(path)
    points: list[dict[str, Any]] = []
    if path.is_file():
        loaded = json.loads(path.read_text(encoding="utf-8"))
        if isinstance(loaded, list):
            points = loaded
    points.append(point)
    path.write_text(json.dumps(points, indent=2) + "\n", encoding="utf-8")


def append_trajectory(
    run: GateRun,
    path: str | Path,
    baseline_key: str | None,
    ok: bool,
) -> None:
    """Append one perf-gate point to ``BENCH_omega.json``."""
    manifest = run.manifest
    point: dict[str, Any] = {
        "run_id": manifest.run_id,
        "git_sha": manifest.git_sha,
        "config_hash": manifest.config_hash,
        "baseline_key": baseline_key,
        "ok": ok,
        "stages": {k: float(v) for k, v in sorted(run.stages.items())},
    }
    if run.attribution:
        point["attribution"] = {
            k: float(v) for k, v in sorted(run.attribution.items())
        }
    append_trajectory_point(path, point)


def run_perf_gate(
    store: BaselineStore | None = None,
    threshold: float = GATE_THRESHOLD,
    update_baseline: bool = False,
    faults_path: str | Path | None = None,
    trajectory_path: str | Path | None = None,
    live_path: str | Path | None = None,
) -> GateReport:
    """Run the suite, gate it, and (on success) extend the trajectory.

    With ``update_baseline`` (or when no baseline exists yet and the run
    is clean) the run's stages become the new pinned baseline.  Faulted
    runs never update the baseline or the trajectory — chaos is for
    testing the gate, not for moving the goalposts.
    """
    store = store if store is not None else BaselineStore()
    run = run_suite(faults_path, live_path=live_path)
    report = GateReport(run=run)
    baseline_key = store.resolve(GATE_BASELINE_NAME)
    chaos = faults_path is not None

    if baseline_key is not None:
        baseline = store.get(baseline_key)
        report.baseline_key = baseline_key
        report.verdicts = compare_to_baseline(run, baseline, threshold)
    else:
        report.verdicts = compare_to_baseline(run, {}, threshold)

    if chaos:
        return report

    if update_baseline or (baseline_key is None and report.ok):
        report.baseline_key = store.put(run.payload(), name=GATE_BASELINE_NAME)
        report.baseline_updated = True

    if report.ok and trajectory_path is not None:
        append_trajectory(
            run, trajectory_path, report.baseline_key, ok=True
        )
        report.trajectory_appended = True
    return report


def render_gate(report: GateReport, threshold: float = GATE_THRESHOLD) -> str:
    """Plain-text table of a gate run."""
    from repro.bench.harness import format_seconds, format_table

    rows = []
    for v in report.verdicts:
        ratio = f"{v.ratio * 100:+.2f}%" if v.ratio is not None else "-"
        rows.append(
            [
                v.stage,
                format_seconds(v.baseline) if v.baseline is not None else "-",
                format_seconds(v.current),
                ratio,
                "REGRESSED" if v.regressed else "ok",
            ]
        )
    table = format_table(
        ["stage", "baseline", "current", "delta", "status"],
        rows,
        title=(
            f"perf-gate (threshold {threshold * 100:.0f}%,"
            f" baseline {report.baseline_key or 'none'})"
        ),
    )
    if report.regressions:
        names = ", ".join(v.stage for v in report.regressions)
        verdict = f"PERF GATE FAILED — regressed stages: {names}"
    elif report.baseline_key is None:
        verdict = "no baseline stored; run with --update-baseline to pin one"
    else:
        verdict = "perf gate passed"
    extras = []
    if report.baseline_updated:
        extras.append(f"baseline updated -> {report.baseline_key}")
    if report.trajectory_appended:
        extras.append("trajectory point appended")
    if extras:
        verdict = f"{verdict} ({'; '.join(extras)})"
    return f"{table}\n{verdict}"
