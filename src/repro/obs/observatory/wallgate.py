"""Opt-in wall-clock arm of the perf gate: median-of-k with noise bands.

Simulated stage seconds (:mod:`repro.obs.observatory.perfgate`) are
bit-stable, so the sim gate can use a plain threshold.  Wall-clock
seconds are not — CI machines differ, neighbors steal cycles — so the
wall arm:

- measures each probe ``k`` times and compares **medians**;
- derives a **noise band** from the stored baseline's own dispersion
  (relative median-absolute-deviation), widened by a safety multiplier;
- only flags a regression when the current median exceeds the baseline
  median by more than ``max(threshold, band)``.

The arm is opt-in (``repro perf-gate --wall report|gate``): ``report``
prints the table and the band but never affects the exit code (the CI
default while a machine-specific baseline accumulates); ``gate``
enforces.  The wall baseline is stored separately from the sim baseline
(``perf_gate_wall``) because it is machine-specific where the sim
baseline is universal.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.observatory.store import BaselineStore

#: Name of the wall-clock baseline ref inside the store.
WALL_BASELINE_NAME = "perf_gate_wall"
#: Repeats per probe; medians of this many runs are compared.
WALL_DEFAULT_RUNS = 5
#: Floor on the allowed relative slowdown regardless of how quiet the
#: baseline machine was.
WALL_THRESHOLD = 0.25
#: The noise band is this many relative MADs of the stored baseline.
WALL_BAND_MULTIPLIER = 4.0
#: Wall-probe workload (smaller than a benchmark: the gate runs per-CI).
WALL_SCALE = 11
WALL_EDGE_FACTOR = 8.0
WALL_DIM = 16
WALL_SEED = 0


@dataclass
class WallProbe:
    """Median-of-k wall timing for one probe."""

    name: str
    samples: list[float]

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def rel_mad(self) -> float:
        """Median absolute deviation relative to the median."""
        med = self.median
        if med == 0.0:
            return 0.0
        mad = statistics.median(abs(s - med) for s in self.samples)
        return mad / med

    def payload(self) -> dict[str, Any]:
        return {
            "samples": [float(s) for s in self.samples],
            "median": float(self.median),
            "rel_mad": float(self.rel_mad),
        }


@dataclass
class WallRun:
    """One execution of the wall-clock probe suite."""

    probes: list[WallProbe]
    backend: str
    n_workers: int
    k: int

    def payload(self) -> dict[str, Any]:
        return {
            "suite": "perf_gate_wall",
            "backend": self.backend,
            "n_workers": self.n_workers,
            "k": self.k,
            "probes": {p.name: p.payload() for p in self.probes},
        }


def run_wall_suite(
    k: int = WALL_DEFAULT_RUNS,
    backend: str = "simulated",
    n_workers: int = 2,
) -> WallRun:
    """Time the real-kernel probes ``k`` times each on a seeded graph."""
    import numpy as np

    from repro.core.config import ExecBackend, OMeGaConfig, ParallelConfig
    from repro.core.spmm import SpMMEngine
    from repro.formats.convert import edges_to_csdb
    from repro.graphs.rmat import rmat_edges

    edges = rmat_edges(WALL_SCALE, edge_factor=WALL_EDGE_FACTOR, seed=WALL_SEED)
    n_nodes = 1 << WALL_SCALE
    matrix = edges_to_csdb(edges, n_nodes)
    dense = np.random.default_rng(WALL_SEED).standard_normal(
        (n_nodes, WALL_DIM)
    )
    config = OMeGaConfig(
        n_threads=4,
        dim=WALL_DIM,
        parallel=ParallelConfig(
            backend=ExecBackend(backend), n_workers=n_workers
        ),
    )
    engine = SpMMEngine(config)

    kernel_samples: list[float] = []
    engine_samples: list[float] = []
    matrix.spmm(dense)  # warm caches (prefix sums, page faults) once
    for _ in range(max(k, 1)):
        start = time.perf_counter()
        matrix.spmm(dense)
        kernel_samples.append(time.perf_counter() - start)
        result = engine.multiply(matrix, dense)
        engine_samples.append(result.kernel_wall_seconds)
    return WallRun(
        probes=[
            WallProbe("wall.spmm_kernel", kernel_samples),
            WallProbe("wall.engine_dispatch", engine_samples),
        ],
        backend=backend,
        n_workers=n_workers,
        k=max(k, 1),
    )


@dataclass
class WallVerdict:
    """Comparison of one wall probe against the stored baseline."""

    probe: str
    baseline_median: float | None
    current_median: float
    band: float
    regressed: bool

    @property
    def ratio(self) -> float | None:
        if self.baseline_median is None or self.baseline_median == 0.0:
            return None
        return (
            self.current_median - self.baseline_median
        ) / self.baseline_median


@dataclass
class WallReport:
    """Outcome of one wall-gate run."""

    run: WallRun
    verdicts: list[WallVerdict] = field(default_factory=list)
    baseline_key: str | None = None
    baseline_updated: bool = False
    enforced: bool = False

    @property
    def regressions(self) -> list[WallVerdict]:
        return [v for v in self.verdicts if v.regressed]

    @property
    def ok(self) -> bool:
        """Only a *gating* run can fail; report-only runs always pass."""
        return not (self.enforced and self.regressions)


def compare_wall(
    run: WallRun,
    baseline: dict[str, Any],
    threshold: float = WALL_THRESHOLD,
    band_multiplier: float = WALL_BAND_MULTIPLIER,
) -> list[WallVerdict]:
    """Noise-banded verdicts: slowdowns within the band are not flagged."""
    baseline_probes = baseline.get("probes", {})
    verdicts = []
    for probe in run.probes:
        base = baseline_probes.get(probe.name)
        if base is None:
            verdicts.append(
                WallVerdict(
                    probe=probe.name,
                    baseline_median=None,
                    current_median=probe.median,
                    band=threshold,
                    regressed=False,
                )
            )
            continue
        band = max(
            threshold, band_multiplier * float(base.get("rel_mad", 0.0))
        )
        base_median = float(base["median"])
        regressed = probe.median > base_median * (1.0 + band)
        verdicts.append(
            WallVerdict(
                probe=probe.name,
                baseline_median=base_median,
                current_median=probe.median,
                band=band,
                regressed=regressed,
            )
        )
    return verdicts


def run_wall_gate(
    store: BaselineStore | None = None,
    mode: str = "report",
    k: int = WALL_DEFAULT_RUNS,
    backend: str = "simulated",
    n_workers: int = 2,
    threshold: float = WALL_THRESHOLD,
    update_baseline: bool = False,
) -> WallReport:
    """Run the wall suite and compare with noise bands.

    ``mode`` is ``"report"`` (print-only; never fails) or ``"gate"``
    (regressions beyond the band fail the run).  A baseline comparable
    to the current run must share backend and worker count; otherwise
    the run is treated as baseline-less.
    """
    if mode not in ("report", "gate"):
        raise ValueError(f"mode must be 'report' or 'gate', got {mode!r}")
    store = store if store is not None else BaselineStore()
    run = run_wall_suite(k=k, backend=backend, n_workers=n_workers)
    report = WallReport(run=run, enforced=(mode == "gate"))

    baseline_key = store.resolve(WALL_BASELINE_NAME)
    baseline: dict[str, Any] = {}
    if baseline_key is not None:
        candidate = store.get(baseline_key)
        if (
            candidate.get("backend") == backend
            and candidate.get("n_workers") == n_workers
        ):
            baseline = candidate
            report.baseline_key = baseline_key
    report.verdicts = compare_wall(run, baseline, threshold)

    if update_baseline or (not baseline and not report.regressions):
        report.baseline_key = store.put(
            run.payload(), name=WALL_BASELINE_NAME
        )
        report.baseline_updated = True
    return report


def render_wall(report: WallReport) -> str:
    """Plain-text table of a wall-gate run, noise band included."""
    from repro.bench.harness import format_seconds, format_table

    rows = []
    for v in report.verdicts:
        ratio = f"{v.ratio * 100:+.1f}%" if v.ratio is not None else "-"
        rows.append(
            [
                v.probe,
                format_seconds(v.baseline_median)
                if v.baseline_median is not None
                else "-",
                format_seconds(v.current_median),
                ratio,
                f"±{v.band * 100:.0f}%",
                "REGRESSED" if v.regressed else "ok",
            ]
        )
    mode = "gate" if report.enforced else "report-only"
    table = format_table(
        ["probe", "baseline", "median", "delta", "noise band", "status"],
        rows,
        title=(
            f"wall-clock gate [{mode}] (backend {report.run.backend},"
            f" {report.run.n_workers} workers, median of {report.run.k},"
            f" baseline {report.baseline_key or 'none'})"
        ),
    )
    if report.regressions:
        names = ", ".join(v.probe for v in report.regressions)
        verdict = (
            f"WALL GATE FAILED — regressed probes: {names}"
            if report.enforced
            else f"wall regression beyond band (report-only): {names}"
        )
    else:
        verdict = "wall gate within noise band"
    if report.baseline_updated:
        verdict = f"{verdict} (baseline updated -> {report.baseline_key})"
    return f"{table}\n{verdict}"
