"""Run manifests: the identity card of one telemetry export.

A manifest pins down *what* produced a telemetry file — the git
revision, a content hash of the run configuration, the dataset and
seed — plus the run's headline totals (simulated and wall seconds,
record counts).  Two runs are comparable (``repro diff``,
``repro perf-gate``) exactly when their config hashes match; the
``run_id`` is a content address over the deterministic fields, so the
same code on the same configuration produces the same id and a perf
regression shows up as identical ids with diverging stage times.

Wall-clock totals are recorded for context but excluded from the
``run_id`` — they vary per machine while the simulated totals do not.
"""

from __future__ import annotations

import functools
import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Record type of a manifest inside a telemetry JSONL stream.
MANIFEST_RECORD_TYPE = "manifest"

#: Meta keys that identify the run's configuration (hashed into
#: ``config_hash``; everything else in the session meta is context).
_VOLATILE_META_KEYS = frozenset({"type", "telemetry_version"})


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any, length: int = 16) -> str:
    """Hex content address of a JSON-able payload."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:length]


@functools.lru_cache(maxsize=1)
def git_sha(short: bool = True) -> str:
    """Revision of the source tree, or ``"unknown"`` outside a checkout.

    Resolved against the package's own location, not the process cwd —
    the manifest identifies the *code* that ran, wherever it ran from.
    """
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            cmd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=True,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if sha else "unknown"


def config_hash(meta: dict[str, Any]) -> str:
    """Content hash of a run's configuration metadata."""
    stable = {
        k: v for k, v in meta.items() if k not in _VOLATILE_META_KEYS
    }
    return content_hash(stable)


@dataclass(frozen=True)
class RunManifest:
    """Identity and headline totals of one telemetry export.

    Attributes:
        git_sha: source revision the run was produced from.
        config_hash: content hash of the session's config metadata.
        command: producing command or benchmark name (from the meta).
        dataset: graph/dataset label (from the meta), if any.
        seed: RNG seed (from the meta), if any.
        sim_seconds_total: final position of the simulated clock.
        wall_seconds_total: wall seconds covered by root spans.
        n_spans / n_metrics / n_events: record counts of the export.
        extra: any additional identifying fields.
    """

    git_sha: str
    config_hash: str
    command: str | None = None
    dataset: str | None = None
    seed: int | None = None
    sim_seconds_total: float = 0.0
    wall_seconds_total: float = 0.0
    n_spans: int = 0
    n_metrics: int = 0
    n_events: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def run_id(self) -> str:
        """Content address over the deterministic manifest fields."""
        return content_hash(
            {
                "git_sha": self.git_sha,
                "config_hash": self.config_hash,
                "command": self.command,
                "dataset": self.dataset,
                "seed": self.seed,
                "sim_seconds_total": self.sim_seconds_total,
                "n_spans": self.n_spans,
                "n_metrics": self.n_metrics,
                "n_events": self.n_events,
            }
        )

    def to_record(self) -> dict[str, Any]:
        """Serialize as the JSONL manifest record."""
        return {
            "type": MANIFEST_RECORD_TYPE,
            "run_id": self.run_id,
            "git_sha": self.git_sha,
            "config_hash": self.config_hash,
            "command": self.command,
            "dataset": self.dataset,
            "seed": self.seed,
            "sim_seconds_total": self.sim_seconds_total,
            "wall_seconds_total": self.wall_seconds_total,
            "n_spans": self.n_spans,
            "n_metrics": self.n_metrics,
            "n_events": self.n_events,
            **{k: v for k, v in self.extra.items() if k != "type"},
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its JSONL record."""
        known = {
            "git_sha", "config_hash", "command", "dataset", "seed",
            "sim_seconds_total", "wall_seconds_total", "n_spans",
            "n_metrics", "n_events",
        }
        extra = {
            k: v
            for k, v in record.items()
            if k not in known and k not in ("type", "run_id")
        }
        return cls(
            git_sha=record.get("git_sha", "unknown"),
            config_hash=record.get("config_hash", ""),
            command=record.get("command"),
            dataset=record.get("dataset"),
            seed=record.get("seed"),
            sim_seconds_total=record.get("sim_seconds_total", 0.0),
            wall_seconds_total=record.get("wall_seconds_total", 0.0),
            n_spans=record.get("n_spans", 0),
            n_metrics=record.get("n_metrics", 0),
            n_events=record.get("n_events", 0),
            extra=extra,
        )


def build_manifest(
    meta: dict[str, Any],
    span_records: list[dict[str, Any]],
    metric_records: list[dict[str, Any]],
    event_records: list[dict[str, Any]],
    sim_seconds_total: float,
) -> RunManifest:
    """Assemble a manifest from a session's parts.

    The dataset label is taken from the meta's ``graph`` (CLI) or
    ``benchmark`` (bench suite) key; wall totals sum the root spans so
    nested spans are not double counted.
    """
    wall_total = sum(
        s.get("wall_seconds", 0.0)
        for s in span_records
        if s.get("parent_id") is None
    )
    seed = meta.get("seed")
    return RunManifest(
        git_sha=git_sha(),
        config_hash=config_hash(meta),
        command=meta.get("command") or meta.get("benchmark"),
        dataset=meta.get("graph") or meta.get("dataset"),
        seed=int(seed) if seed is not None else None,
        sim_seconds_total=float(sim_seconds_total),
        wall_seconds_total=float(wall_total),
        n_spans=len(span_records),
        n_metrics=len(metric_records),
        n_events=len(event_records),
    )


def manifest_from_records(
    records: list[dict[str, Any]],
) -> RunManifest | None:
    """Extract the manifest from a telemetry record stream, if present."""
    for record in records:
        if record.get("type") == MANIFEST_RECORD_TYPE:
            return RunManifest.from_record(record)
    return None
