"""Hierarchical profile aggregation over finished spans.

Folds the flat span records of a telemetry export back into a
flamegraph-style tree: nodes are span *paths* (the stack of span names
from the root), carrying call counts plus total and self time on both
clocks.  ``collapsed_stacks`` emits the standard collapsed-stack text
format (``root;child;leaf <count>``) consumable by flamegraph.pl,
speedscope, inferno et al.; ``hot_spans`` ranks nodes by self time for
the ``repro report`` hot-span table.

Simulated-time accounting is interval based.  The tracer's sim cursor
is monotonic, so a genuinely nested span's ``[sim_start, sim_end]``
interval always lies inside its parent's.  Annotation spans recorded
with ``SpanTracer.record(advance=False)`` (e.g. the Fig. 7(a) per-step
summary copies under ``spmm_steps``) claim simulated time the cursor
never advanced through; clipping every span's interval to its parent's
*effective* interval zeroes those out, which is what makes the headline
invariant hold: **the self times of all nodes sum exactly to the run's
total simulated seconds** (the property test in
``tests/test_observatory_profile.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: Synthetic root node name (the "all roots" aggregate).
ROOT_NAME = "run"


@dataclass
class ProfileNode:
    """One aggregated span path in the profile tree.

    Attributes:
        name: span name of the last path element.
        path: full stack of span names from the root.
        calls: how many spans folded into this node.
        sim_total / wall_total: seconds including children.
        sim_self / wall_self: seconds net of children.
        children: child nodes keyed by name, insertion ordered.
    """

    name: str
    path: tuple[str, ...]
    calls: int = 0
    sim_total: float = 0.0
    sim_self: float = 0.0
    wall_total: float = 0.0
    wall_self: float = 0.0
    children: dict[str, "ProfileNode"] = field(default_factory=dict)

    def child(self, name: str) -> "ProfileNode":
        """Get or create a child node."""
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name=name, path=self.path + (name,))
            self.children[name] = node
        return node

    def walk(self) -> Iterator["ProfileNode"]:
        """Yield this node and every descendant, depth first."""
        yield self
        for child in self.children.values():
            yield from child.walk()


def _clip(
    start: float, end: float, lo: float, hi: float
) -> tuple[float, float]:
    """Intersect one interval with another (empty -> zero length)."""
    s = max(start, lo)
    e = min(end, hi)
    return (s, e) if e > s else (s, s)


def build_profile(span_records: list[dict[str, Any]]) -> ProfileNode:
    """Fold span records into the aggregated profile tree.

    Records missing ids or timing fields are tolerated (skipped or
    treated as zero length) so adversarial telemetry cannot crash the
    renderer.  Spans arrive in creation order (parents before
    children), which the single pass below relies on.
    """
    root = ProfileNode(name=ROOT_NAME, path=(ROOT_NAME,))
    # Per concrete span: its clipped sim/wall intervals and tree node,
    # so children can clip against and subtract from their parent.
    by_id: dict[int, dict[str, Any]] = {}
    for record in span_records:
        name = record.get("name")
        if not isinstance(name, str) or not name:
            continue
        sim_start = float(record.get("sim_start", 0.0) or 0.0)
        sim_len = max(0.0, float(record.get("sim_seconds", 0.0) or 0.0))
        wall_len = max(0.0, float(record.get("wall_seconds", 0.0) or 0.0))
        parent_id = record.get("parent_id")
        parent = by_id.get(parent_id) if parent_id is not None else None
        if parent is not None:
            sim_lo, sim_hi = parent["sim_interval"]
            sim_start, sim_end = _clip(
                sim_start, sim_start + sim_len, sim_lo, sim_hi
            )
            wall_eff = min(wall_len, parent["wall_remaining"])
            node = parent["node"].child(name)
        else:
            sim_end = sim_start + sim_len
            wall_eff = wall_len
            node = root.child(name)
        sim_eff = sim_end - sim_start
        node.calls += 1
        node.sim_total += sim_eff
        node.sim_self += sim_eff
        node.wall_total += wall_eff
        node.wall_self += wall_eff
        if parent is not None:
            # Self time is what children leave behind.
            parent["node"].sim_self -= sim_eff
            parent["node"].wall_self -= wall_eff
            parent["wall_remaining"] -= wall_eff
        span_id = record.get("span_id")
        if isinstance(span_id, int):
            by_id[span_id] = {
                "node": node,
                "sim_interval": (sim_start, sim_end),
                "wall_remaining": wall_eff,
            }
    # Roll the per-root totals up into the synthetic root.
    for top in root.children.values():
        root.calls += top.calls
        root.sim_total += top.sim_total
        root.wall_total += top.wall_total
    return root


def total_sim_seconds(profile: ProfileNode) -> float:
    """Total simulated seconds covered by the profile."""
    return profile.sim_total


def self_sim_sum(profile: ProfileNode) -> float:
    """Sum of per-node simulated self times (== total by construction)."""
    return sum(node.sim_self for node in profile.walk())


def collapsed_stacks(
    profile: ProfileNode,
    clock: str = "sim",
    unit: float = 1e-9,
) -> str:
    """Render the collapsed-stack text form of a profile.

    One line per node with nonzero self time:
    ``run;embed;factorization 1234567``, where the count is the node's
    self seconds expressed in ``unit``-second ticks (default:
    nanoseconds), rounded to an integer as flamegraph tooling expects.
    Rounding error is bounded by half a tick per emitted line.
    """
    if clock not in ("sim", "wall"):
        raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
    attr = "sim_self" if clock == "sim" else "wall_self"
    lines = []
    for node in profile.walk():
        ticks = round(getattr(node, attr) / unit)
        if ticks > 0:
            lines.append(f"{';'.join(node.path)} {ticks}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_collapsed(
    profile: ProfileNode,
    path: str | Path,
    clock: str = "sim",
    unit: float = 1e-9,
) -> Path:
    """Write the collapsed-stack rendering to a file."""
    path = Path(path)
    path.write_text(collapsed_stacks(profile, clock, unit), encoding="utf-8")
    return path


def parse_collapsed(text: str, unit: float = 1e-9) -> dict[tuple[str, ...], float]:
    """Parse collapsed-stack text back into ``{path: self_seconds}``."""
    out: dict[tuple[str, ...], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        out[tuple(stack.split(";"))] = float(count) * unit
    return out


def hot_spans(profile: ProfileNode, top_n: int = 10) -> list[ProfileNode]:
    """The ``top_n`` nodes by simulated self time, hottest first.

    The synthetic root is excluded; ties break toward shallower paths
    so the ordering is deterministic.
    """
    nodes = [node for node in profile.walk() if node.path != (ROOT_NAME,)]
    nodes.sort(key=lambda n: (-n.sim_self, len(n.path), n.path))
    return nodes[:top_n]
