"""The performance observatory: cross-run analysis of telemetry exports.

Single-run telemetry (:mod:`repro.obs`) answers "where did this run's
time go"; the observatory compares runs *over time* — the machinery
that keeps the paper's cross-configuration ratios (Fig. 12/13/16)
honest as the codebase grows:

- :mod:`~repro.obs.observatory.manifest` — run manifests (git SHA,
  config hash, dataset, seed, sim/wall totals) stamped into every
  telemetry export;
- :mod:`~repro.obs.observatory.store` — the content-addressed baseline
  store under ``benchmarks/baselines/`` (immutable objects, movable
  named refs);
- :mod:`~repro.obs.observatory.diff` — per-stage / per-metric deltas
  between two runs with a regression threshold (``repro diff``);
- :mod:`~repro.obs.observatory.profile` — the hierarchical span
  aggregator and collapsed-stack flamegraph export (``repro profile``);
- :mod:`~repro.obs.observatory.slo` — declarative SLOs with
  error-budget burn rates over serve telemetry
  (``repro serve-sim --slo``);
- :mod:`~repro.obs.observatory.perfgate` — the pinned micro-bench
  suite, baseline comparison and ``BENCH_omega.json`` trajectory
  (``repro perf-gate``, run as a CI job);
- :mod:`~repro.obs.observatory.wallgate` — the opt-in wall-clock arm:
  median-of-k real-kernel timings gated with noise bands derived from
  the stored baseline's dispersion (``repro perf-gate --wall``);
- :mod:`~repro.obs.observatory.trend` — per-series trajectories with
  sparklines over the accumulated ``BENCH_omega.json`` perf history
  (``repro trend``).

Everything here is pure post-processing of exported JSONL records; no
embedding numerics are touched.
"""

from repro.obs.observatory.diff import (
    DeltaRow,
    DiffReport,
    diff_runs,
    render_diff,
)
from repro.obs.observatory.manifest import (
    RunManifest,
    build_manifest,
    config_hash,
    content_hash,
    git_sha,
    manifest_from_records,
)
from repro.obs.observatory.perfgate import (
    GateReport,
    GateRun,
    append_trajectory_point,
    render_gate,
    run_perf_gate,
    run_suite,
)
from repro.obs.observatory.profile import (
    ProfileNode,
    build_profile,
    collapsed_stacks,
    hot_spans,
    parse_collapsed,
    write_collapsed,
)
from repro.obs.observatory.slo import (
    ObjectiveResult,
    SLOObjective,
    SLOReport,
    SLOSpec,
    evaluate_slo,
    render_slo,
)
from repro.obs.observatory.store import BaselineStore
from repro.obs.observatory.trend import (
    load_trajectory,
    render_trend,
    sparkline,
    trajectory_series,
)
from repro.obs.observatory.wallgate import (
    WallProbe,
    WallReport,
    WallRun,
    WallVerdict,
    render_wall,
    run_wall_gate,
    run_wall_suite,
)

__all__ = [
    "BaselineStore",
    "DeltaRow",
    "DiffReport",
    "GateReport",
    "GateRun",
    "ObjectiveResult",
    "ProfileNode",
    "RunManifest",
    "SLOObjective",
    "SLOReport",
    "SLOSpec",
    "WallProbe",
    "WallReport",
    "WallRun",
    "WallVerdict",
    "append_trajectory_point",
    "build_manifest",
    "build_profile",
    "collapsed_stacks",
    "config_hash",
    "content_hash",
    "diff_runs",
    "evaluate_slo",
    "git_sha",
    "hot_spans",
    "load_trajectory",
    "manifest_from_records",
    "parse_collapsed",
    "render_diff",
    "render_gate",
    "render_slo",
    "render_trend",
    "render_wall",
    "run_perf_gate",
    "run_suite",
    "run_wall_gate",
    "run_wall_suite",
    "sparkline",
    "trajectory_series",
    "write_collapsed",
]
