"""Declarative SLOs with error-budget burn rates over serve telemetry.

An SLO spec is a JSON document of objectives evaluated against the
metric records a :mod:`repro.serve` replay exports:

.. code-block:: json

    {"objectives": [
      {"name": "interactive-p99", "kind": "latency_quantile",
       "q": 0.99, "target": 0.002, "klass": "interactive"},
      {"name": "served", "kind": "served_fraction", "target": 0.9},
      {"name": "shed", "kind": "status_fraction", "status": "shed",
       "target": 0.05},
      {"name": "breaker", "kind": "breaker_trips", "target": 3}
    ]}

Kinds:

- ``latency_quantile`` — the q-quantile of the ``serve.latency``
  histograms (optionally one request class) must stay at or below
  ``target`` seconds.  The error budget is the ``1 - q`` tail mass; the
  burn rate is the observed fraction of requests over the target
  divided by that budget (1.0 = exactly spending the budget).
- ``served_fraction`` — served / submitted must be at least ``target``;
  budget ``1 - target``, burned by the non-served fraction.
- ``status_fraction`` — at most ``target`` of submitted requests may
  end in ``status`` (shed, deadline_exceeded, failed); budget is
  ``target`` itself.
- ``breaker_trips`` — at most ``target`` circuit-breaker trips; burn is
  trips / target.
- ``stage_seconds`` — the simulated seconds of one pipeline stage
  (spans named ``stage``, summed over the export) must stay at or below
  ``target`` — the embed pipeline's per-stage budget; burn is
  observed / target.
- ``checkpoint_overhead_fraction`` — the checkpointing layer's
  simulated seconds (``checkpoint.sim_seconds``) as a fraction of the
  embedding pipeline's (``embed.sim_seconds``) must stay at or below
  ``target``; burn is fraction / target.
- ``staleness_bound`` — the worst checkpoint staleness any lookup
  observed (the ``shard.staleness_max`` gauge the background
  checkpointer maintains, in table versions) must stay at or below
  ``target``; burn is observed / target.  This is the objective the
  online-resilience layer's background checkpoint refresh exists to
  hold.

Burn rates above 1.0 mean the objective's budget is exhausted — the
pass/fail flag and the burn rate always agree on which side of the
budget a run landed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.metrics import Histogram

#: Recognised objective kinds.
SLO_KINDS = (
    "latency_quantile",
    "served_fraction",
    "status_fraction",
    "breaker_trips",
    "stage_seconds",
    "checkpoint_overhead_fraction",
    "staleness_bound",
)


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective.

    Attributes:
        name: label shown in reports.
        kind: one of :data:`SLO_KINDS`.
        target: threshold — seconds for ``latency_quantile``, a
            fraction for the fraction kinds, a count for
            ``breaker_trips``.
        q: quantile in (0, 1) (``latency_quantile`` only).
        klass: restrict to one request class (``latency_quantile``).
        status: response status to bound (``status_fraction`` only).
        stage: span name whose sim seconds are budgeted
            (``stage_seconds`` only).
    """

    name: str
    kind: str
    target: float
    q: float | None = None
    klass: str | None = None
    status: str | None = None
    stage: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; expected one of {SLO_KINDS}"
            )
        if self.kind == "latency_quantile":
            if self.q is None or not 0.0 < self.q < 1.0:
                raise ValueError(
                    f"latency_quantile needs q in (0, 1), got {self.q}"
                )
            if self.target <= 0:
                raise ValueError(f"target must be > 0 s, got {self.target}")
        elif self.kind in (
            "served_fraction",
            "status_fraction",
            "checkpoint_overhead_fraction",
        ):
            if not 0.0 <= self.target <= 1.0:
                raise ValueError(
                    f"{self.kind} target must be in [0, 1], got {self.target}"
                )
            if self.kind == "status_fraction" and not self.status:
                raise ValueError("status_fraction needs a response status")
        elif self.kind == "stage_seconds":
            if not self.stage:
                raise ValueError("stage_seconds needs a span (stage) name")
            if self.target <= 0:
                raise ValueError(f"target must be > 0 s, got {self.target}")
        elif self.target < 0:
            raise ValueError(f"target must be >= 0, got {self.target}")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
        }
        for key in ("q", "klass", "status", "stage"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SLOObjective":
        return cls(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            target=float(payload["target"]),
            q=float(payload["q"]) if payload.get("q") is not None else None,
            klass=payload.get("klass"),
            status=payload.get("status"),
            stage=payload.get("stage"),
        )


@dataclass(frozen=True)
class SLOSpec:
    """A named bundle of objectives."""

    objectives: tuple[SLOObjective, ...]
    name: str = "slo"

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SLOSpec":
        objectives = tuple(
            SLOObjective.from_dict(o) for o in payload.get("objectives", ())
        )
        if not objectives:
            raise ValueError("SLO spec declares no objectives")
        return cls(objectives=objectives, name=payload.get("name", "slo"))

    @classmethod
    def load(cls, path: str | Path) -> "SLOSpec":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        payload = {
            "name": self.name,
            "objectives": [o.to_dict() for o in self.objectives],
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        return path


@dataclass(frozen=True)
class ObjectiveResult:
    """Evaluation outcome of one objective."""

    objective: SLOObjective
    value: float
    passed: bool
    burn_rate: float
    detail: str = ""


@dataclass
class SLOReport:
    """All objective results of one evaluation."""

    spec: SLOSpec
    results: list[ObjectiveResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did every objective pass?"""
        return all(r.passed for r in self.results)

    @property
    def violations(self) -> list[ObjectiveResult]:
        return [r for r in self.results if not r.passed]


def _metric_records(
    records: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    return [r for r in records if r.get("type") == "metric"]


def _counter_total(
    records: list[dict[str, Any]],
    name: str,
    labels: dict[str, str] | None = None,
) -> float:
    total = 0.0
    for record in _metric_records(records):
        if record.get("name") != name:
            continue
        if record.get("kind") not in ("counter", "gauge"):
            continue
        record_labels = record.get("labels") or {}
        if labels and any(
            str(record_labels.get(k)) != str(v) for k, v in labels.items()
        ):
            continue
        total += float(record.get("value", 0.0) or 0.0)
    return total


def _merged_latency_histogram(
    records: list[dict[str, Any]], klass: str | None
) -> Histogram | None:
    """Rebuild (and merge) the exported ``serve.latency`` histograms."""
    merged: Histogram | None = None
    for record in _metric_records(records):
        if record.get("name") != "serve.latency":
            continue
        if record.get("kind") != "histogram":
            continue
        labels = record.get("labels") or {}
        if klass is not None and labels.get("klass") != klass:
            continue
        bounds = tuple(record.get("bounds") or ())
        if not bounds:
            continue
        if merged is None:
            merged = Histogram("serve.latency", {}, buckets=bounds)
        elif merged.bounds != tuple(sorted(float(b) for b in bounds)):
            raise ValueError(
                "serve.latency histograms use mismatched buckets;"
                " cannot merge for SLO evaluation"
            )
        counts = record.get("bucket_counts") or []
        for i, c in enumerate(counts[: len(merged.bucket_counts)]):
            merged.bucket_counts[i] += int(c)
        merged.count += int(record.get("count", 0) or 0)
        merged.sum += float(record.get("sum", 0.0) or 0.0)
        if record.get("min") is not None:
            merged.min = min(merged.min, float(record["min"]))
        if record.get("max") is not None:
            merged.max = max(merged.max, float(record["max"]))
    return merged


def _evaluate_latency(
    objective: SLOObjective, records: list[dict[str, Any]]
) -> ObjectiveResult:
    hist = _merged_latency_histogram(records, objective.klass)
    if hist is None or hist.count == 0:
        return ObjectiveResult(
            objective=objective,
            value=math.nan,
            passed=True,
            burn_rate=0.0,
            detail="no latency observations",
        )
    value = hist.quantile(objective.q)
    budget = 1.0 - objective.q
    bad = hist.fraction_over(objective.target)
    burn = bad / budget if budget > 0 else math.inf
    return ObjectiveResult(
        objective=objective,
        value=value,
        passed=value <= objective.target,
        burn_rate=burn,
        detail=f"{hist.count} observations, {bad * 100:.2f}% over target",
    )


def _evaluate_served_fraction(
    objective: SLOObjective, records: list[dict[str, Any]]
) -> ObjectiveResult:
    submitted = _counter_total(records, "serve.submitted")
    served = _counter_total(records, "serve.responses", {"status": "served"})
    if submitted == 0:
        return ObjectiveResult(
            objective=objective,
            value=math.nan,
            passed=True,
            burn_rate=0.0,
            detail="no requests submitted",
        )
    value = served / submitted
    budget = 1.0 - objective.target
    bad = 1.0 - value
    if budget > 0:
        burn = bad / budget
    else:
        burn = 0.0 if bad == 0 else math.inf
    return ObjectiveResult(
        objective=objective,
        value=value,
        passed=value >= objective.target,
        burn_rate=burn,
        detail=f"{served:.0f}/{submitted:.0f} served",
    )


def _evaluate_status_fraction(
    objective: SLOObjective, records: list[dict[str, Any]]
) -> ObjectiveResult:
    submitted = _counter_total(records, "serve.submitted")
    bad_count = _counter_total(
        records, "serve.responses", {"status": objective.status}
    )
    if submitted == 0:
        return ObjectiveResult(
            objective=objective,
            value=math.nan,
            passed=True,
            burn_rate=0.0,
            detail="no requests submitted",
        )
    value = bad_count / submitted
    if objective.target > 0:
        burn = value / objective.target
    else:
        burn = 0.0 if value == 0 else math.inf
    return ObjectiveResult(
        objective=objective,
        value=value,
        passed=value <= objective.target,
        burn_rate=burn,
        detail=f"{bad_count:.0f}/{submitted:.0f} {objective.status}",
    )


def _evaluate_breaker_trips(
    objective: SLOObjective, records: list[dict[str, Any]]
) -> ObjectiveResult:
    trips = _counter_total(records, "serve.breaker.trips")
    if objective.target > 0:
        burn = trips / objective.target
    else:
        burn = 0.0 if trips == 0 else math.inf
    return ObjectiveResult(
        objective=objective,
        value=trips,
        passed=trips <= objective.target,
        burn_rate=burn,
        detail=f"{trips:.0f} trips",
    )


def _evaluate_stage_seconds(
    objective: SLOObjective, records: list[dict[str, Any]]
) -> ObjectiveResult:
    seconds = 0.0
    n_spans = 0
    for record in records:
        if record.get("type") != "span":
            continue
        if record.get("name") != objective.stage:
            continue
        seconds += float(record.get("sim_seconds", 0.0) or 0.0)
        n_spans += 1
    if n_spans == 0:
        return ObjectiveResult(
            objective=objective,
            value=math.nan,
            passed=True,
            burn_rate=0.0,
            detail=f"no {objective.stage!r} spans",
        )
    burn = seconds / objective.target if objective.target > 0 else math.inf
    return ObjectiveResult(
        objective=objective,
        value=seconds,
        passed=seconds <= objective.target,
        burn_rate=burn,
        detail=f"{n_spans} span(s)",
    )


def _evaluate_checkpoint_overhead(
    objective: SLOObjective, records: list[dict[str, Any]]
) -> ObjectiveResult:
    checkpoint = _counter_total(records, "checkpoint.sim_seconds")
    embed = _counter_total(records, "embed.sim_seconds")
    if embed == 0:
        return ObjectiveResult(
            objective=objective,
            value=math.nan,
            passed=True,
            burn_rate=0.0,
            detail="no embed.sim_seconds recorded",
        )
    value = checkpoint / embed
    if objective.target > 0:
        burn = value / objective.target
    else:
        burn = 0.0 if value == 0 else math.inf
    return ObjectiveResult(
        objective=objective,
        value=value,
        passed=value <= objective.target,
        burn_rate=burn,
        detail=f"{checkpoint:.4g}s checkpoint / {embed:.4g}s embed",
    )


def _evaluate_staleness_bound(
    objective: SLOObjective, records: list[dict[str, Any]]
) -> ObjectiveResult:
    observed: float | None = None
    for record in _metric_records(records):
        if record.get("name") != "shard.staleness_max":
            continue
        if record.get("kind") not in ("counter", "gauge"):
            continue
        value = float(record.get("value", 0.0) or 0.0)
        observed = value if observed is None else max(observed, value)
    if observed is None:
        return ObjectiveResult(
            objective=objective,
            value=math.nan,
            passed=True,
            burn_rate=0.0,
            detail="no shard.staleness_max recorded",
        )
    if objective.target > 0:
        burn = observed / objective.target
    else:
        burn = 0.0 if observed == 0 else math.inf
    return ObjectiveResult(
        objective=objective,
        value=observed,
        passed=observed <= objective.target,
        burn_rate=burn,
        detail=f"max lag {observed:.0f} version(s)",
    )


_EVALUATORS = {
    "latency_quantile": _evaluate_latency,
    "served_fraction": _evaluate_served_fraction,
    "status_fraction": _evaluate_status_fraction,
    "breaker_trips": _evaluate_breaker_trips,
    "stage_seconds": _evaluate_stage_seconds,
    "checkpoint_overhead_fraction": _evaluate_checkpoint_overhead,
    "staleness_bound": _evaluate_staleness_bound,
}


def evaluate_slo(
    records: list[dict[str, Any]], spec: SLOSpec
) -> SLOReport:
    """Evaluate every objective of a spec over telemetry records."""
    report = SLOReport(spec=spec)
    for objective in spec.objectives:
        report.results.append(_EVALUATORS[objective.kind](objective, records))
    return report


def render_slo(report: SLOReport) -> str:
    """Plain-text table of an SLO evaluation."""
    from repro.bench.harness import format_seconds, format_table

    rows = []
    for result in report.results:
        objective = result.objective
        if objective.kind in ("latency_quantile", "stage_seconds"):
            value = (
                format_seconds(result.value)
                if not math.isnan(result.value)
                else "-"
            )
            target = format_seconds(objective.target)
        elif objective.kind in ("breaker_trips", "staleness_bound"):
            value = (
                f"{result.value:.0f}"
                if not math.isnan(result.value)
                else "-"
            )
            target = f"{objective.target:.0f}"
        else:
            value = (
                f"{result.value * 100:.2f}%"
                if not math.isnan(result.value)
                else "-"
            )
            target = f"{objective.target * 100:.2f}%"
        burn = (
            f"{result.burn_rate:.2f}x"
            if math.isfinite(result.burn_rate)
            else "inf"
        )
        rows.append(
            [
                objective.name,
                objective.kind,
                value,
                target,
                burn,
                "PASS" if result.passed else "FAIL",
                result.detail,
            ]
        )
    table = format_table(
        ["objective", "kind", "value", "target", "burn", "status", "detail"],
        rows,
        title=f"SLO evaluation: {report.spec.name}",
    )
    verdict = (
        "all objectives met"
        if report.ok
        else f"{len(report.violations)} objective(s) VIOLATED: "
        + ", ".join(r.objective.name for r in report.violations)
    )
    return f"{table}\n{verdict}"
