"""Perf-history trends over the ``BENCH_omega.json`` trajectory.

``repro trend`` turns the append-only trajectory (perf-gate points with
their ``stages`` dicts, ``bench_parallel_scaling`` points with nested
per-worker measurements) into per-series trajectories and renders each
as a first/last/delta row with a unicode sparkline — the ten-second
answer to "is the cost model drifting commit over commit?".

The trajectory is heterogeneous by design: every producer appends its
own point shape.  Series extraction is therefore shape-aware but
lenient — unknown point shapes contribute nothing rather than failing,
so a new producer never breaks ``repro trend`` retroactively.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Ramp used for sparklines, lowest to highest.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def load_trajectory(path: str | Path) -> list[dict[str, Any]]:
    """Load a trajectory file; missing file is an empty history."""
    path = Path(path)
    if not path.is_file():
        return []
    loaded = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(loaded, list):
        raise ValueError(
            f"trajectory {path} is not a JSON list (got {type(loaded).__name__})"
        )
    return [p for p in loaded if isinstance(p, dict)]


def extract_point_series(point: dict[str, Any]) -> dict[str, float]:
    """Flatten one trajectory point into named numeric series.

    Perf-gate points contribute ``stages.<name>`` plus
    ``attribution.<class/category>`` (the serve stage's tail-latency
    blame fractions); benchmark points with a nested ``points`` list
    (``bench_parallel_scaling``) contribute
    ``<suite>.<backend>.w<workers>.<field>``.  Anything unrecognized is
    skipped.
    """
    out: dict[str, float] = {}
    stages = point.get("stages")
    if isinstance(stages, dict):
        for name, value in stages.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"stages.{name}"] = float(value)
    attribution = point.get("attribution")
    if isinstance(attribution, dict):
        for name, value in attribution.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"attribution.{name}"] = float(value)
    inner = point.get("points")
    if isinstance(inner, list):
        suite = point.get("suite") or "bench"
        for sub in inner:
            if not isinstance(sub, dict):
                continue
            backend = sub.get("backend", "?")
            workers = sub.get("workers", "?")
            for field in (
                "kernel_wall_s",
                "cold_wall_s",
                "plan_overhead_s",
                "speedup",
            ):
                value = sub.get(field)
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    out[f"{suite}.{backend}.w{workers}.{field}"] = float(value)
    return out


def trajectory_series(
    points: list[dict[str, Any]],
) -> dict[str, list[float]]:
    """Per-series value sequences, in trajectory (append) order.

    A series only advances on points that carry it, so perf-gate and
    benchmark histories interleave without padding each other with
    gaps.
    """
    series: dict[str, list[float]] = {}
    for point in points:
        for name, value in extract_point_series(point).items():
            series.setdefault(name, []).append(value)
    return series


def sparkline(values: list[float]) -> str:
    """Min-max scaled unicode sparkline; flat series render mid-ramp."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return SPARK_CHARS[len(SPARK_CHARS) // 2] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
        out.append(SPARK_CHARS[idx])
    return "".join(out)


def render_trend(
    points: list[dict[str, Any]], prefix: str | None = None
) -> str:
    """Plain-text trend table over a loaded trajectory.

    ``prefix`` filters the series (``stages.`` shows only the perf-gate
    history).  Each row: series, sample count, first, last, relative
    change first->last, sparkline.
    """
    from repro.bench.harness import format_table

    series = trajectory_series(points)
    if prefix:
        series = {k: v for k, v in series.items() if k.startswith(prefix)}
    if not series:
        return "no trajectory series" + (
            f" matching prefix {prefix!r}" if prefix else ""
        )
    rows = []
    for name in sorted(series):
        values = series[name]
        first, last = values[0], values[-1]
        if first != 0.0:
            delta = f"{(last - first) / abs(first) * 100:+.1f}%"
        else:
            delta = "-"
        rows.append(
            [
                name,
                str(len(values)),
                f"{first:.6g}",
                f"{last:.6g}",
                delta,
                sparkline(values),
            ]
        )
    return format_table(
        ["series", "n", "first", "last", "delta", "trend"],
        rows,
        title=f"trajectory trends ({len(points)} points)",
    )
