"""Telemetry diffing: per-stage and per-metric deltas between two runs.

``repro diff <run_a> <run_b>`` compares two telemetry exports (JSONL
files or stored baseline payloads) series by series:

- **stages** — simulated seconds aggregated per span name (the
  pipeline stages: ``graph_read``, ``factorization``, ``propagation``,
  …), where *more time is worse*;
- **costs** — the merged :class:`~repro.memsim.trace.CostTrace`
  categories (the Fig. 7(a) steps plus auxiliary costs), also
  time-like;
- **metrics** — counters and gauges, reported for context but never
  gated (the diff cannot know which direction is good).

A time-like series regresses when ``b > a * (1 + threshold)``; the
report collects every breach so the CLI can exit nonzero and *name*
the regressed stage, which is what keeps the paper's cross-
configuration ratios honest as the code evolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.observatory.manifest import RunManifest, manifest_from_records

#: Series groups a diff covers, in render order.
GROUP_STAGES = "stage"
GROUP_COSTS = "cost"
GROUP_PROFILE = "profile"
GROUP_PLACEMENT = "placement"
GROUP_ATTRIBUTION = "attribution"
GROUP_METRICS = "metric"

#: Row statuses.
STATUS_REGRESSED = "regressed"
STATUS_IMPROVED = "improved"
STATUS_UNCHANGED = "unchanged"
STATUS_ADDED = "added"
STATUS_REMOVED = "removed"


@dataclass(frozen=True)
class DeltaRow:
    """One compared series."""

    group: str
    name: str
    a: float | None
    b: float | None
    status: str

    @property
    def delta(self) -> float | None:
        """Absolute change b - a (None when either side is missing)."""
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def ratio(self) -> float | None:
        """Relative change (b - a) / a (None when undefined)."""
        if self.a is None or self.b is None or self.a == 0.0:
            return None
        return (self.b - self.a) / self.a


@dataclass
class DiffReport:
    """Everything one diff produced."""

    rows: list[DeltaRow] = field(default_factory=list)
    threshold: float = 0.05
    manifest_a: RunManifest | None = None
    manifest_b: RunManifest | None = None

    @property
    def regressions(self) -> list[DeltaRow]:
        """Rows that breached the regression threshold."""
        return [r for r in self.rows if r.status == STATUS_REGRESSED]

    @property
    def comparable(self) -> bool:
        """Do the two runs share a configuration (when both manifests exist)?"""
        if self.manifest_a is None or self.manifest_b is None:
            return True
        return self.manifest_a.config_hash == self.manifest_b.config_hash


def extract_stage_seconds(
    records: list[dict[str, Any]],
) -> dict[str, float]:
    """Simulated seconds per span name, aggregated over the export."""
    out: dict[str, float] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record.get("name")
        if not isinstance(name, str):
            continue
        out[name] = out.get(name, 0.0) + float(
            record.get("sim_seconds", 0.0) or 0.0
        )
    return out


def extract_cost_seconds(records: list[dict[str, Any]]) -> dict[str, float]:
    """Merged cost-ledger seconds per category."""
    from repro.obs.report import merged_cost_trace

    return {
        category: seconds
        for category, seconds in merged_cost_trace(records)
        .breakdown()
        .items()
        if seconds > 0.0
    }


def extract_profile_self_seconds(
    records: list[dict[str, Any]],
) -> dict[str, float]:
    """Per-node simulated *self* seconds keyed by profile path.

    Folds the export's spans through
    :func:`~repro.obs.observatory.profile.build_profile` so the diff
    sees hierarchical hot spots (``embed;factorization;spmm``) rather
    than flat per-name aggregates — the ``repro diff --profile`` view.
    Nodes with zero self time on both sides carry no signal and are
    dropped by the caller's set union.
    """
    from repro.obs.observatory.profile import ROOT_NAME, build_profile

    profile = build_profile(
        [r for r in records if r.get("type") == "span"]
    )
    out: dict[str, float] = {}
    for node in profile.walk():
        if node.path == (ROOT_NAME,):
            continue
        if node.sim_self > 0.0:
            out[";".join(node.path[1:])] = node.sim_self
    return out


def extract_placement_values(
    records: list[dict[str, Any]],
) -> dict[str, float]:
    """Shard-placement gauges: real vs simulated partitioner quality.

    Collects the ``shard.placement.*`` family the sharded backend
    publishes at warmup — per-shard ``rows`` / ``nnz`` and the
    ``balance`` / ``edge_cut`` scores of the real placement next to the
    DistDGL (random hash) and DistGER (workload-balanced) cost models —
    the ``repro diff --shard-placement`` view.  Balance and edge-cut are
    *lower-is-better* ratios, so the group is threshold-gated like the
    time series.
    """
    out: dict[str, float] = {}
    for record in records:
        if record.get("type") != "metric":
            continue
        name = record.get("name")
        if not isinstance(name, str) or not name.startswith(
            "shard.placement."
        ):
            continue
        labels = record.get("labels") or {}
        suffix = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        key = name[len("shard.placement."):]
        if suffix:
            key = f"{key}[{suffix}]"
        out[key] = float(record.get("value", 0.0) or 0.0)
    return out


def extract_attribution_values(
    records: list[dict[str, Any]],
) -> dict[str, float]:
    """Per-class tail-latency blame fractions from a telemetry export.

    Folds the ``serve.blame_seconds`` counter family (one series per
    request class x blame category, maintained by the serving loop even
    when no live stream is attached) into fractions of each class's
    total attributed seconds — the same numbers ``repro attribute``
    prints from a stream.  Keys look like ``interactive/queue``.
    Fractions rather than raw seconds, so two runs of different length
    still compare; a class whose latency *composition* shifts (say
    queue blame doubling at the expense of kernel) is what the
    ``repro diff --attribution`` gate catches.
    """
    seconds: dict[str, dict[str, float]] = {}
    for record in records:
        if record.get("type") != "metric":
            continue
        if record.get("name") != "serve.blame_seconds":
            continue
        labels = record.get("labels") or {}
        klass = str(labels.get("klass", "?"))
        category = str(labels.get("category", "?"))
        value = float(record.get("value", 0.0) or 0.0)
        seconds.setdefault(klass, {})[category] = (
            seconds.get(klass, {}).get(category, 0.0) + value
        )
    out: dict[str, float] = {}
    for klass, blame in seconds.items():
        total = sum(blame.values())
        if total <= 0.0:
            continue
        for category, value in blame.items():
            out[f"{klass}/{category}"] = value / total
    return out


def extract_metric_values(
    records: list[dict[str, Any]],
) -> dict[str, float]:
    """Counter/gauge values keyed by their full labelled name."""
    out: dict[str, float] = {}
    for record in records:
        if record.get("type") != "metric":
            continue
        if record.get("kind") not in ("counter", "gauge"):
            continue
        name = record.get("name")
        if not isinstance(name, str):
            continue
        labels = record.get("labels") or {}
        if labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            name = f"{name}{{{inner}}}"
        out[name] = float(record.get("value", 0.0) or 0.0)
    return out


def _diff_series(
    group: str,
    a: dict[str, float],
    b: dict[str, float],
    threshold: float,
    gated: bool,
) -> list[DeltaRow]:
    rows = []
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va is None:
            status = STATUS_ADDED
        elif vb is None:
            status = STATUS_REMOVED
        elif gated and vb > va * (1.0 + threshold):
            status = STATUS_REGRESSED
        elif gated and vb < va * (1.0 - threshold):
            status = STATUS_IMPROVED
        else:
            status = STATUS_UNCHANGED
        rows.append(DeltaRow(group=group, name=name, a=va, b=vb, status=status))
    return rows


def diff_runs(
    records_a: list[dict[str, Any]],
    records_b: list[dict[str, Any]],
    threshold: float = 0.05,
    include_profile: bool = False,
    include_placement: bool = False,
    include_attribution: bool = False,
) -> DiffReport:
    """Compare two telemetry exports; ``records_a`` is the baseline.

    With ``include_profile``, the hierarchical profiles are compared
    too: per-node simulated self-time deltas, threshold-gated like the
    stage series.  With ``include_placement``, the shard-placement
    gauges (real distribution vs the DistDGL/DistGER cost models) get
    their own gated group.  With ``include_attribution``, the per-class
    tail-latency blame fractions (``serve.blame_seconds``) get a gated
    group — a latency mix shifting toward queue or hedge blame fails
    the diff even when the totals look flat.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    report = DiffReport(
        threshold=threshold,
        manifest_a=manifest_from_records(records_a),
        manifest_b=manifest_from_records(records_b),
    )
    report.rows.extend(
        _diff_series(
            GROUP_STAGES,
            extract_stage_seconds(records_a),
            extract_stage_seconds(records_b),
            threshold,
            gated=True,
        )
    )
    report.rows.extend(
        _diff_series(
            GROUP_COSTS,
            extract_cost_seconds(records_a),
            extract_cost_seconds(records_b),
            threshold,
            gated=True,
        )
    )
    if include_profile:
        report.rows.extend(
            _diff_series(
                GROUP_PROFILE,
                extract_profile_self_seconds(records_a),
                extract_profile_self_seconds(records_b),
                threshold,
                gated=True,
            )
        )
    if include_placement:
        report.rows.extend(
            _diff_series(
                GROUP_PLACEMENT,
                extract_placement_values(records_a),
                extract_placement_values(records_b),
                threshold,
                gated=True,
            )
        )
    if include_attribution:
        report.rows.extend(
            _diff_series(
                GROUP_ATTRIBUTION,
                extract_attribution_values(records_a),
                extract_attribution_values(records_b),
                threshold,
                gated=True,
            )
        )
    report.rows.extend(
        _diff_series(
            GROUP_METRICS,
            extract_metric_values(records_a),
            extract_metric_values(records_b),
            threshold,
            gated=False,
        )
    )
    return report


def render_diff(report: DiffReport) -> str:
    """Plain-text rendering of a diff report."""
    from repro.bench.harness import format_seconds, format_table

    sections = []
    for manifest, label in (
        (report.manifest_a, "baseline"),
        (report.manifest_b, "candidate"),
    ):
        if manifest is not None:
            sections.append(
                f"{label}: run {manifest.run_id} @ {manifest.git_sha}"
                f" (config {manifest.config_hash},"
                f" dataset {manifest.dataset or '-'})"
            )
    if not report.comparable:
        sections.append(
            "WARNING: config hashes differ — the runs are not directly"
            " comparable; deltas mix configuration and code effects"
        )

    def fmt(group: str, value: float | None) -> str:
        if value is None:
            return "-"
        if group in (GROUP_STAGES, GROUP_COSTS, GROUP_PROFILE):
            return format_seconds(value)
        return f"{value:.6g}"

    for group, title, gated in (
        (GROUP_STAGES, "Per-stage simulated seconds", True),
        (GROUP_COSTS, "Cost-ledger categories", True),
        (GROUP_PROFILE, "Profile-node simulated self seconds", True),
        (
            GROUP_PLACEMENT,
            "Shard placement vs DistDGL/DistGER cost models",
            True,
        ),
        (
            GROUP_ATTRIBUTION,
            "Tail-latency blame fractions (class/category)",
            True,
        ),
        (GROUP_METRICS, "Metrics (context only, not gated)", False),
    ):
        rows = [r for r in report.rows if r.group == group]
        if not rows:
            continue
        table_rows = []
        for r in rows:
            ratio = f"{r.ratio * 100:+.1f}%" if r.ratio is not None else "-"
            table_rows.append(
                [r.name, fmt(group, r.a), fmt(group, r.b), ratio, r.status]
            )
        if gated:
            title = f"{title} (threshold {report.threshold * 100:.0f}%)"
        sections.append(
            format_table(
                ["series", "baseline", "candidate", "delta", "status"],
                table_rows,
                title=title,
            )
        )
    regressions = report.regressions
    if regressions:
        names = ", ".join(f"{r.group}:{r.name}" for r in regressions)
        sections.append(f"REGRESSED ({len(regressions)}): {names}")
    else:
        sections.append("no regressions above threshold")
    return "\n\n".join(sections)
