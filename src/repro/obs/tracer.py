"""Span-based tracing with dual sim/wall clocks.

The simulator produces two distinct notions of time: *simulated* seconds
(what the cost model says the operation would take on the paper's Optane
testbed) and *wall-clock* seconds (what the numpy kernels actually cost
on this machine).  A :class:`Span` records both, so a trace can answer
"where does the modelled time go?" (Fig. 7a) and "where does the harness
itself spend time?" from the same structure.

Simulated time is not read from a global clock — each component computes
its own cost — so the tracer keeps a monotonically increasing *sim
cursor* that instrumented code advances via :meth:`SpanTracer.advance_sim`
as it charges cost.  A span's simulated duration is the cursor movement
between its enter and exit.

Usage::

    tracer = SpanTracer()
    with tracer.span("embed", graph="LJ"):
        with tracer.span("graph_read"):
            tracer.advance_sim(read_seconds)
    for span in tracer.finished:
        print(span.name, span.sim_seconds, span.wall_seconds)

:data:`NULL_TRACER` is a shared no-op instance; hot paths are
instrumented unconditionally against it so the untraced configuration
pays only a handful of no-op calls.
"""

from __future__ import annotations

import functools
import secrets
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass
class Span:
    """One traced operation: a named interval on both clocks.

    Attributes:
        name: operation name (dotted names group related spans).
        span_id: creation-order identifier, unique within a tracer.
        parent_id: enclosing span's id, or None for a root span.
        depth: nesting depth (0 for roots), for indented rendering.
        sim_start / sim_end: sim-cursor positions at enter/exit.
        wall_start / wall_end: ``time.perf_counter()`` at enter/exit.
        attributes: free-form key/value annotations.
        status: ``"ok"``, ``"error"``, or ``"open"`` while running.
        trace_id: run-wide trace the span belongs to (propagated across
            process boundaries so worker spans join the coordinator's
            trace).
    """

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    sim_start: float
    wall_start: float
    sim_end: float = 0.0
    wall_end: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = "open"
    trace_id: str = ""

    @property
    def sim_seconds(self) -> float:
        """Simulated seconds attributed to this span (children included)."""
        return self.sim_end - self.sim_start

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return self.wall_end - self.wall_start

    def set(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def to_record(self) -> dict[str, Any]:
        """Serialize to a plain dict (the JSONL span record payload)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "sim_start": self.sim_start,
            "status": self.status,
            "trace_id": self.trace_id,
            "attributes": dict(self.attributes),
        }


class SpanTracer:
    """Records nested spans against a shared sim cursor."""

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id else secrets.token_hex(8)
        #: Path of the live stream this tracer feeds, if any — set by
        #: :meth:`~repro.obs.export.TelemetrySession.stream_to` so the
        #: engine can hand it to worker processes.
        self.live_path: str | None = None
        self._next_id = 0
        self._stack: list[Span] = []
        self._finished: list[Span] = []
        self._sim_cursor = 0.0
        self._listeners: list[Callable[[Span], None]] = []

    # -- clocks --------------------------------------------------------------

    @property
    def sim_cursor(self) -> float:
        """Current position of the simulated clock, in seconds."""
        return self._sim_cursor

    def advance_sim(self, seconds: float) -> None:
        """Advance the simulated clock; attributes time to open spans."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._sim_cursor += seconds

    # -- span lifecycle ------------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        """Innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span for the duration of the ``with`` block."""
        parent = self.current_span
        entry = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            sim_start=self._sim_cursor,
            wall_start=time.perf_counter(),
            attributes=dict(attributes),
            trace_id=self.trace_id,
        )
        self._next_id += 1
        self._stack.append(entry)
        try:
            yield entry
            entry.status = "ok"
        except BaseException:
            entry.status = "error"
            raise
        finally:
            entry.sim_end = self._sim_cursor
            entry.wall_end = time.perf_counter()
            self._stack.pop()
            self._finish(entry)

    def trace(self, name: str) -> Callable:
        """Decorator form of :meth:`span`."""

        def decorator(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorator

    def record(
        self,
        name: str,
        sim_seconds: float = 0.0,
        wall_seconds: float = 0.0,
        advance: bool = False,
        **attributes: Any,
    ) -> Span:
        """Record a complete span with explicit durations.

        Used for summary spans whose cost was measured elsewhere (e.g. the
        per-step SpMM totals already accumulated in a
        :class:`~repro.memsim.trace.CostTrace`).  With ``advance=False``
        (the default) the sim cursor is untouched, so the recorded time is
        an annotation rather than new simulated progress.
        """
        if sim_seconds < 0 or wall_seconds < 0:
            raise ValueError(
                f"durations must be >= 0, got {sim_seconds}, {wall_seconds}"
            )
        parent = self.current_span
        wall_now = time.perf_counter()
        entry = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            sim_start=self._sim_cursor,
            wall_start=wall_now - wall_seconds,
            sim_end=self._sim_cursor + sim_seconds,
            wall_end=wall_now,
            attributes=dict(attributes),
            status="ok",
            trace_id=self.trace_id,
        )
        self._next_id += 1
        if advance:
            self.advance_sim(sim_seconds)
        self._finish(entry)
        return entry

    def attach(self, payload: dict[str, Any]) -> Span:
        """Adopt a span completed in another process (a worker).

        ``payload`` is the cross-process span shape shipped back by the
        shared-memory workers: ``name``, ``wall_seconds``, optional
        ``parent_id`` (defaults to the innermost open span), ``status``
        and ``attributes``.  The adopted span gets a fresh local
        ``span_id`` and this tracer's ``trace_id``; it lands at the
        current sim cursor with *zero* simulated width — worker spans
        are wall-clock annotations, so the per-node sim self-time sum
        invariant of the profile tree is untouched.
        """
        wall_seconds = max(0.0, float(payload.get("wall_seconds", 0.0) or 0.0))
        parent_id = payload.get("parent_id")
        depth = len(self._stack)
        if parent_id is None:
            parent = self.current_span
            parent_id = parent.span_id if parent is not None else None
        else:
            parent_id = int(parent_id)
            for open_span in self._stack:
                if open_span.span_id == parent_id:
                    depth = open_span.depth + 1
                    break
        wall_now = time.perf_counter()
        entry = Span(
            name=str(payload.get("name") or "foreign"),
            span_id=self._next_id,
            parent_id=parent_id,
            depth=depth,
            sim_start=self._sim_cursor,
            wall_start=wall_now - wall_seconds,
            sim_end=self._sim_cursor,
            wall_end=wall_now,
            attributes=dict(payload.get("attributes") or {}),
            status=str(payload.get("status") or "ok"),
            trace_id=self.trace_id,
        )
        self._next_id += 1
        self._finish(entry)
        return entry

    # -- streaming -----------------------------------------------------------

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Call ``listener(span)`` every time a span finishes.

        This is the streaming hook: a listener can serialize each span
        to a live :class:`~repro.obs.live.TelemetryStream` the moment it
        closes instead of waiting for the end-of-run export.
        """
        self._listeners.append(listener)

    def _finish(self, entry: Span) -> None:
        self._finished.append(entry)
        for listener in self._listeners:
            listener(entry)

    # -- results -------------------------------------------------------------

    @property
    def finished(self) -> list[Span]:
        """Completed spans, in creation order (parents before children)."""
        return sorted(self._finished, key=lambda s: s.span_id)

    def find(self, name: str) -> list[Span]:
        """All finished spans with a given name."""
        return [s for s in self.finished if s.name == name]

    def to_records(self) -> list[dict[str, Any]]:
        """Serialize every finished span, in creation order."""
        return [span.to_record() for span in self.finished]

    def reset(self) -> None:
        """Discard all spans and rewind the sim cursor."""
        if self._stack:
            raise RuntimeError(
                f"cannot reset with {len(self._stack)} span(s) still open"
            )
        self._next_id = 0
        self._finished = []
        self._sim_cursor = 0.0


class _NullSpan(Span):
    """Shared inert span yielded by :class:`NullTracer`."""

    def set(self, key: str, value: Any) -> None:
        pass


class NullTracer(SpanTracer):
    """No-op tracer: same API, no recording, near-zero overhead.

    Every public :class:`SpanTracer` method is either overridden here or
    provably inert on the null path (``tests/test_obs_tracer.py`` holds
    the contract test that keeps the two surfaces identical):

    - ``advance_sim`` / ``span`` / ``record`` / ``trace`` / ``attach``
      / ``add_listener`` — overridden, touch nothing;
    - ``sim_cursor`` / ``current_span`` / ``finished`` / ``find`` /
      ``to_records`` / ``reset`` — inherited, but operate on the
      internal state the overrides never mutate, so they always report
      the empty tracer (cursor 0, no spans) and ``reset`` is a no-op
      that can never raise.
    """

    _SPAN = _NullSpan(
        name="null",
        span_id=-1,
        parent_id=None,
        depth=0,
        sim_start=0.0,
        wall_start=0.0,
    )

    def advance_sim(self, seconds: float) -> None:
        pass

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        yield self._SPAN

    def trace(self, name: str) -> Callable:
        """Decorator form; returns the function untouched (zero cost)."""

        def decorator(fn: Callable) -> Callable:
            return fn

        return decorator

    def record(
        self,
        name: str,
        sim_seconds: float = 0.0,
        wall_seconds: float = 0.0,
        advance: bool = False,
        **attributes: Any,
    ) -> Span:
        return self._SPAN

    def attach(self, payload: dict[str, Any]) -> Span:
        return self._SPAN

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        pass


#: Shared no-op tracer for unconditionally instrumented hot paths.
NULL_TRACER = NullTracer()
