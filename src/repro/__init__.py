"""OMeGa reproduction: heterogeneous-memory graph embedding (ICDE 2025).

Public API tour:

>>> from repro import load_dataset, OMeGaConfig, OMeGaEmbedder
>>> dataset = load_dataset("PK")
>>> config = OMeGaConfig(n_threads=8, dim=32, capacity_scale=dataset.scale)
>>> result = OMeGaEmbedder(config).embed_dataset(dataset)
>>> result.embedding.shape[1]
32

Subpackages:

- :mod:`repro.core` — OMeGa itself: CSDB-driven SpMM engine with EaTA
  thread allocation, the WoFP prefetcher, NaDP NUMA placement, ASL
  streaming, and the end-to-end embedding pipeline;
- :mod:`repro.formats` — from-scratch CSR and CSDB sparse formats;
- :mod:`repro.memsim` — the simulated DRAM/PM/SSD/NUMA substrate;
- :mod:`repro.prone` — the ProNE embedding model (tSVD + Chebyshev);
- :mod:`repro.graphs` — generators and Table I dataset analogues;
- :mod:`repro.baselines` — the paper's comparison systems;
- :mod:`repro.eval` — link-prediction / node-classification probes;
- :mod:`repro.obs` — span tracing, metrics and telemetry export;
- :mod:`repro.faults` — deterministic fault injection (crash points,
  transient load errors, PM degradation, tier loss);
- :mod:`repro.parallel`, :mod:`repro.bench` — execution and reporting
  helpers.
"""

from repro.core import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    OMeGaEmbedder,
    PlacementScheme,
    SpMMEngine,
)
from repro.core.embedding import EmbeddingResult, embedder_for_dataset
from repro.faults import (
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    RetryExhaustedError,
)
from repro.formats import CSDBMatrix, CSRMatrix, edges_to_csdb, edges_to_csr
from repro.graphs import Dataset, load_dataset, rmat_edges
from repro.memsim import CheckpointedEmbedder
from repro.obs import MetricsRegistry, SpanTracer, TelemetrySession

__version__ = "1.0.0"

__all__ = [
    "AllocationScheme",
    "CSDBMatrix",
    "CSRMatrix",
    "CheckpointedEmbedder",
    "Dataset",
    "EmbeddingResult",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "MemoryMode",
    "MetricsRegistry",
    "OMeGaConfig",
    "OMeGaEmbedder",
    "PlacementScheme",
    "RetryExhaustedError",
    "SpMMEngine",
    "SpanTracer",
    "TelemetrySession",
    "__version__",
    "edges_to_csdb",
    "edges_to_csr",
    "embedder_for_dataset",
    "load_dataset",
    "rmat_edges",
]
