"""Benchmark harness utilities shared by the ``benchmarks/`` scripts."""

from repro.bench.calibration import (
    CalibrationPoint,
    calibration_report,
    format_report,
)
from repro.bench.harness import (
    ExperimentRow,
    format_seconds,
    format_table,
    geometric_mean,
    project_full_scale,
    run_experiment,
    telemetry_session,
)

__all__ = [
    "CalibrationPoint",
    "ExperimentRow",
    "calibration_report",
    "format_report",
    "format_seconds",
    "format_table",
    "geometric_mean",
    "project_full_scale",
    "run_experiment",
    "telemetry_session",
]
