"""Table formatting, projection and telemetry helpers for the benchmarks.

Every bench prints two things per experiment: the rows/series the paper's
table or figure reports, and (when scaled analogues are involved) the
projection of simulated times back to the original graph scale.

Benches can additionally emit the same structured telemetry as the CLI:
:func:`telemetry_session` builds a :class:`~repro.obs.export.TelemetrySession`
and :func:`run_experiment` wraps one experiment callable in a span,
advancing the simulated clock and merging the result's cost ledger when
the result exposes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass
class ExperimentRow:
    """One row of a printed experiment table."""

    label: str
    values: dict[str, object] = field(default_factory=dict)


def telemetry_session(**meta: Any):
    """Create a telemetry session for a bench run.

    The returned :class:`~repro.obs.export.TelemetrySession` carries the
    tracer/metrics pair to hand to :class:`~repro.core.SpMMEngine` or
    :class:`~repro.core.OMeGaEmbedder`, and ``session.save(path)``
    produces the same JSONL schema as the CLI's ``--telemetry-out``.
    """
    # Imported lazily: repro.obs.report reaches back into this module for
    # its table formatters.
    from repro.obs.export import TelemetrySession

    return TelemetrySession(meta=meta)


def run_experiment(
    label: str,
    fn: Callable[..., Any],
    *args: Any,
    session: Any | None = None,
    advance_sim: bool = True,
    **kwargs: Any,
) -> Any:
    """Run one experiment, optionally under a telemetry session's span.

    When the callable's result exposes ``sim_seconds`` the span is
    credited that much simulated time (disable via ``advance_sim=False``
    if ``fn`` already drives the session's tracer, e.g. an embedder
    constructed with it); a result's ``trace`` ledger is merged into the
    session under ``label``.
    """
    if session is None:
        return fn(*args, **kwargs)
    with session.tracer.span(label):
        result = fn(*args, **kwargs)
        if advance_sim and hasattr(result, "sim_seconds"):
            session.tracer.advance_sim(result.sim_seconds)
    if hasattr(result, "trace"):
        session.add_cost_trace(label, result.trace)
    return result


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (NaNs skipped)."""
    clean = [v for v in values if np.isfinite(v) and v > 0]
    if not clean:
        return float("nan")
    return float(np.exp(np.mean(np.log(clean))))


def project_full_scale(sim_seconds: float, scale: int) -> float:
    """Project a scaled-analogue simulated time to the original graph.

    Simulated costs are linear in workload to first order, so a graph
    downscaled by ``scale`` runs ``~scale`` times faster; the projection
    multiplies back.  Only used for cross-graph *ordering* in reports —
    ratios between systems are already scale-free.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    return sim_seconds * scale


def format_seconds(seconds: float) -> str:
    """Human-readable duration (handles NaN for OOM'd arms)."""
    if not np.isfinite(seconds):
        return "OOM"
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.2f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_table(
    headers: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
