"""Table formatting and projection helpers for the benchmark scripts.

Every bench prints two things per experiment: the rows/series the paper's
table or figure reports, and (when scaled analogues are involved) the
projection of simulated times back to the original graph scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExperimentRow:
    """One row of a printed experiment table."""

    label: str
    values: dict[str, object] = field(default_factory=dict)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (NaNs skipped)."""
    clean = [v for v in values if np.isfinite(v) and v > 0]
    if not clean:
        return float("nan")
    return float(np.exp(np.mean(np.log(clean))))


def project_full_scale(sim_seconds: float, scale: int) -> float:
    """Project a scaled-analogue simulated time to the original graph.

    Simulated costs are linear in workload to first order, so a graph
    downscaled by ``scale`` runs ``~scale`` times faster; the projection
    multiplies back.  Only used for cross-graph *ordering* in reports —
    ratios between systems are already scale-free.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    return sim_seconds * scale


def format_seconds(seconds: float) -> str:
    """Human-readable duration (handles NaN for OOM'd arms)."""
    if not np.isfinite(seconds):
        return "OOM"
    if seconds >= 3600:
        return f"{seconds / 3600:.2f} h"
    if seconds >= 60:
        return f"{seconds / 60:.2f} min"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_table(
    headers: list[str], rows: list[list[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
