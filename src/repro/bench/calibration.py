"""Calibration report: measured headline ratios vs the paper's targets.

The simulation substrate is calibrated so the paper's comparative claims
reproduce in *shape*.  This module measures every headline ratio in one
pass and reports it against the paper's value with an acceptance band,
so any change to the device models or engine is immediately visible
(``python -m repro calibrate`` or ``tests/test_calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import (
    AllocationScheme,
    MemoryMode,
    OMeGaConfig,
    PlacementScheme,
)
from repro.core.spmm import SpMMEngine
from repro.graphs.datasets import Dataset, load_dataset
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanTracer


@dataclass(frozen=True)
class CalibrationPoint:
    """One headline ratio: the paper's value and our acceptance band."""

    name: str
    paper_value: float
    measured: float
    low: float
    high: float

    @property
    def in_band(self) -> bool:
        """True when the measured ratio falls inside the band."""
        return self.low <= self.measured <= self.high


def _spmm_seconds(
    dataset: Dataset,
    dense: np.ndarray,
    arm: str = "omega",
    tracer: SpanTracer | None = None,
    metrics: MetricsRegistry | None = None,
    **overrides,
) -> float:
    base = dict(n_threads=30, dim=32, capacity_scale=dataset.scale)
    base.update(overrides)
    tracer = tracer if tracer is not None else NULL_TRACER
    engine = SpMMEngine(OMeGaConfig(**base), tracer=tracer, metrics=metrics)
    with tracer.span("calibrate_arm", arm=arm) as span:
        seconds = engine.multiply(
            dataset.adjacency_csdb(), dense, compute=False
        ).sim_seconds
        span.set("sim_seconds", seconds)
    return seconds


def calibration_report(
    dataset_name: str = "LJ",
    tracer: SpanTracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[CalibrationPoint]:
    """Measure every headline SpMM-level ratio on one graph.

    A ``tracer``/``metrics`` pair (e.g. a telemetry session's) captures
    one ``calibrate_arm`` span per measured configuration.
    """
    dataset = load_dataset(dataset_name)
    dense = np.random.default_rng(0).standard_normal((dataset.n_nodes, 32))

    def measure(arm: str, **overrides) -> float:
        return _spmm_seconds(
            dataset, dense, arm=arm, tracer=tracer, metrics=metrics,
            **overrides,
        )

    omega = measure("omega")
    dram = measure("omega-dram", memory_mode=MemoryMode.DRAM_ONLY)
    pm = measure(
        "omega-pm",
        memory_mode=MemoryMode.PM_ONLY,
        prefetcher_enabled=False,
    )
    rr = measure("rr", allocation=AllocationScheme.ROUND_ROBIN)
    wata = measure("wata", allocation=AllocationScheme.WORKLOAD_BALANCED)
    no_wofp = measure("no-wofp", prefetcher_enabled=False)
    interleave = measure("no-nadp", placement=PlacementScheme.INTERLEAVE)
    prone_dram = measure(
        "prone-dram",
        memory_mode=MemoryMode.DRAM_ONLY,
        allocation=AllocationScheme.NATURAL_ROUND_ROBIN,
        placement=PlacementScheme.INTERLEAVE,
        prefetcher_enabled=False,
        kernel_slowdown=2.5,
    )

    return [
        CalibrationPoint(
            "RR / EaTA (Table II)", 5.13, rr / omega, 3.0, 9.0
        ),
        CalibrationPoint(
            "WaTA / EaTA (Table II)", 1.43, wata / omega, 0.95, 2.0
        ),
        CalibrationPoint(
            "w/o-WoFP / OMeGa (Fig. 14)", 1.59, no_wofp / omega, 1.2, 2.6
        ),
        CalibrationPoint(
            "w/o-NaDP / OMeGa (Fig. 15b)", 2.9, interleave / omega, 1.5, 4.5
        ),
        CalibrationPoint(
            "OMeGa / OMeGa-DRAM (Fig. 15b)", 1.40, omega / dram, 1.2, 3.0
        ),
        CalibrationPoint(
            "OMeGa-PM / OMeGa (Fig. 12)", 146.67, pm / omega, 25.0, 400.0
        ),
        CalibrationPoint(
            "ProNE-DRAM / OMeGa-DRAM (Sec. IV-B)",
            4.99,
            prone_dram / dram,
            2.0,
            9.0,
        ),
    ]


def format_report(points: list[CalibrationPoint]) -> str:
    """Render the report as an aligned text table."""
    lines = [
        "Calibration — measured headline ratios vs the paper",
        f"{'ratio':38s}{'paper':>8s}{'measured':>10s}{'band':>16s}{'ok':>4s}",
    ]
    for point in points:
        band = f"[{point.low:g}, {point.high:g}]"
        ok = "yes" if point.in_band else "NO"
        lines.append(
            f"{point.name:38s}{point.paper_value:>8.2f}"
            f"{point.measured:>10.2f}{band:>16s}{ok:>4s}"
        )
    return "\n".join(lines)
