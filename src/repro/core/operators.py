"""Engine-level CSDB operator suite (§III-A).

The paper equips CSDB with "multiplication, addition, subtraction, and
transposition" operators so the embedding pipeline never leaves the
compressed format.  :class:`OperatorSuite` wraps those operators with the
same simulated-cost accounting as the SpMM engine, so pipeline-level
experiments can charge *every* matrix operation, not only SpMM:

- ``spmm``  — delegates to the instrumented engine (Algorithm 1);
- ``sddmm`` — sampled dense-dense multiplication, the second kernel of
  graph embedding workloads (the one FusedMM fuses with SpMM);
- ``add`` / ``subtract`` — streaming merges of two CSDB operands;
- ``transpose`` — a full re-blocking pass (counting sort by degree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MemoryMode, OMeGaConfig
from repro.core.spmm import SPARSE_BYTES_PER_NNZ, SpMMEngine, SpMMResult
from repro.formats.csdb import CSDBMatrix
from repro.memsim.devices import (
    AccessPattern,
    Locality,
    MemoryKind,
    Operation,
)
from repro.memsim.trace import CostTrace


@dataclass
class OperatorResult:
    """Outcome of a non-SpMM CSDB operator.

    Attributes:
        output: the resulting matrix (CSDB) or array.
        sim_seconds: simulated duration of the operator.
        trace: per-category simulated cost ledger.
    """

    output: object
    sim_seconds: float
    trace: CostTrace


class OperatorSuite:
    """Cost-accounted CSDB operators on the simulated memory system."""

    def __init__(self, config: OMeGaConfig | None = None) -> None:
        self.config = config or OMeGaConfig()
        self.engine = SpMMEngine(self.config)

    # -- helpers ------------------------------------------------------------

    def _sparse_device(self):
        if self.config.memory_mode is MemoryMode.DRAM_ONLY:
            return self.config.topology.device(MemoryKind.DRAM)
        return self.config.topology.device(MemoryKind.PM)

    def _stream_cost(
        self, read_bytes: float, write_bytes: float, compute_ops: float
    ) -> float:
        """Simulated seconds of a parallel streaming pass."""
        device = self._sparse_device()
        threads = self.config.n_threads
        sharing = max(1, threads // self.config.topology.n_sockets)
        model = self.engine.cost_model
        read = model.access_time(
            device,
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            read_bytes / threads,
            sharing,
        )
        write = model.access_time(
            device,
            Operation.WRITE,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            write_bytes / threads,
            sharing,
        )
        compute = model.compute_time(compute_ops / threads)
        return read + write + compute

    # -- operators ----------------------------------------------------------

    def spmm(self, matrix: CSDBMatrix, dense: np.ndarray) -> SpMMResult:
        """Instrumented sparse x dense multiplication (Algorithm 1)."""
        return self.engine.multiply(matrix, dense)

    def sddmm(
        self,
        matrix: CSDBMatrix,
        left: np.ndarray,
        right: np.ndarray,
    ) -> OperatorResult:
        """Sampled dense-dense matrix multiplication.

        Computes ``C_ij = A_ij * (left_i . right_j)`` over A's sparsity
        pattern — the companion kernel of SpMM in embedding training
        (FusedMM's fusion target).  Returns a CSDB matrix with A's
        structure and the sampled products as values.
        """
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        if left.shape[0] != matrix.n_rows:
            raise ValueError(
                f"left must have {matrix.n_rows} rows, got {left.shape[0]}"
            )
        if right.shape[0] != matrix.n_cols:
            raise ValueError(
                f"right must have {matrix.n_cols} rows, got {right.shape[0]}"
            )
        if left.shape[1] != right.shape[1]:
            raise ValueError(
                f"factor widths differ: {left.shape[1]} vs {right.shape[1]}"
            )
        csdb_rows = np.repeat(
            np.arange(matrix.n_rows, dtype=np.int64), matrix.row_degrees()
        )
        row_ids = matrix.perm[csdb_rows]
        dots = np.einsum(
            "ij,ij->i", left[row_ids], right[matrix.col_list]
        )
        output = CSDBMatrix(
            matrix.deg_list,
            matrix.deg_ind,
            matrix.col_list,
            matrix.nnz_list * dots,
            matrix.perm,
            matrix.shape,
        )
        d = left.shape[1]
        nnz = matrix.nnz
        seconds = self._stream_cost(
            read_bytes=nnz * (SPARSE_BYTES_PER_NNZ + 2.0 * d * 8.0),
            write_bytes=nnz * 8.0,
            compute_ops=float(nnz) * d,
        )
        trace = CostTrace()
        trace.charge("sddmm", seconds, nnz * 2.0 * d * 8.0)
        return OperatorResult(output=output, sim_seconds=seconds, trace=trace)

    def add(self, a: CSDBMatrix, b: CSDBMatrix) -> OperatorResult:
        """Cost-accounted ``a + b``."""
        return self._merge(a, b, sign=1.0, label="add")

    def subtract(self, a: CSDBMatrix, b: CSDBMatrix) -> OperatorResult:
        """Cost-accounted ``a - b``."""
        return self._merge(a, b, sign=-1.0, label="subtract")

    def _merge(
        self, a: CSDBMatrix, b: CSDBMatrix, sign: float, label: str
    ) -> OperatorResult:
        output = a + b if sign > 0 else a - b
        read_bytes = (a.nnz + b.nnz) * SPARSE_BYTES_PER_NNZ
        write_bytes = output.nnz * SPARSE_BYTES_PER_NNZ
        # Merge of two sorted streams: ~4 ops per input element plus the
        # re-blocking of the result.
        ops = 4.0 * (a.nnz + b.nnz) + 8.0 * output.n_rows
        seconds = self._stream_cost(read_bytes, write_bytes, ops)
        trace = CostTrace()
        trace.charge(label, seconds, read_bytes + write_bytes)
        return OperatorResult(output=output, sim_seconds=seconds, trace=trace)

    def transpose(self, matrix: CSDBMatrix) -> OperatorResult:
        """Cost-accounted transposition (counting-sort re-blocking)."""
        output = matrix.transpose()
        read_bytes = matrix.nnz * SPARSE_BYTES_PER_NNZ
        write_bytes = output.nnz * SPARSE_BYTES_PER_NNZ
        ops = 6.0 * matrix.nnz + 8.0 * matrix.n_cols
        seconds = self._stream_cost(read_bytes, write_bytes, ops)
        trace = CostTrace()
        trace.charge("transpose", seconds, read_bytes + write_bytes)
        return OperatorResult(output=output, sim_seconds=seconds, trace=trace)

    def scale(self, matrix: CSDBMatrix, factor: float) -> OperatorResult:
        """Cost-accounted scalar multiplication."""
        output = matrix.scale(factor)
        nbytes = matrix.nnz * 8.0
        seconds = self._stream_cost(nbytes, nbytes, float(matrix.nnz))
        trace = CostTrace()
        trace.charge("scale", seconds, 2 * nbytes)
        return OperatorResult(output=output, sim_seconds=seconds, trace=trace)
