"""ASL — asynchronous adaptive streaming loading (§III-E).

The dense matrices and intermediates of the embedding pipeline exceed
DRAM, so data streams between PM and DRAM.  ASL (i) picks the partition
count ``n`` from the peak-memory inequality of Eq. 8/9 so each batch fits
the available DRAM, and (ii) overlaps each batch's PM->DRAM load with the
previous batch's compute, exposing only the non-overlapped remainder.

With equal batches of total load time ``L`` and total compute ``C``::

    timeline = L/n + sum_{b=2..n} max(C/n, L/n) + C/n

so the *exposed* (non-overlapped) streaming time is ``L/n`` when compute
dominates and ``L - C*(n-1)/n`` when loading dominates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.faults import (
    ASL_LOAD_SITE,
    FaultInjector,
    RetryExhaustedError,
)
from repro.obs.metrics import MetricsRegistry


def optimal_partitions(
    n_nodes: int,
    dim: int,
    dram_budget_bytes: float,
    sparse_bytes: float,
    itemsize: int = 8,
) -> int:
    """Eq. 9: minimal partition count for the dense matrix.

    Peak memory (Eq. 8) is ``M_l + M_al + M_li + M_s + M_r + M_ri <=
    M_total`` with ``M_l = M_al = M_li = (d/n)*|V|*itemsize`` (the live
    batch, the in-flight async batch and its intermediate) and
    ``M_r = M_ri = d*|V|*itemsize`` (result and its intermediate).
    Solving for n:

        n >= 3*d*|V|*s / (M_total - M_s - 2*d*|V|*s)

    When the denominator is non-positive even the non-streamed residency
    does not fit, so streaming degenerates to the maximal split (one
    embedding column per batch).
    """
    if n_nodes < 1 or dim < 1:
        raise ValueError(f"need n_nodes, dim >= 1, got {n_nodes}, {dim}")
    if dram_budget_bytes <= 0:
        return dim
    dense_bytes = float(dim * n_nodes * itemsize)
    denominator = dram_budget_bytes - sparse_bytes - 2.0 * dense_bytes
    if denominator <= 0:
        return dim
    n = math.ceil(3.0 * dense_bytes / denominator)
    return min(max(n, 1), dim)


#: Recognised :attr:`RetryPolicy.jitter` modes.
JITTER_MODES = ("none", "full")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient streaming-load failures.

    Attributes:
        max_retries: failed attempts tolerated before
            :class:`~repro.faults.RetryExhaustedError`.
        base_delay_seconds: backoff before the first retry.
        multiplier: per-retry backoff growth factor.
        jitter: ``"none"`` (pure exponential, the historical behaviour)
            or ``"full"`` — each delay is drawn uniformly from
            ``[0, base * multiplier**attempt]`` (the AWS "full jitter"
            scheme), decorrelating retry storms when many loads fail at
            once.
        jitter_seed: seed of the policy's private RNG, so a jittered
            simulation stays deterministic and replayable.
    """

    max_retries: int = 3
    base_delay_seconds: float = 1e-3
    multiplier: float = 2.0
    jitter: str = "none"
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay_seconds < 0:
            raise ValueError(
                "base_delay_seconds must be >= 0,"
                f" got {self.base_delay_seconds}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter not in JITTER_MODES:
            raise ValueError(
                f"jitter must be one of {JITTER_MODES}, got {self.jitter!r}"
            )
        import numpy as np

        object.__setattr__(
            self, "_rng", np.random.default_rng(self.jitter_seed)
        )

    def delay(self, attempt: int) -> float:
        """Backoff charged after the ``attempt``-th failure (0-based).

        With full jitter the policy's seeded RNG advances per call, so
        the delay *sequence* (not each individual delay) is the
        deterministic, replayable unit.
        """
        cap = self.base_delay_seconds * self.multiplier**attempt
        if self.jitter == "none":
            return cap
        return float(self._rng.uniform(0.0, cap))


#: Default backoff used by the engine when none is configured.
DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass(frozen=True)
class LoadOutcome:
    """Result of one (possibly retried) streaming load.

    Attributes:
        exposed_seconds: non-overlapped streaming time of the attempt
            that succeeded.
        retry_seconds: simulated time lost to failed attempts — the
            wasted partial transfers plus the backoff delays.
        attempts: total attempts, including the successful one.
    """

    exposed_seconds: float
    retry_seconds: float
    attempts: int

    @property
    def total_seconds(self) -> float:
        """Everything the load put on the critical path."""
        return self.exposed_seconds + self.retry_seconds


@dataclass(frozen=True)
class StreamPlan:
    """Streaming schedule of one dense operand.

    Attributes:
        n_partitions: Eq. 9 batch count n.
        batch_bytes: bytes of one batch ((d/n) * |V| * itemsize).
        total_load_seconds: L — full PM->DRAM transfer time.
    """

    n_partitions: int
    batch_bytes: float
    total_load_seconds: float

    def exposed_seconds(self, compute_seconds: float) -> float:
        """Non-overlapped streaming time given the phase's compute time."""
        if compute_seconds < 0:
            raise ValueError(
                f"compute_seconds must be >= 0, got {compute_seconds}"
            )
        n = self.n_partitions
        load = self.total_load_seconds
        if n <= 1:
            return load
        per_batch_load = load / n
        per_batch_compute = compute_seconds / n
        overlap = min(per_batch_load, per_batch_compute) * (n - 1)
        return load - overlap


class StreamingLoader:
    """Plans ASL streaming for the SpMM engine.

    Args:
        pm_seq_read_bandwidth: aggregate PM sequential-read bandwidth
            (bytes/s) available for streaming loads.
    """

    def __init__(self, pm_seq_read_bandwidth: float) -> None:
        if pm_seq_read_bandwidth <= 0:
            raise ValueError(
                "pm_seq_read_bandwidth must be > 0,"
                f" got {pm_seq_read_bandwidth}"
            )
        self.pm_seq_read_bandwidth = pm_seq_read_bandwidth

    def plan(
        self,
        n_nodes: int,
        dim: int,
        dram_budget_bytes: float,
        sparse_bytes: float,
        itemsize: int = 8,
    ) -> StreamPlan:
        """Build the :class:`StreamPlan` for one dense operand."""
        n = optimal_partitions(
            n_nodes, dim, dram_budget_bytes, sparse_bytes, itemsize
        )
        dense_bytes = float(dim * n_nodes * itemsize)
        return StreamPlan(
            n_partitions=n,
            batch_bytes=dense_bytes / n,
            total_load_seconds=dense_bytes / self.pm_seq_read_bandwidth,
        )

    def observe(
        self,
        plan: StreamPlan,
        compute_seconds: float,
        metrics: MetricsRegistry | None = None,
    ) -> float:
        """Exposed streaming seconds, with overlap telemetry.

        ``asl.exposed_seconds`` is the streaming time left on the critical
        path; ``asl.hidden_seconds`` is what the compute overlap absorbed
        (pass ``compute_seconds=0`` for the no-overlap/disabled arm).
        """
        exposed = plan.exposed_seconds(compute_seconds)
        if metrics is not None:
            hidden = plan.total_load_seconds - exposed
            metrics.counter("asl.loads").inc()
            metrics.counter("asl.exposed_seconds").inc(exposed)
            metrics.counter("asl.hidden_seconds").inc(hidden)
            metrics.counter("asl.streamed_bytes").inc(
                plan.batch_bytes * plan.n_partitions
            )
            metrics.gauge("asl.n_partitions").set(plan.n_partitions)
        return exposed

    def load(
        self,
        plan: StreamPlan,
        compute_seconds: float,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
        site: str = ASL_LOAD_SITE,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> LoadOutcome:
        """One streaming load with retry-on-transient-failure semantics.

        Each injected transient failure wastes one in-flight batch and
        pays the policy's exponential backoff, both charged to the
        simulated clock (``asl.retries`` / ``asl.retry_seconds``
        metrics).  When the failures outlast ``retry.max_retries``
        attempts beyond the first, the typed
        :class:`~repro.faults.RetryExhaustedError` propagates — the
        caller decides whether that degrades the tier or aborts.
        """
        retry_seconds = 0.0
        attempts = 0
        while True:
            attempts += 1
            if faults is None or not faults.take_transient_failure(site):
                exposed = self.observe(plan, compute_seconds, metrics)
                return LoadOutcome(
                    exposed_seconds=exposed,
                    retry_seconds=retry_seconds,
                    attempts=attempts,
                )
            # One in-flight batch is lost, then the backoff elapses.
            wasted = plan.total_load_seconds / plan.n_partitions
            delay = retry.delay(attempts - 1)
            retry_seconds += wasted + delay
            if metrics is not None:
                metrics.counter("asl.retries").inc()
                metrics.counter("asl.retry_seconds").inc(wasted + delay)
                metrics.histogram(
                    "asl.retry_delay", jitter=retry.jitter
                ).observe(delay)
            if attempts > retry.max_retries:
                raise RetryExhaustedError(site, attempts)
