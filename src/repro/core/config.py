"""Configuration of the OMeGa engine and its ablation knobs.

Every experiment arm in the paper's evaluation maps onto one
:class:`OMeGaConfig`:

- OMeGa            -> defaults (heterogeneous, EaTA, WoFP, NaDP, ASL);
- OMeGa-DRAM       -> ``memory_mode=DRAM_ONLY``;
- OMeGa-PM         -> ``memory_mode=PM_ONLY``;
- OMeGa-w/o-WoFP   -> ``prefetcher_enabled=False``;
- OMeGa-w/o-NaDP   -> ``placement=INTERLEAVE``;
- RR / WaTA arms   -> ``allocation=ROUND_ROBIN / WORKLOAD_BALANCED``.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace

from repro.memsim.numa import NumaTopology


class MemoryMode(enum.Enum):
    """Which tiers the engine may use."""

    HETEROGENEOUS = "hm"
    DRAM_ONLY = "dram"
    PM_ONLY = "pm"


class AllocationScheme(enum.Enum):
    """Thread-allocation strategy for parallel SpMM (§III-B).

    ``ROUND_ROBIN`` is the toolkit default applied to OMeGa's
    degree-sorted CSDB rows (the arm of Table II);
    ``NATURAL_ROUND_ROBIN`` is the same static split over the *original*
    row order — what a CSR-based system like ProNE actually experiences,
    where mixed degrees per chunk balance the byte counts but make every
    chunk maximally scattered.
    """

    ROUND_ROBIN = "rr"
    NATURAL_ROUND_ROBIN = "natural-rr"
    WORKLOAD_BALANCED = "wata"
    ENTROPY_AWARE = "eata"


class PlacementScheme(enum.Enum):
    """NUMA data-placement policy (§III-D)."""

    NADP = "nadp"
    INTERLEAVE = "interleave"
    LOCAL = "local"


class ExecBackend(enum.Enum):
    """Which execution backend runs the real SpMM kernels.

    ``SIMULATED`` keeps the historical behavior: kernels execute
    serially in-process while only simulated clocks advance per logical
    thread.  ``SHARED_MEMORY`` runs EaTA partitions concurrently on a
    pool of worker processes over zero-copy shared-memory views of the
    CSDB arrays (see :mod:`repro.parallel.shared`).  ``THREADS`` runs
    them on a persistent in-process thread pool with zero segment
    copies (see :mod:`repro.parallel.threads`) — the numpy kernels
    release the GIL, and on free-threaded CPython the threads are fully
    concurrent.  The simulated cost accounting is charged identically
    in every backend, and the numeric output is bit-identical.
    """

    SIMULATED = "simulated"
    SHARED_MEMORY = "shared_memory"
    THREADS = "threads"


#: Default byte budget for the blocked SpMM gather intermediate (bounds
#: the O(nnz*d) ``vals * dense[cols]`` materialization per chunk).
DEFAULT_CHUNK_BUDGET_BYTES = 64 * 2**20


@dataclass(frozen=True)
class ParallelConfig:
    """Execution-backend selection for the real (wall-clock) kernels.

    Attributes:
        backend: which executor runs the numpy kernels.  The simulated
            cost model is unaffected by this choice.
        n_workers: worker processes in the shared-memory pool (or
            threads in the threads pool).  This is
            a *physical* resource knob, distinct from the *logical*
            ``OMeGaConfig.n_threads`` the cost model partitions over;
            the pool consumes the logical partitions work-stealing
            style.
        chunk_budget_bytes: byte budget bounding the blocked SpMM
            kernel's gather intermediate (per chunk, per worker).
    """

    backend: ExecBackend = ExecBackend.SIMULATED
    n_workers: int = 2
    chunk_budget_bytes: int = DEFAULT_CHUNK_BUDGET_BYTES

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.chunk_budget_bytes < 4096:
            raise ValueError(
                "chunk_budget_bytes must be >= 4096, got"
                f" {self.chunk_budget_bytes}"
            )

    @classmethod
    def default(cls) -> "ParallelConfig":
        """Environment-overridable default backend.

        ``REPRO_EXEC_BACKEND`` / ``REPRO_WORKERS`` flip the default so
        an unmodified test suite can run once against the shared-memory
        backend (the CI smoke job); unset, the simulated backend keeps
        deterministic single-process behavior.
        """
        backend = ExecBackend(
            os.environ.get("REPRO_EXEC_BACKEND", ExecBackend.SIMULATED.value)
        )
        n_workers = int(os.environ.get("REPRO_WORKERS", "2"))
        return cls(backend=backend, n_workers=n_workers)


@dataclass(frozen=True)
class OMeGaConfig:
    """Full configuration of an OMeGa engine instance.

    Attributes:
        n_threads: logical worker threads (the paper uses 30 of 36).
        memory_mode: tier usage (heterogeneous / DRAM-only / PM-only).
        allocation: thread-allocation scheme.
        prefetcher_enabled: enable the WoFP prefetcher.
        eta: WoFP prefetcher-type selection threshold (the paper's
            ``η``): a workload uses the frequency-based prefetcher when
            its mean nnz/row is at least ``|V| * eta``.
        sigma: WoFP prefetch-size parameter (``σ``): the top-M capacity
            is ``M = W_i * sigma`` entries.
        placement: NUMA placement policy (NaDP or an OS policy).
        streaming_enabled: enable ASL streaming between DRAM and PM.
        dim: embedding dimensionality ``d``.
        capacity_scale: divide simulated device capacities by this factor
            (matched to a dataset's downscale factor so memory pressure is
            preserved; see ``repro.graphs.datasets``).
        kernel_slowdown: multiplier on the gather/accumulate cost of the
            SpMM inner loop, modelling kernel quality.  1.0 is OMeGa's
            blocked CSDB kernel; the ProNE arms use ~2.5 for the generic
            unblocked CSR kernel (scipy-class), per published CSR-vs-
            optimized SpMM gaps.
        graph_format: in-memory format built by the reading procedure —
            ``"csdb"`` (OMeGa) or ``"csr"`` (the baselines); affects the
            simulated graph-read cost (Fig. 19a).
        dram_headroom: fraction of DRAM the streaming loader may use.
        topology: the NUMA machine model.
        seed: RNG seed for randomized algorithms (tSVD range finder).
        parallel: real-execution backend selection (simulated vs
            shared-memory worker pool); orthogonal to the cost model.
    """

    n_threads: int = 8
    memory_mode: MemoryMode = MemoryMode.HETEROGENEOUS
    allocation: AllocationScheme = AllocationScheme.ENTROPY_AWARE
    prefetcher_enabled: bool = True
    eta: float = 0.01
    sigma: float = 0.25
    placement: PlacementScheme = PlacementScheme.NADP
    streaming_enabled: bool = True
    dim: int = 32
    capacity_scale: int = 1
    kernel_slowdown: float = 1.0
    graph_format: str = "csdb"
    dram_headroom: float = 0.5
    topology: NumaTopology = field(default_factory=NumaTopology)
    seed: int = 0
    parallel: ParallelConfig = field(default_factory=ParallelConfig.default)

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if not 0.0 < self.eta:
            raise ValueError(f"eta must be > 0, got {self.eta}")
        if not 0.0 <= self.sigma <= 1.0:
            raise ValueError(f"sigma must be in [0, 1], got {self.sigma}")
        if self.capacity_scale < 1:
            raise ValueError(
                f"capacity_scale must be >= 1, got {self.capacity_scale}"
            )
        if self.kernel_slowdown < 1.0:
            raise ValueError(
                f"kernel_slowdown must be >= 1, got {self.kernel_slowdown}"
            )
        if self.graph_format not in ("csdb", "csr"):
            raise ValueError(
                f"graph_format must be 'csdb' or 'csr', got {self.graph_format!r}"
            )
        if not 0.0 < self.dram_headroom <= 1.0:
            raise ValueError(
                f"dram_headroom must be in (0, 1], got {self.dram_headroom}"
            )

    def with_overrides(self, **kwargs: object) -> "OMeGaConfig":
        """Copy with fields replaced (convenience for experiment arms)."""
        return replace(self, **kwargs)


def omega_config(**kwargs: object) -> OMeGaConfig:
    """Full OMeGa: all optimizations on (the paper's primary system)."""
    return OMeGaConfig(**kwargs)


def omega_dram_config(**kwargs: object) -> OMeGaConfig:
    """OMeGa-DRAM: the ideal all-DRAM baseline."""
    kwargs.setdefault("memory_mode", MemoryMode.DRAM_ONLY)
    kwargs.setdefault("streaming_enabled", False)
    return OMeGaConfig(**kwargs)


def omega_pm_config(**kwargs: object) -> OMeGaConfig:
    """OMeGa-PM: the worst-case all-PM baseline."""
    kwargs.setdefault("memory_mode", MemoryMode.PM_ONLY)
    kwargs.setdefault("prefetcher_enabled", False)
    kwargs.setdefault("streaming_enabled", False)
    return OMeGaConfig(**kwargs)
