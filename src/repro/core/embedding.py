"""End-to-end OMeGa embedding pipeline (Fig. 4 of the paper).

``OMeGaEmbedder`` runs ProNE with every sparse product routed through the
instrumented :class:`repro.core.spmm.SpMMEngine`, accumulating simulated
time for:

- the graph reading procedure (CSDB construction; Fig. 19a);
- every SpMM of the tSVD bootstrap and the Chebyshev propagation;
- the serial dense algebra (QR / small SVD), charged to the CPU model;
- ASL staging, prefetch maintenance and NaDP merges (inside the engine).

The numeric output is *identical* across memory modes and optimization
knobs — OMeGa's optimizations are placement and scheduling only — which
tests assert explicitly (quality preservation, §IV-B).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MemoryMode, OMeGaConfig
from repro.core.spmm import SpMMEngine, SpMMResult
from repro.formats.convert import edges_to_csdb
from repro.formats.csdb import CSDBMatrix
from repro.graphs.datasets import Dataset
from repro.memsim.devices import (
    AccessPattern,
    Locality,
    MemoryKind,
    Operation,
)
from repro.memsim.trace import SPMM_CATEGORIES, CostTrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.prone.model import (
    ProNEParams,
    prone_propagate,
    prone_smf,
)

#: Approximate bytes per edge of a SNAP-style text edge list (two ids,
#: separator, newline), used to cost the read of the on-disk graph.
TEXT_BYTES_PER_EDGE = 14.0


@dataclass
class EmbeddingResult:
    """Outcome of one end-to-end embedding run.

    Attributes:
        embedding: the (|V|, d) node embedding.
        sim_seconds: simulated end-to-end time (reading + generation),
            the quantity Fig. 12 reports.
        read_seconds: simulated graph-reading time (Fig. 19a).
        factorization_seconds: simulated time of the tSVD bootstrap.
        propagation_seconds: simulated time of the spectral propagation.
        spmm_seconds: simulated time spent inside SpMM operations.
        serial_seconds: simulated time of serial dense algebra.
        n_spmm: number of SpMM operations executed.
        wall_seconds: real wall-clock time of the run (for the harness).
        trace: merged per-category cost ledger.
        spmm_results: the individual engine results (thread times etc.).
    """

    embedding: np.ndarray
    sim_seconds: float
    read_seconds: float
    factorization_seconds: float
    propagation_seconds: float
    spmm_seconds: float
    serial_seconds: float
    n_spmm: int
    wall_seconds: float
    trace: CostTrace
    spmm_results: list[SpMMResult] = field(default_factory=list)

    @property
    def spmm_fraction(self) -> float:
        """Share of simulated time spent in SpMM (the paper's ~70%)."""
        if self.sim_seconds == 0.0:
            return 0.0
        return self.spmm_seconds / self.sim_seconds


class _InstrumentedMatMul:
    """Adapter routing ProNE's products through the engine."""

    def __init__(self, embedder: "OMeGaEmbedder", matrix: CSDBMatrix) -> None:
        self.embedder = embedder
        self.matrix = matrix

    def __call__(self, dense: np.ndarray) -> np.ndarray:
        result = self.embedder.engine.multiply(self.matrix, dense)
        self.embedder._record_spmm(result)
        return result.output


class OMeGaEmbedder:
    """ProNE on simulated heterogeneous memory."""

    def __init__(
        self,
        config: OMeGaConfig | None = None,
        params: ProNEParams | None = None,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or OMeGaConfig()
        self.params = params or ProNEParams(
            dim=self.config.dim, seed=self.config.seed
        )
        if self.params.dim != self.config.dim:
            raise ValueError(
                f"config.dim ({self.config.dim}) and params.dim"
                f" ({self.params.dim}) disagree"
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.engine = SpMMEngine(
            self.config, tracer=self.tracer, metrics=self.metrics
        )
        self._spmm_results: list[SpMMResult] = []
        self._spmm_seconds = 0.0
        self._serial_seconds = 0.0
        self._trace = CostTrace()

    # -- bookkeeping -------------------------------------------------------

    def _reset(self) -> None:
        self._spmm_results = []
        self._spmm_seconds = 0.0
        self._serial_seconds = 0.0
        self._trace = CostTrace()

    def _record_spmm(self, result: SpMMResult) -> None:
        self._spmm_results.append(result)
        self._spmm_seconds += result.sim_seconds
        self._trace.merge(result.trace)

    def _charge_serial(self, flops: float, category: str) -> None:
        # Dense BLAS (QR / small SVD) runs multithreaded in practice;
        # charge the flops across the configured thread count.
        seconds = self.engine.cost_model.compute_time(
            flops / self.config.n_threads
        )
        self._serial_seconds += seconds
        self._trace.charge(category, seconds)
        self.tracer.advance_sim(seconds)

    def _matmul_factory(self, matrix: CSDBMatrix):
        return _InstrumentedMatMul(self, matrix)

    # -- pipeline stages -----------------------------------------------------

    def simulate_graph_read(self, n_nodes: int, n_edges: int) -> float:
        """Simulated cost of the graph reading procedure into CSDB.

        Reading = SSD scan of the text edge list + parse compute + the
        format build.  CSDB builds with a degree-bucket counting sort
        whose placement passes are *sequential*; CSR's classic
        scatter-into-rows build issues per-edge *random* writes — the
        source of the 1.35x reading gap of Fig. 19a (see
        :func:`simulate_graph_read_csr`).
        """
        return self._read_cost(n_nodes, n_edges, AccessPattern.SEQUENTIAL)

    def simulate_graph_read_csr(self, n_nodes: int, n_edges: int) -> float:
        """Simulated cost of reading the same graph into CSR."""
        return self._read_cost(n_nodes, n_edges, AccessPattern.RANDOM)

    def _read_cost(
        self, n_nodes: int, n_edges: int, placement_pattern: AccessPattern
    ) -> float:
        cost_model = self.engine.cost_model
        ssd = self.config.topology.device(MemoryKind.SSD)
        dram = self.config.topology.device(MemoryKind.DRAM)
        text_bytes = 2.0 * n_edges * TEXT_BYTES_PER_EDGE  # both directions
        scan = cost_model.access_time(
            ssd,
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            text_bytes,
        )
        parse = cost_model.compute_time(2.0 * n_edges * 20.0)
        edge_bytes = 2.0 * n_edges * 12.0
        place = cost_model.access_time(
            dram,
            Operation.WRITE,
            placement_pattern,
            Locality.LOCAL,
            edge_bytes,
            threads_sharing=max(self.config.n_threads // 2, 1),
        )
        return scan + parse + place

    def pipeline_working_set_bytes(self, n_nodes: int, n_edges: int) -> float:
        """Peak DRAM-resident bytes of the ProNE pipeline (Eq. 8 terms).

        The tSVD and Chebyshev stages hold several (|V|, k) dense
        temporaries simultaneously (Lx0/Lx1/Lx2 + conv + the operand and
        result); we count six, plus the sparse operators (the smf matrix,
        its transpose, and the Chebyshev operator roughly triple the raw
        adjacency footprint).
        """
        k = self.params.dim + self.params.n_oversamples
        dense = 6.0 * n_nodes * k * 8.0
        sparse = 3.0 * (2.0 * n_edges * 12.0 + 64.0)
        return dense + sparse

    # -- main entry ----------------------------------------------------------

    def embed_dataset(self, dataset: Dataset) -> EmbeddingResult:
        """Embed a loaded dataset, matching the capacity scale to it."""
        if self.config.capacity_scale != dataset.scale:
            raise ValueError(
                f"config.capacity_scale ({self.config.capacity_scale}) must"
                f" equal dataset.scale ({dataset.scale}); build the config"
                " with capacity_scale=dataset.scale"
            )
        return self.embed_edges(dataset.edges, dataset.n_nodes)

    def embed_edges(self, edges: np.ndarray, n_nodes: int) -> EmbeddingResult:
        """Embed a graph given as an undirected edge list."""
        adjacency = edges_to_csdb(edges, n_nodes)
        return self.embed(adjacency, n_edges=len(edges))

    def embed(
        self, adjacency: CSDBMatrix, n_edges: int | None = None
    ) -> EmbeddingResult:
        """Embed a graph given its CSDB adjacency matrix.

        Raises:
            repro.memsim.allocator.CapacityError: in DRAM-only mode when
                the pipeline working set exceeds the scaled DRAM capacity
                (the OOMs of Fig. 12 on TW-2010/FR).
        """
        self._reset()
        wall_start = time.perf_counter()
        n_nodes = adjacency.n_rows
        rank = self.params.dim + self.params.n_oversamples
        if rank > n_nodes:
            raise ValueError(
                f"dim + oversamples ({rank}) exceeds the node count"
                f" ({n_nodes}); reduce dim or use a larger graph"
            )
        n_edges = n_edges if n_edges is not None else adjacency.nnz // 2
        self.engine.check_dram_residency(
            self.pipeline_working_set_bytes(n_nodes, n_edges)
        )

        with self.tracer.span(
            "embed",
            n_nodes=n_nodes,
            n_edges=n_edges,
            mode=self.config.memory_mode.value,
        ) as root:
            with self.tracer.span("graph_read", format=self.config.graph_format):
                if self.config.graph_format == "csr":
                    read_seconds = self.simulate_graph_read_csr(n_nodes, n_edges)
                else:
                    read_seconds = self.simulate_graph_read(n_nodes, n_edges)
                self.tracer.advance_sim(read_seconds)
            self._trace.charge("graph_read", read_seconds)

            # Stage 1: sparse matrix factorization.
            stage_mark = self._stage_seconds()
            with self.tracer.span("factorization"):
                initial = prone_smf(
                    adjacency, self.params, self._matmul_factory,
                    tracer=self.tracer,
                )
                k = self.params.dim + self.params.n_oversamples
                # QR factorizations inside the tSVD + the small SVD.
                self._charge_serial(
                    (2 * self.params.n_power_iterations + 2)
                    * 2.0 * n_nodes * k * k,
                    "dense_algebra",
                )
            factorization_seconds = self._stage_seconds() - stage_mark

            # Stage 2: spectral propagation.
            stage_mark = self._stage_seconds()
            with self.tracer.span("propagation"):
                embedding = prone_propagate(
                    adjacency, initial, self.params, self._matmul_factory,
                    tracer=self.tracer,
                )
                self._charge_serial(
                    2.0 * n_nodes * self.params.dim * self.params.dim,
                    "dense_algebra",
                )
            propagation_seconds = self._stage_seconds() - stage_mark

            sim_seconds = read_seconds + self._stage_seconds()
            # Summary spans: the Fig. 7(a) per-step SpMM totals, exact
            # copies of the merged CostTrace (annotations, so the sim
            # cursor — already advanced by the engine — is untouched).
            with self.tracer.span("spmm_steps"):
                for category in SPMM_CATEGORIES:
                    self.tracer.record(
                        category,
                        sim_seconds=self._trace.seconds(category),
                        nbytes=self._trace.bytes_moved(category),
                    )
            root.set("sim_seconds", sim_seconds)
            root.set("n_spmm", len(self._spmm_results))
        self.metrics.counter("embed.runs").inc()
        self.metrics.counter("embed.sim_seconds").inc(sim_seconds)
        return EmbeddingResult(
            embedding=embedding,
            sim_seconds=sim_seconds,
            read_seconds=read_seconds,
            factorization_seconds=factorization_seconds,
            propagation_seconds=propagation_seconds,
            spmm_seconds=self._spmm_seconds,
            serial_seconds=self._serial_seconds,
            n_spmm=len(self._spmm_results),
            wall_seconds=time.perf_counter() - wall_start,
            trace=self._trace,
            spmm_results=self._spmm_results,
        )

    def _stage_seconds(self) -> float:
        return self._spmm_seconds + self._serial_seconds


def embedder_for_dataset(
    dataset: Dataset, config: OMeGaConfig | None = None, **overrides: object
) -> OMeGaEmbedder:
    """Build an embedder whose capacity scale matches a dataset."""
    config = config or OMeGaConfig()
    config = config.with_overrides(capacity_scale=dataset.scale, **overrides)
    return OMeGaEmbedder(config)
