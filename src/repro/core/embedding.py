"""End-to-end OMeGa embedding pipeline (Fig. 4 of the paper).

``OMeGaEmbedder`` runs ProNE with every sparse product routed through the
instrumented :class:`repro.core.spmm.SpMMEngine`, accumulating simulated
time for:

- the graph reading procedure (CSDB construction; Fig. 19a);
- every SpMM of the tSVD bootstrap and the Chebyshev propagation;
- the serial dense algebra (QR / small SVD), charged to the CPU model;
- ASL staging, prefetch maintenance and NaDP merges (inside the engine).

The numeric output is *identical* across memory modes and optimization
knobs — OMeGa's optimizations are placement and scheduling only — which
tests assert explicitly (quality preservation, §IV-B).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import OMeGaConfig
from repro.core.nadp import TierFallback, plan_tier_fallback
from repro.core.spmm import SpMMEngine, SpMMResult
from repro.faults import FaultError, FaultInjector
from repro.formats.convert import edges_to_csdb
from repro.formats.csdb import CSDBMatrix
from repro.graphs.datasets import Dataset
from repro.memsim.devices import (
    AccessPattern,
    Locality,
    MemoryKind,
    Operation,
)
from repro.memsim.trace import SPMM_CATEGORIES, CostTrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, SpanTracer
from repro.prone.model import (
    ProNEParams,
    prone_propagate,
    prone_smf,
)

#: Approximate bytes per edge of a SNAP-style text edge list (two ids,
#: separator, newline), used to cost the read of the on-disk graph.
TEXT_BYTES_PER_EDGE = 14.0

#: The pipeline's checkpointable stages, in execution order.
STAGE_GRAPH_READ = "graph_read"
STAGE_FACTORIZATION = "factorization"
STAGE_PROPAGATION = "propagation"
PIPELINE_STAGES = (
    STAGE_GRAPH_READ,
    STAGE_FACTORIZATION,
    STAGE_PROPAGATION,
)


@dataclass
class EmbeddingResult:
    """Outcome of one end-to-end embedding run.

    Attributes:
        embedding: the (|V|, d) node embedding.
        sim_seconds: simulated end-to-end time (reading + generation),
            the quantity Fig. 12 reports.
        read_seconds: simulated graph-reading time (Fig. 19a).
        factorization_seconds: simulated time of the tSVD bootstrap.
        propagation_seconds: simulated time of the spectral propagation.
        spmm_seconds: simulated time spent inside SpMM operations.
        serial_seconds: simulated time of serial dense algebra.
        n_spmm: number of SpMM operations executed.
        wall_seconds: real wall-clock time of the run (for the harness).
        trace: merged per-category cost ledger.
        spmm_results: the individual engine results (thread times etc.).
    """

    embedding: np.ndarray
    sim_seconds: float
    read_seconds: float
    factorization_seconds: float
    propagation_seconds: float
    spmm_seconds: float
    serial_seconds: float
    n_spmm: int
    wall_seconds: float
    trace: CostTrace
    spmm_results: list[SpMMResult] = field(default_factory=list)

    @property
    def spmm_fraction(self) -> float:
        """Share of simulated time spent in SpMM (the paper's ~70%)."""
        if self.sim_seconds == 0.0:
            return 0.0
        return self.spmm_seconds / self.sim_seconds


@dataclass
class PipelineState:
    """Checkpointable state carried between pipeline stages.

    A stage-granular checkpoint is exactly one of these: the last
    completed stage, the numeric intermediates needed to continue
    (``initial`` after factorization, ``embedding`` after propagation)
    and the accumulated cost accounting, so a resumed run reports the
    same totals — and the same bits — as an uninterrupted one.
    """

    stage: str | None = None
    read_seconds: float = 0.0
    factorization_seconds: float = 0.0
    propagation_seconds: float = 0.0
    spmm_seconds: float = 0.0
    serial_seconds: float = 0.0
    n_spmm: int = 0
    trace_payload: dict = field(default_factory=dict)
    initial: np.ndarray | None = None
    embedding: np.ndarray | None = None

    @property
    def completed_stages(self) -> tuple[str, ...]:
        """Stages already durable, in execution order."""
        if self.stage is None:
            return ()
        return PIPELINE_STAGES[: PIPELINE_STAGES.index(self.stage) + 1]

    @property
    def sim_seconds(self) -> float:
        """Simulated seconds accumulated so far."""
        return self.read_seconds + self.spmm_seconds + self.serial_seconds

    def to_payload(self) -> tuple[dict[str, np.ndarray], dict]:
        """Split into (arrays, JSON-able metadata) for a WAL record."""
        arrays = {}
        if self.initial is not None:
            arrays["initial"] = self.initial
        if self.embedding is not None:
            arrays["embedding"] = self.embedding
        meta = {
            "stage": self.stage,
            "read_seconds": self.read_seconds,
            "factorization_seconds": self.factorization_seconds,
            "propagation_seconds": self.propagation_seconds,
            "spmm_seconds": self.spmm_seconds,
            "serial_seconds": self.serial_seconds,
            "n_spmm": self.n_spmm,
            "trace_payload": self.trace_payload,
        }
        return arrays, meta

    @classmethod
    def from_payload(
        cls, arrays: dict[str, np.ndarray], meta: dict
    ) -> "PipelineState":
        """Rebuild the state a WAL record captured."""
        return cls(
            stage=meta["stage"],
            read_seconds=meta["read_seconds"],
            factorization_seconds=meta["factorization_seconds"],
            propagation_seconds=meta["propagation_seconds"],
            spmm_seconds=meta["spmm_seconds"],
            serial_seconds=meta["serial_seconds"],
            n_spmm=meta["n_spmm"],
            trace_payload=meta["trace_payload"],
            initial=arrays.get("initial"),
            embedding=arrays.get("embedding"),
        )


class _InstrumentedMatMul:
    """Adapter routing ProNE's products through the engine."""

    def __init__(self, embedder: "OMeGaEmbedder", matrix: CSDBMatrix) -> None:
        self.embedder = embedder
        self.matrix = matrix

    def __call__(self, dense: np.ndarray) -> np.ndarray:
        result = self.embedder.engine.multiply(self.matrix, dense)
        self.embedder._record_spmm(result)
        return result.output


class OMeGaEmbedder:
    """ProNE on simulated heterogeneous memory."""

    def __init__(
        self,
        config: OMeGaConfig | None = None,
        params: ProNEParams | None = None,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        self.config = config or OMeGaConfig()
        self.params = params or ProNEParams(
            dim=self.config.dim, seed=self.config.seed
        )
        if self.params.dim != self.config.dim:
            raise ValueError(
                f"config.dim ({self.config.dim}) and params.dim"
                f" ({self.params.dim}) disagree"
            )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.faults = faults
        self.engine = SpMMEngine(
            self.config, tracer=self.tracer, metrics=self.metrics,
            faults=self.faults,
        )
        self._spmm_results: list[SpMMResult] = []
        self._spmm_seconds = 0.0
        self._serial_seconds = 0.0
        self._trace = CostTrace()

    # -- bookkeeping -------------------------------------------------------

    def _reset(self) -> None:
        self._spmm_results = []
        self._spmm_seconds = 0.0
        self._serial_seconds = 0.0
        self._trace = CostTrace()

    def _record_spmm(self, result: SpMMResult) -> None:
        self._spmm_results.append(result)
        self._spmm_seconds += result.sim_seconds
        self._trace.merge(result.trace)

    def _charge_serial(self, flops: float, category: str) -> None:
        # Dense BLAS (QR / small SVD) runs multithreaded in practice;
        # charge the flops across the configured thread count.
        seconds = self.engine.cost_model.compute_time(
            flops / self.config.n_threads
        )
        self._serial_seconds += seconds
        self._trace.charge(category, seconds)
        self.tracer.advance_sim(seconds)

    def _matmul_factory(self, matrix: CSDBMatrix):
        return _InstrumentedMatMul(self, matrix)

    # -- pipeline stages -----------------------------------------------------

    def simulate_graph_read(self, n_nodes: int, n_edges: int) -> float:
        """Simulated cost of the graph reading procedure into CSDB.

        Reading = SSD scan of the text edge list + parse compute + the
        format build.  CSDB builds with a degree-bucket counting sort
        whose placement passes are *sequential*; CSR's classic
        scatter-into-rows build issues per-edge *random* writes — the
        source of the 1.35x reading gap of Fig. 19a (see
        :func:`simulate_graph_read_csr`).
        """
        return self._read_cost(n_nodes, n_edges, AccessPattern.SEQUENTIAL)

    def simulate_graph_read_csr(self, n_nodes: int, n_edges: int) -> float:
        """Simulated cost of reading the same graph into CSR."""
        return self._read_cost(n_nodes, n_edges, AccessPattern.RANDOM)

    def _read_cost(
        self, n_nodes: int, n_edges: int, placement_pattern: AccessPattern
    ) -> float:
        cost_model = self.engine.cost_model
        ssd = self.config.topology.device(MemoryKind.SSD)
        dram = self.config.topology.device(MemoryKind.DRAM)
        text_bytes = 2.0 * n_edges * TEXT_BYTES_PER_EDGE  # both directions
        scan = cost_model.access_time(
            ssd,
            Operation.READ,
            AccessPattern.SEQUENTIAL,
            Locality.LOCAL,
            text_bytes,
        )
        parse = cost_model.compute_time(2.0 * n_edges * 20.0)
        edge_bytes = 2.0 * n_edges * 12.0
        place = cost_model.access_time(
            dram,
            Operation.WRITE,
            placement_pattern,
            Locality.LOCAL,
            edge_bytes,
            threads_sharing=max(self.config.n_threads // 2, 1),
        )
        return scan + parse + place

    def pipeline_working_set_bytes(self, n_nodes: int, n_edges: int) -> float:
        """Peak DRAM-resident bytes of the ProNE pipeline (Eq. 8 terms).

        The tSVD and Chebyshev stages hold several (|V|, k) dense
        temporaries simultaneously (Lx0/Lx1/Lx2 + conv + the operand and
        result); we count six, plus the sparse operators (the smf matrix,
        its transpose, and the Chebyshev operator roughly triple the raw
        adjacency footprint).
        """
        k = self.params.dim + self.params.n_oversamples
        dense = 6.0 * n_nodes * k * 8.0
        sparse = 3.0 * (2.0 * n_edges * 12.0 + 64.0)
        return dense + sparse

    # -- main entry ----------------------------------------------------------

    def embed_dataset(self, dataset: Dataset) -> EmbeddingResult:
        """Embed a loaded dataset, matching the capacity scale to it."""
        if self.config.capacity_scale != dataset.scale:
            raise ValueError(
                f"config.capacity_scale ({self.config.capacity_scale}) must"
                f" equal dataset.scale ({dataset.scale}); build the config"
                " with capacity_scale=dataset.scale"
            )
        return self.embed_edges(dataset.edges, dataset.n_nodes)

    def embed_edges(self, edges: np.ndarray, n_nodes: int) -> EmbeddingResult:
        """Embed a graph given as an undirected edge list."""
        adjacency = edges_to_csdb(edges, n_nodes)
        return self.embed(adjacency, n_edges=len(edges))

    def embed(
        self, adjacency: CSDBMatrix, n_edges: int | None = None
    ) -> EmbeddingResult:
        """Embed a graph given its CSDB adjacency matrix.

        Raises:
            repro.memsim.allocator.CapacityError: in DRAM-only mode when
                the pipeline working set exceeds the scaled DRAM capacity
                (the OOMs of Fig. 12 on TW-2010/FR).
        """
        run = self.start_run(adjacency, n_edges)
        try:
            while run.next_stage is not None:
                run.run_next()
        except BaseException:
            run.abort()
            raise
        return run.finish()

    def propagate_only(
        self, adjacency: CSDBMatrix, initial: np.ndarray | None = None
    ) -> tuple[np.ndarray, float]:
        """Spectral-propagation-only embedding (a degraded-fidelity run).

        Skips the tSVD bootstrap: propagates ``initial`` (by default a
        seeded Gaussian scaled by sqrt(degree), the cheap structural
        prior) through the Chebyshev filter.  This is the serving
        ladder's middle rung — roughly the propagation stage's share of
        the full pipeline cost, with correspondingly lower embedding
        quality.  Returns ``(embedding, sim_seconds)``.
        """
        self._reset()
        n_nodes = adjacency.n_rows
        if initial is None:
            rng = np.random.default_rng(self.params.seed)
            initial = rng.standard_normal((n_nodes, self.params.dim))
            degrees = np.zeros(n_nodes, dtype=np.float64)
            np.add.at(degrees, adjacency.col_list, 1.0)
            initial *= np.sqrt(degrees + 1.0)[:, None]
        with self.tracer.span("propagate_only", n_nodes=n_nodes):
            embedding = prone_propagate(
                adjacency, initial, self.params, self._matmul_factory,
                tracer=self.tracer,
            )
            self._charge_serial(
                2.0 * n_nodes * self.params.dim * self.params.dim,
                "dense_algebra",
            )
        return embedding, self._stage_seconds()

    def start_run(
        self,
        adjacency: CSDBMatrix,
        n_edges: int | None = None,
        state: PipelineState | None = None,
    ) -> "PipelineRun":
        """Begin a stage-by-stage pipeline run (see :class:`PipelineRun`).

        Pass a recovered :class:`PipelineState` to resume after a crash:
        completed stages are skipped, their cost restored, and the final
        embedding is bit-identical to an uninterrupted run.
        """
        return PipelineRun(self, adjacency, n_edges=n_edges, state=state)

    def degrade_tier(self, working_set_bytes: float) -> TierFallback:
        """Re-place hot structures after a PM-tier fault.

        Walks NaDP's fallback order (local DRAM → remote DRAM → re-plan
        ASL with more partitions) and rebuilds the engine under the
        chosen overrides instead of aborting the pipeline.  Numerics are
        unaffected — placement is cost-only — so quality preservation
        holds even degraded.
        """
        fallback = plan_tier_fallback(
            working_set_bytes,
            self.engine.scaled_capacity(MemoryKind.DRAM),
            self.config.topology.n_sockets,
            self.config.dram_headroom,
        )
        self.config = self.config.with_overrides(**fallback.config_overrides)
        self.engine = SpMMEngine(
            self.config, tracer=self.tracer, metrics=self.metrics,
            faults=self.faults,
        )
        self.metrics.counter(
            "nadp.degraded_placements", action=fallback.action
        ).inc()
        self.tracer.record("tier_degraded", action=fallback.action)
        return fallback

    def _stage_seconds(self) -> float:
        return self._spmm_seconds + self._serial_seconds


class PipelineRun:
    """Stage-by-stage execution of the embedding pipeline.

    ``embed()`` drives a run to completion in one call; the
    checkpointing layer (:class:`repro.memsim.persistence.
    CheckpointedEmbedder`) takes control between stages instead — to
    append WAL records, honour injected crash points, or degrade
    placement.  A run created with a recovered :class:`PipelineState`
    skips the completed stages, restores their cost accounting and
    replays their simulated time onto the tracer as one
    ``recovered_stages`` span.
    """

    def __init__(
        self,
        embedder: OMeGaEmbedder,
        adjacency: CSDBMatrix,
        n_edges: int | None = None,
        state: PipelineState | None = None,
    ) -> None:
        self.embedder = embedder
        self.adjacency = adjacency
        n_nodes = adjacency.n_rows
        rank = embedder.params.dim + embedder.params.n_oversamples
        if rank > n_nodes:
            raise ValueError(
                f"dim + oversamples ({rank}) exceeds the node count"
                f" ({n_nodes}); reduce dim or use a larger graph"
            )
        self.n_edges = n_edges if n_edges is not None else adjacency.nnz // 2
        embedder._reset()
        embedder.engine.check_dram_residency(
            embedder.pipeline_working_set_bytes(n_nodes, self.n_edges)
        )
        self.state = state if state is not None else PipelineState()
        self.recovered_sim_seconds = 0.0
        self._recovered_n_spmm = 0
        self._wall_start = time.perf_counter()
        self._closed = False
        self._root_cm = embedder.tracer.span(
            "embed",
            n_nodes=n_nodes,
            n_edges=self.n_edges,
            mode=embedder.config.memory_mode.value,
        )
        self._root = self._root_cm.__enter__()
        if self.state.stage is not None:
            # Restore the accumulators the completed stages earned, and
            # replay their simulated time onto the tracer so the root
            # span still covers the full pipeline.
            embedder._spmm_seconds = self.state.spmm_seconds
            embedder._serial_seconds = self.state.serial_seconds
            embedder._trace = CostTrace.from_dict(self.state.trace_payload)
            self._recovered_n_spmm = self.state.n_spmm
            self.recovered_sim_seconds = self.state.sim_seconds
            embedder.tracer.record(
                "recovered_stages",
                sim_seconds=self.recovered_sim_seconds,
                advance=True,
                stages=list(self.state.completed_stages),
            )
            self._root.set("resumed_from", self.state.stage)

    @property
    def next_stage(self) -> str | None:
        """The stage ``run_next`` would execute, or None when done."""
        if self.state.stage is None:
            return PIPELINE_STAGES[0]
        index = PIPELINE_STAGES.index(self.state.stage) + 1
        return PIPELINE_STAGES[index] if index < len(PIPELINE_STAGES) else None

    def run_next(self) -> str:
        """Execute the next pipeline stage; returns its name."""
        stage = self.next_stage
        if stage is None:
            raise RuntimeError("pipeline already complete")
        embedder = self.embedder
        if embedder.faults is not None:
            if embedder.faults.tier_loss(stage) is not None:
                embedder.degrade_tier(
                    embedder.pipeline_working_set_bytes(
                        self.adjacency.n_rows, self.n_edges
                    )
                )
        if stage == STAGE_GRAPH_READ:
            self._run_graph_read()
        elif stage == STAGE_FACTORIZATION:
            self._run_factorization()
        else:
            self._run_propagation()
        state = self.state
        state.stage = stage
        state.spmm_seconds = embedder._spmm_seconds
        state.serial_seconds = embedder._serial_seconds
        state.n_spmm = self._recovered_n_spmm + len(embedder._spmm_results)
        state.trace_payload = embedder._trace.to_dict()
        return stage

    def _run_graph_read(self) -> None:
        embedder = self.embedder
        n_nodes = self.adjacency.n_rows
        with embedder.tracer.span(
            "graph_read", format=embedder.config.graph_format
        ):
            if embedder.config.graph_format == "csr":
                read_seconds = embedder.simulate_graph_read_csr(
                    n_nodes, self.n_edges
                )
            else:
                read_seconds = embedder.simulate_graph_read(
                    n_nodes, self.n_edges
                )
            embedder.tracer.advance_sim(read_seconds)
        embedder._trace.charge("graph_read", read_seconds)
        self.state.read_seconds = read_seconds

    def _run_factorization(self) -> None:
        embedder = self.embedder
        n_nodes = self.adjacency.n_rows
        stage_mark = embedder._stage_seconds()
        with embedder.tracer.span("factorization"):
            initial = prone_smf(
                self.adjacency, embedder.params, embedder._matmul_factory,
                tracer=embedder.tracer,
            )
            k = embedder.params.dim + embedder.params.n_oversamples
            # QR factorizations inside the tSVD + the small SVD.
            embedder._charge_serial(
                (2 * embedder.params.n_power_iterations + 2)
                * 2.0 * n_nodes * k * k,
                "dense_algebra",
            )
        self.state.initial = initial
        self.state.factorization_seconds = (
            embedder._stage_seconds() - stage_mark
        )

    def _run_propagation(self) -> None:
        embedder = self.embedder
        n_nodes = self.adjacency.n_rows
        if self.state.initial is None:
            raise RuntimeError(
                "propagation needs the factorization stage's output;"
                " the recovered state is missing 'initial'"
            )
        stage_mark = embedder._stage_seconds()
        with embedder.tracer.span("propagation"):
            embedding = prone_propagate(
                self.adjacency, self.state.initial, embedder.params,
                embedder._matmul_factory, tracer=embedder.tracer,
            )
            embedder._charge_serial(
                2.0 * n_nodes * embedder.params.dim * embedder.params.dim,
                "dense_algebra",
            )
        self.state.embedding = embedding
        self.state.propagation_seconds = (
            embedder._stage_seconds() - stage_mark
        )

    def finish(self) -> EmbeddingResult:
        """Close the run and assemble the :class:`EmbeddingResult`."""
        if self.next_stage is not None:
            raise RuntimeError(
                f"pipeline incomplete: stage {self.next_stage!r} not run"
            )
        if self._closed:
            raise RuntimeError("run already closed")
        embedder = self.embedder
        state = self.state
        sim_seconds = state.read_seconds + embedder._stage_seconds()
        # Summary spans: the Fig. 7(a) per-step SpMM totals, exact
        # copies of the merged CostTrace (annotations, so the sim
        # cursor — already advanced by the engine — is untouched).
        with embedder.tracer.span("spmm_steps"):
            for category in SPMM_CATEGORIES:
                embedder.tracer.record(
                    category,
                    sim_seconds=embedder._trace.seconds(category),
                    nbytes=embedder._trace.bytes_moved(category),
                )
        self._root.set("sim_seconds", sim_seconds)
        self._root.set("n_spmm", state.n_spmm)
        self._closed = True
        self._root_cm.__exit__(None, None, None)
        embedder.metrics.counter("embed.runs").inc()
        embedder.metrics.counter("embed.sim_seconds").inc(sim_seconds)
        return EmbeddingResult(
            embedding=state.embedding,
            sim_seconds=sim_seconds,
            read_seconds=state.read_seconds,
            factorization_seconds=state.factorization_seconds,
            propagation_seconds=state.propagation_seconds,
            spmm_seconds=embedder._spmm_seconds,
            serial_seconds=embedder._serial_seconds,
            n_spmm=state.n_spmm,
            wall_seconds=time.perf_counter() - self._wall_start,
            trace=embedder._trace,
            spmm_results=embedder._spmm_results,
        )

    def abort(self) -> None:
        """Close the root span after an interruption (e.g. a crash)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._root_cm.__exit__(
                FaultError, FaultError("pipeline run aborted"), None
            )
        except FaultError:
            pass


def embedder_for_dataset(
    dataset: Dataset, config: OMeGaConfig | None = None, **overrides: object
) -> OMeGaEmbedder:
    """Build an embedder whose capacity scale matches a dataset."""
    config = config or OMeGaConfig()
    config = config.with_overrides(capacity_scale=dataset.scale, **overrides)
    return OMeGaEmbedder(config)
